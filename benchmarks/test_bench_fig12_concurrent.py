"""Benchmark: Figure 12 — concurrent applications."""

import numpy as np

from conftest import run_reduced


def test_bench_fig12_concurrent(benchmark):
    out = benchmark.pedantic(
        lambda: run_reduced("fig12", repetitions=6), rounds=1, iterations=1
    )
    records = out.records
    for m in (2, 3, 4):
        for k in (2, 4, 8):
            concurrent = records.filter(num_apps=m, stripe_count=k)
            scaled = records.filter(
                predicate=lambda r, m=m, k=k: r.factors.get("scaled_baseline_for") == f"{m}x{k}"
            )
            # Shape: aggregate tracks the resource-scaled single app —
            # sharing targets does not degrade global performance.
            assert concurrent.aggregates().mean() > 0.85 * scaled.bandwidths().mean()
    # Individual bandwidth drops when sharing the system (stripe 2:
    # no target sharing, still slower than alone).
    single = records.filter(num_apps=1, stripe_count=2, num_nodes=8).filter(
        predicate=lambda r: "scaled_baseline_for" not in r.factors
    )
    two = records.filter(num_apps=2, stripe_count=2)
    indiv = np.mean([app["bw_mib_s"] for r in two for app in r.apps])
    assert indiv < single.bandwidths().mean()
