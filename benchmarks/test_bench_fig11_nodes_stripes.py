"""Benchmark: Figure 11 — node scaling by stripe count (scenario 2)."""

from conftest import means_by, run_reduced


def test_bench_fig11_nodes_stripes(benchmark):
    out = benchmark.pedantic(
        lambda: run_reduced("fig11", repetitions=6), rounds=1, iterations=1
    )
    peaks, plateaus = {}, {}
    for k, group in out.records.group_by_factor("stripe_count").items():
        means = means_by(group, "num_nodes")
        peak = max(means.values())
        peaks[k] = peak
        plateaus[k] = min(n for n, m in means.items() if m >= 0.95 * peak)
    # Shape: more targets -> higher peak, reached only with more nodes.
    assert peaks[8] > peaks[4] > peaks[2] > peaks[1]
    assert plateaus[1] <= plateaus[2] <= plateaus[4] <= plateaus[8]
    assert plateaus[8] >= 4 * plateaus[1]
