"""Benchmark: Figures 6, 8 and 10 — the stripe count study."""

import numpy as np
import pytest

from conftest import means_by, run_reduced

_OUT = {}


def _fig6():
    if "out" not in _OUT:
        _OUT["out"] = run_reduced("fig6", repetitions=15)
    return _OUT["out"]


def test_bench_fig06_stripecount(benchmark):
    out = benchmark.pedantic(_fig6, rounds=1, iterations=1)
    s1 = means_by(out.records.filter(scenario="scenario1"), "stripe_count")
    # Scenario 1 shape: count 8 (always balanced) beats the default 4
    # by >= 40%; count 1 is a single link.
    assert s1[8] / s1[4] - 1 >= 0.40
    assert s1[1] == pytest.approx(1080, rel=0.1)
    s2 = means_by(out.records.filter(scenario="scenario2"), "stripe_count")
    # Scenario 2 shape: monotone growth, >3.5x from 1 to 8 targets.
    assert s2[8] > s2[4] > s2[2] > s2[1]
    assert s2[8] / s2[1] > 3.5
    assert s2[1] == pytest.approx(1764, rel=0.1)
    assert s2[8] == pytest.approx(8064, rel=0.12)


def test_bench_fig08_allocation_scenario1(benchmark):
    out = benchmark.pedantic(_fig6, rounds=1, iterations=1)
    sub = out.records.filter(scenario="scenario1")
    groups = {p: g.bandwidths().mean() for p, g in sub.group_by_placement().items()}
    # Balance law ordering: balanced at the top, single-server at the
    # bottom, count itself irrelevant.
    balanced = [v for (lo, hi), v in groups.items() if lo == hi]
    single_server = [v for (lo, hi), v in groups.items() if lo == 0]
    assert min(balanced) > max(v for p, v in groups.items() if min(p) != max(p))
    assert np.ptp(single_server) < 0.05 * np.mean(single_server)


def test_bench_fig10_allocation_scenario2(benchmark):
    out = benchmark.pedantic(_fig6, rounds=1, iterations=1)
    sub = out.records.filter(scenario="scenario2")
    six = sub.filter(stripe_count=6)
    balanced = six.filter(predicate=lambda r: r.placement == (3, 3)).bandwidths().mean()
    unbalanced = six.filter(predicate=lambda r: r.placement == (2, 4)).bandwidths().mean()
    # (3,3) beats (2,4) by roughly 10%.
    assert 1.02 < balanced / unbalanced < 1.30
