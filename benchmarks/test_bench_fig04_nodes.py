"""Benchmark: Figure 4 — bandwidth vs compute node count."""

import pytest

from conftest import means_by, run_reduced


def test_bench_fig04_nodes(benchmark):
    out = benchmark.pedantic(
        lambda: run_reduced("fig4", repetitions=10), rounds=1, iterations=1
    )
    records = out.records
    # Scenario 1: ~880 -> ~1460, plateau by ~4 nodes.
    s1 = means_by(records.filter(scenario="scenario1"), "num_nodes")
    assert s1[1] == pytest.approx(880, rel=0.12)
    assert s1[8] == pytest.approx(1460, rel=0.12)
    assert s1[4] > 0.93 * s1[8]
    # Scenario 2: ~1630 -> plateau near 16 nodes, much larger gain.
    s2 = means_by(records.filter(scenario="scenario2"), "num_nodes")
    assert s2[1] == pytest.approx(1631, rel=0.12)
    assert s2[16] > 0.9 * max(s2.values())
    assert s2[4] < 0.9 * max(s2.values())
    assert (max(s2.values()) / s2[1]) > (max(s1.values()) / s1[1])
