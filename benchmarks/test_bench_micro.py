"""Microbenchmarks of the substrates.

These time the hot building blocks (max-min solver, striping math,
chooser, fluid run, request-level DES, a full protocol sweep) so
performance regressions in the simulator itself are visible — the
100-repetition protocols only stay cheap while these stay fast.
"""

import numpy as np

from repro.beegfs.choosers import RoundRobinChooser
from repro.beegfs.filesystem import PLAFRIM_TARGET_ORDERING, BeeGFS, plafrim_deployment
from repro.beegfs.management import TargetInfo
from repro.beegfs.striping import StripePattern
from repro.engine.base import EngineOptions
from repro.engine.des_runner import DESEngine
from repro.engine.fluid_runner import FluidEngine
from repro.methodology.plan import ExperimentPlan, ExperimentSpec
from repro.methodology.protocol import ProtocolConfig
from repro.netsim.maxmin import max_min_rates
from repro.units import GiB, KiB, MiB
from repro.workload.generator import single_application


def test_bench_maxmin_solver(benchmark):
    """256 flows over 60 resources — one fluid segment's solve."""
    rng = np.random.default_rng(0)
    nflows, nres = 256, 60
    memberships = [sorted(rng.choice(nres, size=7, replace=False)) for _ in range(nflows)]
    capacities = rng.uniform(500, 12000, nres)
    result = benchmark(lambda: max_min_rates(memberships, capacities))
    assert result.shape == (nflows,)


def test_bench_striping_bytes_per_target(benchmark):
    """Per-target volume of a 4 GiB block (the per-rank hot path)."""
    pattern = StripePattern(targets=(101, 201, 202, 203), chunk_size=512 * KiB)
    counts = benchmark(lambda: pattern.bytes_per_target(4 * GiB, 12 * GiB))
    assert sum(counts.values()) == 4 * GiB


def test_bench_chooser_roundrobin(benchmark):
    pool = [TargetInfo(t, "s1" if t < 200 else "s2", 10**12) for t in PLAFRIM_TARGET_ORDERING]
    rng = np.random.default_rng(0)

    def choose():
        chooser = RoundRobinChooser(ordering=PLAFRIM_TARGET_ORDERING)
        return chooser.choose(pool, 4, rng)

    assert len(benchmark(choose)) == 4


def test_bench_file_create(benchmark):
    """Full metadata path: fresh fs + create (one per protocol run)."""

    def create():
        fs = BeeGFS(plafrim_deployment(keep_data=False), seed=1)
        return fs.create_file("/bench.dat")

    assert benchmark(create).pattern.stripe_count == 4


def test_bench_fluid_engine_run(benchmark, calib_s2, topo_s2):
    """One 32-node, 32 GiB scenario-2 run — the workhorse operation."""
    engine = FluidEngine(calib_s2, topo_s2, calib_s2.deployment(stripe_count=8), seed=0)
    app = single_application(topo_s2, 32, ppn=8)
    result = benchmark(lambda: engine.run([app], rep=0))
    assert result.single.bandwidth_mib_s > 5000


def test_bench_des_engine_run(benchmark, calib_s1, topo_s1):
    """A small request-level DES run (512 transfers)."""
    options = EngineOptions(noise_enabled=False)
    engine = DESEngine(calib_s1, topo_s1, calib_s1.deployment(stripe_count=4), seed=0, options=options)
    app = single_application(topo_s1, 2, ppn=4, total_bytes=512 * MiB)
    result = benchmark.pedantic(lambda: engine.run([app], rep=0), rounds=3, iterations=1)
    assert result.single.bandwidth_mib_s > 500


def test_bench_protocol_plan_build(benchmark):
    """Planning 8 configurations x 100 repetitions."""
    specs = [ExperimentSpec("fig6", "scenario1", {"stripe_count": k}) for k in range(1, 9)]
    plan = benchmark(lambda: ExperimentPlan.build(specs, ProtocolConfig(), seed=0))
    assert plan.num_runs == 800
