"""Benchmark: fault injection — outage timeline and degraded allocation."""

from conftest import run_reduced


def test_bench_faults(benchmark):
    out = benchmark.pedantic(
        lambda: run_reduced("faults", repetitions=3), rounds=3, iterations=1
    )
    # Timeline: the mid-run outage stretches the run, costs retries, loses no data.
    timeline = {r.factors["condition"]: r for r in out.records.filter(stage="timeline")}
    healthy, outage = timeline["healthy"], timeline["outage"]
    assert outage.apps[0]["end_s"] > healthy.apps[0]["end_s"]
    assert outage.retries > 0 and outage.complete
    assert healthy.retries == 0 and healthy.complete

    # Degraded allocation: failover always balances across the survivors
    # and beats round-robin's unbalanced rotations on average.
    degraded = out.records.filter(exp_id="faults", stage=None)
    by_chooser = degraded.group_by_factor("chooser")
    failover, roundrobin = by_chooser["failover"], by_chooser["roundrobin"]
    assert all(min(r.placement) == max(r.placement) for r in failover)
    assert float(failover.bandwidths().mean()) >= float(roundrobin.bandwidths().mean())
