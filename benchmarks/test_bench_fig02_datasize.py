"""Benchmark: Figure 2 — bandwidth vs total data size."""

from conftest import means_by, run_reduced


def test_bench_fig02_datasize(benchmark):
    out = benchmark.pedantic(
        lambda: run_reduced("fig2", repetitions=8), rounds=1, iterations=1
    )
    records = out.records
    for scenario in ("scenario1", "scenario2"):
        means = means_by(records.filter(scenario=scenario), "total_gib")
        # Shape: rises with size, stabilises between 16 and 32 GiB.
        assert means[1] < means[16]
        assert abs(means[64] - means[32]) / means[32] < 0.10
