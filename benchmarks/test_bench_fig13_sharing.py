"""Benchmark: Figure 13 — shared vs distinct OSTs."""

import numpy as np

from repro.experiments import exp_sharing
from repro.stats.tests import welch_ttest

from conftest import run_reduced


def test_bench_fig13_sharing(benchmark):
    out = benchmark.pedantic(
        lambda: run_reduced("fig13", repetitions=40), rounds=1, iterations=1
    )
    shared, distinct = exp_sharing.split_groups(out.records)
    assert len(shared) > 3 and len(distinct) > 3
    a = exp_sharing.app_bandwidths(shared)
    b = exp_sharing.app_bandwidths(distinct)
    # Shape: sharing all four OSTs is indistinguishable from sharing
    # none (the paper's Welch p = 0.9031).
    assert abs(np.mean(a) / np.mean(b) - 1) < 0.05
    assert welch_ttest(a, b).pvalue > 0.05
