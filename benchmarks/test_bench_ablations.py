"""Ablation benches: every calibrated mechanism is load-bearing.

DESIGN.md commits to specific model mechanisms; these benches disable
them one at a time and assert that the corresponding paper behaviour
*disappears* — i.e. the mechanism is necessary, not decorative.
"""

from dataclasses import replace

import pytest

from repro.engine.base import EngineOptions
from repro.engine.fluid_runner import FluidEngine
from repro.storage.client_model import ClientServiceSpec
from repro.storage.san import SanRampSpec
from repro.workload.generator import single_application


def run_bw(calib, topo, stripe, nodes, ppn=8, seed=0, rep=0, noise=False, **app_kw):
    engine = FluidEngine(
        calib,
        topo,
        calib.deployment(stripe_count=stripe),
        seed=seed,
        options=EngineOptions(noise_enabled=noise),
    )
    app = single_application(topo, nodes, ppn=ppn, **app_kw)
    return engine.run([app], rep=rep).single.bandwidth_mib_s


def test_bench_ablation_ingest_ramp(benchmark, calib_s1, topo_s1):
    """Without the server-ingest concurrency ramp, scenario 1 reaches
    its plateau with two nodes — the paper's four-node climb (Fig 4a)
    needs the ramp."""
    no_ramp = calib_s1.with_overrides(
        ingest=replace(calib_s1.ingest, depth_constant=1e-3)
    )

    def runs():
        return (
            run_bw(calib_s1, topo_s1, 4, 2),
            run_bw(no_ramp, topo_s1, 4, 2),
            run_bw(calib_s1, topo_s1, 4, 8),
        )

    with_ramp_2n, without_ramp_2n, plateau = benchmark.pedantic(runs, rounds=1, iterations=1)
    assert without_ramp_2n > with_ramp_2n  # the ramp slows the climb
    assert without_ramp_2n == pytest.approx(plateau, rel=0.03)  # ...to instant plateau


def test_bench_ablation_san_ramp(benchmark, calib_s2, topo_s2):
    """Without the system-wide concurrency ramp, the stripe-8 plateau
    no longer needs ~32 nodes (Fig 11 collapses)."""
    flat = calib_s2.with_overrides(
        san=SanRampSpec(
            base_mib_s=calib_s2.san.base_mib_s,
            fast_fraction=1.0,
            depth_fast=1e-3,
            depth_slow=1.0,
        )
    )

    def runs():
        return (
            run_bw(calib_s2, topo_s2, 8, 8) / run_bw(calib_s2, topo_s2, 8, 32),
            run_bw(flat, topo_s2, 8, 8) / run_bw(flat, topo_s2, 8, 32),
        )

    ramped_ratio, flat_ratio = benchmark.pedantic(runs, rounds=1, iterations=1)
    assert ramped_ratio < 0.75  # 8 nodes far from the 32-node value
    assert flat_ratio > 0.9  # without the ramp, 8 nodes nearly suffice


def test_bench_ablation_client_slots(benchmark, calib_s2, topo_s2):
    """Without the per-node RPC-slot cap, 16 ppn *does* substitute for
    nodes — Lesson 3 depends on the cap."""
    uncapped = calib_s2.with_overrides(
        client=ClientServiceSpec(
            base_mib_s=calib_s2.client.base_mib_s,
            contention_per_proc=0.0,
            max_inflight_requests=10_000,
        )
    )

    def runs():
        return (
            run_bw(calib_s2, topo_s2, 8, 4, ppn=16) / run_bw(calib_s2, topo_s2, 8, 4, ppn=8),
            run_bw(uncapped, topo_s2, 8, 4, ppn=16) / run_bw(uncapped, topo_s2, 8, 4, ppn=8),
        )

    capped_gain, uncapped_gain = benchmark.pedantic(runs, rounds=1, iterations=1)
    assert capped_gain == pytest.approx(1.0, abs=0.05)  # Lesson 3 holds
    assert uncapped_gain > 1.15  # ablated: extra ppn buys storage parallelism


def test_bench_ablation_latency_model(benchmark, calib_s1, topo_s1):
    """Without the blocking-request RTT, small transfers lose nothing —
    the latency model carries Figure 2's left side."""
    no_rtt = calib_s1.with_overrides(request_rtt_s=0.0)

    def runs():
        small = dict(transfer_size=32 * 1024, total_bytes=2 * 2**30)
        return (
            run_bw(calib_s1, topo_s1, 8, 4, **small),
            run_bw(no_rtt, topo_s1, 8, 4, **small),
        )

    with_rtt, without_rtt = benchmark.pedantic(runs, rounds=1, iterations=1)
    assert with_rtt < 0.8 * without_rtt


def test_bench_ablation_shared_state_noise(benchmark, calib_s2, topo_s2):
    """The *correlated* storage noise keeps capacity ratios intact.
    Fig 13's exact sharing-neutrality would not survive independent
    per-resource noise whenever a case sits near a pool ceiling."""
    from repro.workload.generator import concurrent_applications
    import numpy as np

    def run_groups():
        out = {}
        for label, chooser in (("shared", "fixed:101,201,202,203"), ("distinct", None)):
            kwargs = {"stripe_count": 4}
            if chooser:
                kwargs["chooser"] = chooser
            engine = FluidEngine(
                calib_s2, topo_s2, calib_s2.deployment(**kwargs), seed=5,
                options=EngineOptions(),
            )
            vals = []
            for rep in range(12):
                res = engine.run(concurrent_applications(topo_s2, 2, nodes_per_app=8), rep=rep)
                vals.extend(a.bandwidth_mib_s for a in res.apps)
            out[label] = float(np.mean(vals))
        return out

    groups = benchmark.pedantic(run_groups, rounds=1, iterations=1)
    assert groups["shared"] == pytest.approx(groups["distinct"], rel=0.01)
