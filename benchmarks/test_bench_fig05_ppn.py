"""Benchmark: Figure 5 — 8 vs 16 processes per node."""

import pytest

from conftest import means_by, run_reduced


def test_bench_fig05_ppn(benchmark):
    out = benchmark.pedantic(
        lambda: run_reduced("fig5", repetitions=6), rounds=1, iterations=1
    )
    for scenario in ("scenario1", "scenario2"):
        sub = out.records.filter(scenario=scenario)
        m8 = means_by(sub.filter(ppn=8), "num_nodes")
        m16 = means_by(sub.filter(ppn=16), "num_nodes")
        # Shape: the curves nearly coincide at every node count.
        for n in set(m8) & set(m16):
            assert m16[n] == pytest.approx(m8[n], rel=0.12)
