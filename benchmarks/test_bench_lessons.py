"""Benchmark: the lessons-learned audit (all in-text claims)."""

from conftest import run_reduced


def test_bench_lessons(benchmark):
    out = benchmark.pedantic(
        lambda: run_reduced("lessons", repetitions=20), rounds=1, iterations=1
    )
    assert "FAIL" not in out.figure
    assert out.figure.count("PASS") >= 6
