"""Benchmark: Figure 3 — the analytic N-vs-M network bound."""

from repro.analysis.netmodel import network_bound

from conftest import run_reduced


def test_bench_fig03_linkmodel(benchmark):
    out = benchmark.pedantic(lambda: run_reduced("fig3", repetitions=1), rounds=3, iterations=1)
    assert "narrow side" in out.figure
    # Shape: the bound is flat above N = M.
    assert network_bound(2, 2, 1100.0) == network_bound(16, 2, 1100.0) == 2200.0
    assert network_bound(1, 2, 1100.0) == 1100.0
