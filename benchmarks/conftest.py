"""Shared benchmark fixtures.

Benchmarks regenerate each paper figure at reduced repetition counts
(wall-clock-bounded) and assert the figure's *shape*: who wins, by
roughly what factor, where crossovers/plateaus fall.  Run with::

    pytest benchmarks/ --benchmark-only

Raw per-figure records at full repetitions are produced by the CLI
(``beegfs-repro run all --out results/``); these benches are the
regression harness.
"""

from __future__ import annotations

import pytest

from repro.calibration.plafrim import scenario1, scenario2


@pytest.fixture(scope="session")
def calib_s1():
    return scenario1()


@pytest.fixture(scope="session")
def calib_s2():
    return scenario2()


@pytest.fixture(scope="session")
def topo_s1(calib_s1):
    return calib_s1.platform(32)


@pytest.fixture(scope="session")
def topo_s2(calib_s2):
    return calib_s2.platform(32)


def run_reduced(exp_id: str, repetitions: int, seed: int = 101):
    """Run one registered experiment at reduced repetitions."""
    from repro.experiments import get_experiment

    return get_experiment(exp_id).run(repetitions=repetitions, seed=seed)


def means_by(records, factor: str) -> dict:
    return {
        value: float(group.bandwidths().mean())
        for value, group in records.group_by_factor(factor).items()
    }
