"""Benchmarks of the optimized hot paths and the parallel runner.

These cover what ``repro bench`` tracks in ``BENCH_<rev>.json``, but as
pytest-benchmark cases so regressions show up in the same harness as the
figure benches: the persistent max-min solver (incidence reuse and the
keyed solve cache), the vectorized fairness certificate, the fluid
engine's cached per-run hot path, and a reduced serial-vs-parallel
campaign whose stores must stay byte-identical.
"""

import json

import numpy as np

from repro.experiments.common import StandardExecutor
from repro.methodology.plan import ExperimentPlan, ExperimentSpec
from repro.methodology.protocol import ProtocolConfig
from repro.methodology.runner import ProtocolRunner
from repro.methodology.parallel import ParallelProtocolRunner
from repro.netsim.maxmin import MaxMinSolver, fairness_violations, max_min_rates

_NFLOWS, _NRES = 256, 60


def _solver_problem():
    rng = np.random.default_rng(0)
    memberships = [
        sorted(int(r) for r in rng.choice(_NRES, size=7, replace=False))
        for _ in range(_NFLOWS)
    ]
    return memberships, rng.uniform(500.0, 12000.0, _NRES)


def test_bench_solver_persistent(benchmark):
    """Repeated solves over one incidence matrix (the fluid segment loop)."""
    memberships, capacities = _solver_problem()
    solver = MaxMinSolver(memberships, _NRES)
    varied = [capacities * (1.0 + 0.001 * i) for i in range(64)]
    state = {"i": 0}

    def solve_next():
        state["i"] += 1
        return solver.solve(varied[state["i"] % len(varied)])

    rates = benchmark(solve_next)
    assert rates.shape == (_NFLOWS,)
    np.testing.assert_allclose(
        solver.solve(capacities), max_min_rates(memberships, capacities)
    )


def test_bench_solver_cache_hit(benchmark):
    """Identical capacities must return from the keyed cache, not re-solve."""
    memberships, capacities = _solver_problem()
    solver = MaxMinSolver(memberships, _NRES)
    solver.solve(capacities)
    rates = benchmark(lambda: solver.solve(capacities))
    assert rates.shape == (_NFLOWS,)
    assert solver.cache_len == 1


def test_bench_fairness_certificate(benchmark):
    """The vectorized max-min witness over a solved allocation."""
    memberships, capacities = _solver_problem()
    rates = max_min_rates(memberships, capacities)
    violations = benchmark(lambda: fairness_violations(memberships, capacities, rates))
    assert violations == []


def test_bench_fluid_hot_path(benchmark):
    """Warm-engine fluid runs at paper scale (32 nodes x 8 ppn, stripe 8)."""
    spec = ExperimentSpec(
        exp_id="bench",
        scenario="scenario1",
        factors={"num_nodes": 32, "ppn": 8, "stripe_count": 8},
    )
    executor = StandardExecutor(seed=7)
    executor(spec, 0)  # engine construction + cold caches out of the timing
    state = {"rep": 0}

    def run_next():
        state["rep"] += 1
        return executor(spec, state["rep"])

    result = benchmark(run_next)
    assert result.aggregate_bandwidth_mib_s > 1000


def _campaign_plan():
    specs = [
        ExperimentSpec(
            exp_id="bench",
            scenario="scenario1",
            factors={"num_nodes": 32, "ppn": 8, "stripe_count": s},
        )
        for s in (4, 8)
    ]
    return ExperimentPlan.build(specs, ProtocolConfig(repetitions=5), seed=7)


def test_bench_campaign_serial(benchmark):
    """A reduced 2-spec x 5-rep protocol campaign, serial."""
    plan = _campaign_plan()
    executor = StandardExecutor(seed=7)
    store = benchmark.pedantic(
        lambda: ProtocolRunner(executor).run(plan), rounds=3, iterations=1
    )
    assert len(store) == 10


def test_bench_campaign_parallel_equivalence(benchmark, tmp_path):
    """Parallel execution must stay byte-identical to serial, and is timed."""
    plan = _campaign_plan()
    serial = ProtocolRunner(StandardExecutor(seed=7)).run(plan)

    def parallel_run():
        return ParallelProtocolRunner(StandardExecutor(seed=7), n_workers=2).run(plan)

    store = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    a, b = tmp_path / "serial.json", tmp_path / "parallel.json"
    serial.write_json(a)
    store.write_json(b)
    assert json.loads(a.read_text()) == json.loads(b.read_text())
