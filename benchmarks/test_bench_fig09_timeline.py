"""Benchmark: Figure 9 — per-server bandwidth timelines."""

import pytest

from conftest import run_reduced


def test_bench_fig09_timeline(benchmark):
    out = benchmark.pedantic(
        lambda: run_reduced("fig9", repetitions=1), rounds=3, iterations=1
    )
    bw = {r.factors["placement"]: r.bw_mib_s for r in out.records}
    # Shape: one target per server doubles the single-server placement.
    assert bw["(1,1)"] / bw["(0,2)"] == pytest.approx(2.0, rel=0.1)
