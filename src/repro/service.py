"""The simulation service: one facade, one result cache.

Every execution path — :class:`~repro.methodology.runner.ProtocolRunner`
and its parallel twin (through the executors built by
:func:`repro.experiments.common.run_specs`), the CLI, and the bench
workloads — asks :class:`SimulationService` for ``run(spec, rep)``,
where ``spec`` is a canonical :class:`~repro.scenario.ScenarioSpec`.
The service owns:

* the **builder registry**: how a spec's ``builder`` name turns into a
  constructed engine + topology + application factory.  ``"standard"``
  (the paper's PlaFRIM deployment) is built in; experiment modules with
  bespoke platforms (e.g. the fig-10 scale-out sweep) register theirs
  via :func:`register_builder`;
* an **engine context cache** keyed on the spec fingerprint, so a
  100-repetition campaign pays engine construction once — the role the
  per-campaign ``StandardExecutor`` caches used to play, now shared
  process-wide;
* the **content-addressed result cache**: a tiered composite
  (:mod:`repro.cache`) keyed by ``(spec fingerprint, model revision,
  engine, rep)`` — an in-process LRU hot tier, the durable on-disk
  tier of record, and an optional read-through/write-behind remote
  tier shared through a ``repro serve`` instance.  A hit in any tier
  replays the stored :class:`~repro.engine.result.RunResult` *and* the
  engine's telemetry events byte-identically without executing
  anything (and promotes the entry into the faster tiers); a miss
  executes, normalizes the result through the exact JSON codec (so
  cold and warm runs are bit-equal), and populates every tier, disk
  first and atomically.

Runs with ``validation`` enabled bypass the cache in both directions:
the whole point of a validated run is to execute the checkers (and the
CI injection self-tests *must* re-execute to detect injected faults).

Cache hits, misses and bypasses are counted in the process metrics
registry (``service.cache`` with a ``status`` label) and in a module
tally for the CLI summary line; parallel workers ship their tally delta
back with each outcome.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from .cache import CACHE_SCHEMA, MemoryTier, RemoteTier, ResultCache, TieredCache
from .cache.disk import default_cache_dir
from .engine.result import RunResult, result_from_jsonable, result_to_jsonable
from .errors import ConfigError, ExperimentError
from .methodology.plan import ExperimentSpec
from .orchestrator.supervise import CircuitBreaker
from .scenario import ScenarioSpec
from .telemetry.bus import RingBufferSink, get_bus
from .telemetry.trace import current_trace, trace_scope
from .verify.level import ValidationLevel

__all__ = [
    "CACHE_SCHEMA",
    "BuiltScenario",
    "ResultCache",
    "SimulationService",
    "ServiceExecutor",
    "get_service",
    "register_builder",
    "default_cache_dir",
    "cache_config",
    "cache_stats",
    "reset_cache_stats",
    "add_cache_stats",
]

# How many constructed engine contexts the service keeps alive; oldest
# evicted first.  Campaigns sweep far fewer distinct configurations
# than this between construction and last use.
_CONTEXT_CAP = 128

# Capacity of the capture ring used on a miss: engine-level events of a
# single run (matches the parallel runner's per-task ring).
_CAPTURE_RING_CAPACITY = 65536

# The event-envelope keys the bus adds on emit; stripped before replay
# (the same convention as ParallelProtocolRunner._replay_worker_events).
_ENVELOPE_KEYS = ("schema", "seq", "event", "t")


# -- cache statistics --------------------------------------------------------------

# "degraded" counts runs executed cache-off because the circuit breaker
# was open; "error" counts cache I/O failures (each also a breaker
# strike); "corrupt" counts disk entries quarantined after a decode
# failure (each such lookup also counts the usual "miss").
_STATS = {
    "hit": 0,
    "miss": 0,
    "bypassed": 0,
    "uncached": 0,
    "degraded": 0,
    "error": 0,
    "corrupt": 0,
}


def cache_stats() -> dict[str, int]:
    """The process-wide cache tally (workers' deltas already folded in)."""
    return dict(_STATS)


def reset_cache_stats() -> None:
    for key in _STATS:
        _STATS[key] = 0


def add_cache_stats(delta: Mapping[str, int]) -> None:
    for key, value in delta.items():
        _STATS[key] = _STATS.get(key, 0) + int(value)


def _count(status: str) -> None:
    _STATS[status] = _STATS.get(status, 0) + 1
    get_bus().metrics.counter("service.cache", status=status).inc()


# -- builder registry --------------------------------------------------------------


@dataclass
class BuiltScenario:
    """A constructed execution context for one scenario fingerprint."""

    engine: Any
    topology: Any
    make_apps: Callable[[], list]


BuilderFn = Callable[[ScenarioSpec], BuiltScenario]

_BUILDERS: dict[str, BuilderFn] = {}


def register_builder(name: str, builder: BuilderFn) -> None:
    """Register how specs with ``builder == name`` are constructed."""
    _BUILDERS[name] = builder


def _engine_class(name: str) -> type:
    from .engine.des_runner import DESEngine
    from .engine.fluid_runner import FluidEngine

    return {"fluid": FluidEngine, "des": DESEngine}[name]


def _build_standard(spec: ScenarioSpec) -> BuiltScenario:
    """The paper's PlaFRIM platform: scenario calibration + factor deployment."""
    from .calibration.plafrim import scenario_by_name
    from .scenario.compile import default_apps_builder
    from .telemetry.profiling import get_profiler

    with get_profiler().span("engine.build"):
        factors = spec.factor_map
        calibration = scenario_by_name(spec.scenario)
        topology = calibration.platform(spec.max_nodes)
        deployment_kwargs: dict[str, Any] = {
            "stripe_count": int(factors.get("stripe_count", 4)),
        }
        if factors.get("chooser"):
            deployment_kwargs["chooser"] = str(factors["chooser"])
        if factors.get("chunk_kib"):
            deployment_kwargs["chunk_size"] = int(factors["chunk_kib"]) * 1024
        engine = _engine_class(spec.engine)(
            calibration,
            topology,
            calibration.deployment(**deployment_kwargs),
            seed=spec.seed,
            options=spec.options,
        )
    return BuiltScenario(
        engine=engine,
        topology=topology,
        make_apps=lambda: default_apps_builder(topology, factors),
    )


register_builder("standard", _build_standard)


# -- the result cache --------------------------------------------------------------

# The cache implementation itself lives in repro.cache (tiers, the
# composite, GC, quarantine); the service owns the policy, the tally
# and the persistent tier instances.

# Ambient cache policy for service.run() calls that pass None: lets the
# CLI's --no-cache/--cache-dir/--cache-remote reach experiments that
# call the service directly (timeline figures) without per-module
# plumbing.
_CACHE_DEFAULTS: dict[str, Any] = {
    "cache": True,
    "cache_dir": None,
    "cache_remote": None,
}


@contextmanager
def cache_config(
    cache: bool | None = None,
    cache_dir: str | Path | None = None,
    cache_remote: str | None = None,
) -> Iterator[None]:
    """Override the default cache policy for the enclosed calls."""
    previous = dict(_CACHE_DEFAULTS)
    if cache is not None:
        _CACHE_DEFAULTS["cache"] = bool(cache)
    if cache_dir is not None:
        _CACHE_DEFAULTS["cache_dir"] = str(cache_dir)
    if cache_remote is not None:
        _CACHE_DEFAULTS["cache_remote"] = str(cache_remote)
    try:
        yield
    finally:
        _CACHE_DEFAULTS.clear()
        _CACHE_DEFAULTS.update(previous)


# -- the service -------------------------------------------------------------------


class SimulationService:
    """Process-wide facade every run executes through (see module doc)."""

    def __init__(self) -> None:
        self._contexts: dict[tuple[str, str, str], BuiltScenario] = {}
        # Cache circuit breaker for the tier of record: repeated disk
        # OSErrors trip it open and runs degrade to cache-off instead of
        # failing the campaign; after the cooldown one probe half-opens
        # it.  (An unreadable tier of record means results cannot be
        # made durable; serving hot hits anyway would diverge tallies.)
        self.breaker = CircuitBreaker()
        # The remote tier's own breaker: remote faults degrade lookups
        # to the local tiers without touching the disk breaker.
        self.remote_breaker = CircuitBreaker()
        # Persistent tier state, keyed by cache root / remote address —
        # hot tiers must not alias across roots (chaos injections reuse
        # fingerprints across fresh cache directories).
        self._memory_tiers: dict[str, MemoryTier] = {}
        self._remote_tiers: dict[str, RemoteTier] = {}

    # -- tier plumbing -----------------------------------------------------

    def _on_corrupt(self, path: Path) -> None:
        del path  # the tally is global; the event already names nothing
        _count("corrupt")

    def _tiered(
        self,
        cache_dir: str | Path | None,
        cache_remote: str | None = None,
    ) -> TieredCache:
        """The tiered composite for one cache root (+ optional remote).

        The composite itself is cheap and per-call; the tiers behind it
        (hot LRU per root, one connection per remote address) and the
        breakers persist on the service.
        """
        root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        root_key = str(root)
        memory = self._memory_tiers.get(root_key)
        if memory is None:
            memory = self._memory_tiers.setdefault(root_key, MemoryTier())
        remote = None
        if cache_remote:
            address = str(cache_remote)
            remote = self._remote_tiers.get(address)
            if remote is None:
                remote = self._remote_tiers.setdefault(
                    address, RemoteTier.from_address(address)
                )
        return TieredCache(
            disk=ResultCache(root, on_corrupt=self._on_corrupt),
            memory=memory,
            remote=remote,
            remote_breaker=self.remote_breaker,
        )

    def drop_memory_tiers(self, cache_dir: str | Path | None = None) -> None:
        """Forget hot-tier contents (tests, and disk-tier fault drills).

        With ``cache_dir`` given, only that root's hot tier is cleared;
        otherwise all of them are.
        """
        if cache_dir is not None:
            root_key = str(Path(cache_dir))
            tier = self._memory_tiers.get(root_key)
            if tier is not None:
                tier.clear()
            return
        for tier in self._memory_tiers.values():
            tier.clear()
        self._memory_tiers.clear()

    def reset_tiers(self) -> None:
        """Drop all tier state: hot tiers, remote connections, breakers'
        remote half.  (The disk breaker is reset by callers that own it,
        e.g. the chaos harness.)"""
        self.drop_memory_tiers()
        for remote in self._remote_tiers.values():
            remote.close()
        self._remote_tiers.clear()
        self.remote_breaker = CircuitBreaker()

    def flush_remote(self, timeout: float = 10.0) -> bool:
        """Drain every remote tier's write-behind queue (CI barriers)."""
        ok = True
        for remote in self._remote_tiers.values():
            ok = remote.flush(timeout=timeout) and ok
        return ok

    def context(self, spec: ScenarioSpec) -> BuiltScenario:
        """The constructed engine context for a spec, built at most once."""
        key = (spec.fingerprint, spec.engine, spec.options.validation.name)
        ctx = self._contexts.get(key)
        if ctx is None:
            builder = _BUILDERS.get(spec.builder)
            if builder is None:
                known = ", ".join(sorted(_BUILDERS))
                raise ConfigError(
                    f"unknown scenario builder {spec.builder!r} (registered: {known})"
                )
            ctx = builder(spec)
            while len(self._contexts) >= _CONTEXT_CAP:
                self._contexts.pop(next(iter(self._contexts)))
            self._contexts[key] = ctx
        return ctx

    def run(
        self,
        spec: ScenarioSpec,
        rep: int,
        *,
        cache: bool | None = None,
        cache_dir: str | Path | None = None,
        cache_remote: str | None = None,
    ) -> RunResult:
        """Execute (or replay) one repetition of a scenario.

        ``cache``/``cache_dir``/``cache_remote`` default to the ambient
        :func:`cache_config` policy.  Validated runs never touch the
        cache: their purpose is to execute the invariant checkers.  On a
        miss the result is passed through the exact JSON codec before it
        is returned, so a cold result and its later cache-hit replay are
        byte-identical.

        Cache I/O failures never fail the run: each disk ``OSError`` on
        load or store is counted (``error``) and strikes the circuit
        breaker; once the breaker opens, runs execute cache-off
        (``degraded``) until the cooldown's half-open probe succeeds.
        Remote-tier faults degrade inside the composite (per-tier
        breaker) and never reach this accounting.
        """
        if cache is None:
            cache = bool(_CACHE_DEFAULTS["cache"])
        if cache_dir is None:
            cache_dir = _CACHE_DEFAULTS["cache_dir"]
        if cache_remote is None:
            cache_remote = _CACHE_DEFAULTS["cache_remote"]
        use_cache = cache and spec.options.validation is ValidationLevel.OFF
        bus = get_bus()
        degraded = use_cache and not self.breaker.allow()
        if degraded:
            use_cache = False
            _count("degraded")
            self._emit_breaker(bus)
        if not use_cache:
            if not degraded:
                _count("bypassed" if cache else "uncached")
            ctx = self.context(spec)
            return ctx.engine.run(ctx.make_apps(), rep=rep)

        tiers = self._tiered(cache_dir, cache_remote)
        probe_started = time.perf_counter()
        try:
            entry = tiers.lookup(spec, rep)
        except OSError:
            self._cache_fault(bus)
            entry = None
        else:
            if entry is not None:
                self.breaker.record_success()
                self._emit_breaker(bus)
                _count("hit")
                if bus.enabled:
                    self._replay_events(bus, entry.get("events", ()))
                self._emit_cache_span(bus, "hit", probe_started)
                return result_from_jsonable(entry["result"])

        _count("miss")
        ctx = self.context(spec)
        apps = ctx.make_apps()
        # Capture the engine's telemetry (flow retries, fault triggers)
        # even when no user sink is attached — the attached ring enables
        # the bus, and instrumentation is proven byte-identical — so a
        # later hit can replay the run's events, not just its result.
        ring = RingBufferSink(_CAPTURE_RING_CAPACITY)
        bus.attach(ring)
        try:
            result = ctx.engine.run(apps, rep=rep)
        finally:
            bus.detach(ring)
        result = result_from_jsonable(result_to_jsonable(result))
        try:
            tiers.store(spec, rep, result, ring.events)
        except OSError:
            self._cache_fault(bus)
        else:
            self.breaker.record_success()
            self._emit_breaker(bus)
        # After the ring detaches: the span marker must not be captured
        # into the cache entry, or a replayed hit would claim a miss.
        self._emit_cache_span(bus, "miss", probe_started)
        return result

    def prefetch(
        self,
        jobs: "list[tuple[ScenarioSpec, int]]",
        *,
        cache: bool | None = None,
        cache_dir: str | Path | None = None,
        cache_remote: str | None = None,
    ) -> dict[tuple[str, str, int], dict[str, Any]]:
        """Bulk cache lookup: load every hit among ``jobs`` in one pass.

        Walks the tiers fast → slow: the hot tier answers first, the
        remainder goes through the disk tier's one-``scandir``-per-
        fingerprint bulk pass, and what is still missing is fetched from
        the remote tier (when configured) in batched frames.  Returns
        raw cache entries keyed by ``(fingerprint, engine, rep)``.

        This emits nothing and counts nothing in the run tally: consume
        each entry with :meth:`resolve_prefetched` at the position the
        run would have executed, so events, counters (one ``hit`` per
        run — never per batch) and results are byte-identical to the
        per-run path.  Jobs absent from the returned map are cache
        misses and should go through :meth:`run` as usual.  I/O errors
        here leave the job a miss; breaker accounting stays on the
        authoritative per-run path, and nothing is probed while the
        breaker is not closed.
        """
        if cache is None:
            cache = bool(_CACHE_DEFAULTS["cache"])
        if cache_dir is None:
            cache_dir = _CACHE_DEFAULTS["cache_dir"]
        if cache_remote is None:
            cache_remote = _CACHE_DEFAULTS["cache_remote"]
        out: dict[tuple[str, str, int], dict[str, Any]] = {}
        if not cache or self.breaker.state != "closed":
            return out
        pairs = [
            (spec, int(rep))
            for spec, rep in jobs
            if spec.options.validation is ValidationLevel.OFF
        ]
        if not pairs:
            return out
        return self._tiered(cache_dir, cache_remote).lookup_many(pairs)

    def resolve_prefetched(self, entry: Mapping[str, Any]) -> RunResult:
        """Consume one prefetched cache entry as the hit it stands for.

        Replays the stored telemetry events, counts exactly one ``hit``
        and closes the trace span — the same sequence :meth:`run`
        performs on an inline hit — so a prefetched campaign is
        byte-identical to one probing the cache run by run.
        """
        bus = get_bus()
        started = time.perf_counter()
        self.breaker.record_success()
        self._emit_breaker(bus)
        _count("hit")
        if bus.enabled:
            self._replay_events(bus, entry.get("events", ()))
        self._emit_cache_span(bus, "hit", started)
        return result_from_jsonable(entry["result"])

    def run_many(
        self,
        jobs: "list[tuple[ScenarioSpec, int]]",
        *,
        cache: bool | None = None,
        cache_dir: str | Path | None = None,
        cache_remote: str | None = None,
    ) -> list[RunResult]:
        """Execute (or replay) many ``(spec, rep)`` jobs, in job order.

        One fingerprint-sorted bulk pass resolves every cache hit; only
        the misses execute.  Results come back in the order given, and
        each job's events/counters are emitted at its own position.
        """
        entries = self.prefetch(
            jobs, cache=cache, cache_dir=cache_dir, cache_remote=cache_remote
        )
        results: list[RunResult] = []
        for spec, rep in jobs:
            entry = entries.pop((spec.fingerprint, spec.engine, int(rep)), None)
            if entry is not None:
                results.append(self.resolve_prefetched(entry))
            else:
                results.append(
                    self.run(
                        spec,
                        rep,
                        cache=cache,
                        cache_dir=cache_dir,
                        cache_remote=cache_remote,
                    )
                )
        return results

    def _cache_fault(self, bus: Any) -> None:
        _count("error")
        self.breaker.record_failure()
        self._emit_breaker(bus)

    @staticmethod
    def _emit_cache_span(bus: Any, status: str, started: float) -> None:
        """Close the "cache" span of the ambient trace (tracing only).

        Emitted as a ``trace.span`` marker — a child of whatever span is
        active (the server's "run" span, or the local runner's "job"
        span) — carrying the probe/execute outcome and machine-time
        duration in the payload, the same convention as
        ``worker.end.elapsed_s``.
        """
        if not getattr(bus, "tracing", False):
            return
        ctx = current_trace()
        if ctx is None:
            return
        with trace_scope(ctx.child("cache")):
            bus.emit(
                "trace.span",
                name="cache",
                phase="end",
                status=status,
                elapsed_s=time.perf_counter() - started,
            )

    def _emit_breaker(self, bus: Any) -> None:
        for state, failures in self.breaker.drain_transitions():
            if bus.enabled:
                bus.emit("orchestrator.breaker", state=state, failures=failures)

    @staticmethod
    def _replay_events(bus: Any, events: Any) -> None:
        for event in events:
            payload = {k: v for k, v in event.items() if k not in _ENVELOPE_KEYS}
            bus.emit(event["event"], t=event.get("t"), **payload)


_SERVICE = SimulationService()


def get_service() -> SimulationService:
    return _SERVICE


# -- the protocol-runner adapter ---------------------------------------------------


@dataclass
class ServiceExecutor:
    """An :class:`~repro.methodology.runner.Executor` over the service.

    Maps each planned :class:`ExperimentSpec` (by key) to its compiled
    :class:`ScenarioSpec` — the lowering happened once, up front, in
    ``run_specs`` — and carries only plain data, so it crosses the
    parallel runner's worker boundary under any start method.
    """

    scenarios: dict[str, ScenarioSpec] = field(default_factory=dict)
    cache: bool = True
    cache_dir: str | None = None
    cache_remote: str | None = None
    seed: int = 0
    # Prefetched cache entries keyed by (planned key, rep), populated by
    # the runners' bulk pass and *popped* per run so every hit is
    # replayed and counted exactly once, at the run's own position.
    # Never pickled: workers re-probe their own cache.
    prefetched: dict[tuple[str, int], dict[str, Any]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __call__(self, spec: ExperimentSpec, rep: int) -> RunResult:
        scenario = self.scenarios.get(spec.key)
        if scenario is None:
            raise ExperimentError(f"no compiled scenario for planned spec {spec.key!r}")
        entry = self.prefetched.pop((spec.key, int(rep)), None)
        if entry is not None:
            return get_service().resolve_prefetched(entry)
        return get_service().run(
            scenario,
            rep,
            cache=self.cache,
            cache_dir=self.cache_dir,
            cache_remote=self.cache_remote,
        )

    def prefetch(self, jobs: "list[tuple[ExperimentSpec, int]]") -> int:
        """Bulk-load the cache entries for the given planned jobs.

        Returns how many hits were staged.  Safe to call with jobs whose
        keys are unknown (they are skipped and will fail per-run with
        the usual error).
        """
        pairs = [
            (self.scenarios[spec.key], int(rep))
            for spec, rep in jobs
            if spec.key in self.scenarios
        ]
        entries = get_service().prefetch(
            pairs,
            cache=self.cache,
            cache_dir=self.cache_dir,
            cache_remote=self.cache_remote,
        )
        staged = 0
        for spec, rep in jobs:
            scenario = self.scenarios.get(spec.key)
            if scenario is None:
                continue
            entry = entries.get((scenario.fingerprint, scenario.engine, int(rep)))
            if entry is not None and (spec.key, int(rep)) not in self.prefetched:
                self.prefetched[(spec.key, int(rep))] = entry
                staged += 1
        return staged

    def __getstate__(self) -> dict[str, Any]:
        # Entries can be large and are parent-side state: workers probe
        # their own cache, so the staged map never crosses the pipe.
        state = self.__dict__.copy()
        state["prefetched"] = {}
        return state
