"""The simulation service: one facade, one result cache.

Every execution path — :class:`~repro.methodology.runner.ProtocolRunner`
and its parallel twin (through the executors built by
:func:`repro.experiments.common.run_specs`), the CLI, and the bench
workloads — asks :class:`SimulationService` for ``run(spec, rep)``,
where ``spec`` is a canonical :class:`~repro.scenario.ScenarioSpec`.
The service owns:

* the **builder registry**: how a spec's ``builder`` name turns into a
  constructed engine + topology + application factory.  ``"standard"``
  (the paper's PlaFRIM deployment) is built in; experiment modules with
  bespoke platforms (e.g. the fig-10 scale-out sweep) register theirs
  via :func:`register_builder`;
* an **engine context cache** keyed on the spec fingerprint, so a
  100-repetition campaign pays engine construction once — the role the
  per-campaign ``StandardExecutor`` caches used to play, now shared
  process-wide;
* the **content-addressed result cache**: on-disk JSON entries keyed by
  ``(spec fingerprint, model revision, engine, rep)``.  A hit replays
  the stored :class:`~repro.engine.result.RunResult` *and* the engine's
  telemetry events byte-identically without executing anything; a miss
  executes, normalizes the result through the exact JSON codec (so cold
  and warm runs are bit-equal), and populates the entry atomically.

Runs with ``validation`` enabled bypass the cache in both directions:
the whole point of a validated run is to execute the checkers (and the
CI injection self-tests *must* re-execute to detect injected faults).

Cache hits, misses and bypasses are counted in the process metrics
registry (``service.cache`` with a ``status`` label) and in a module
tally for the CLI summary line; parallel workers ship their tally delta
back with each outcome.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from .engine.result import RunResult, result_from_jsonable, result_to_jsonable
from .errors import ConfigError, ExperimentError
from .methodology.plan import ExperimentSpec
from .orchestrator.journal import fsync_dir
from .orchestrator.supervise import CircuitBreaker
from .scenario import MODEL_REVISION, ScenarioSpec
from .telemetry.bus import RingBufferSink, get_bus
from .telemetry.trace import current_trace, trace_scope
from .verify.level import ValidationLevel

__all__ = [
    "CACHE_SCHEMA",
    "BuiltScenario",
    "ResultCache",
    "SimulationService",
    "ServiceExecutor",
    "get_service",
    "register_builder",
    "default_cache_dir",
    "cache_config",
    "cache_stats",
    "reset_cache_stats",
    "add_cache_stats",
]

CACHE_SCHEMA = 1

# How many constructed engine contexts the service keeps alive; oldest
# evicted first.  Campaigns sweep far fewer distinct configurations
# than this between construction and last use.
_CONTEXT_CAP = 128

# Capacity of the capture ring used on a miss: engine-level events of a
# single run (matches the parallel runner's per-task ring).
_CAPTURE_RING_CAPACITY = 65536

# The event-envelope keys the bus adds on emit; stripped before replay
# (the same convention as ParallelProtocolRunner._replay_worker_events).
_ENVELOPE_KEYS = ("schema", "seq", "event", "t")


# -- cache statistics --------------------------------------------------------------

# "degraded" counts runs executed cache-off because the circuit breaker
# was open; "error" counts cache I/O failures (each also a breaker strike).
_STATS = {"hit": 0, "miss": 0, "bypassed": 0, "uncached": 0, "degraded": 0, "error": 0}


def cache_stats() -> dict[str, int]:
    """The process-wide cache tally (workers' deltas already folded in)."""
    return dict(_STATS)


def reset_cache_stats() -> None:
    for key in _STATS:
        _STATS[key] = 0


def add_cache_stats(delta: Mapping[str, int]) -> None:
    for key, value in delta.items():
        _STATS[key] = _STATS.get(key, 0) + int(value)


def _count(status: str) -> None:
    _STATS[status] = _STATS.get(status, 0) + 1
    get_bus().metrics.counter("service.cache", status=status).inc()


# -- builder registry --------------------------------------------------------------


@dataclass
class BuiltScenario:
    """A constructed execution context for one scenario fingerprint."""

    engine: Any
    topology: Any
    make_apps: Callable[[], list]


BuilderFn = Callable[[ScenarioSpec], BuiltScenario]

_BUILDERS: dict[str, BuilderFn] = {}


def register_builder(name: str, builder: BuilderFn) -> None:
    """Register how specs with ``builder == name`` are constructed."""
    _BUILDERS[name] = builder


def _engine_class(name: str) -> type:
    from .engine.des_runner import DESEngine
    from .engine.fluid_runner import FluidEngine

    return {"fluid": FluidEngine, "des": DESEngine}[name]


def _build_standard(spec: ScenarioSpec) -> BuiltScenario:
    """The paper's PlaFRIM platform: scenario calibration + factor deployment."""
    from .calibration.plafrim import scenario_by_name
    from .scenario.compile import default_apps_builder
    from .telemetry.profiling import get_profiler

    with get_profiler().span("engine.build"):
        factors = spec.factor_map
        calibration = scenario_by_name(spec.scenario)
        topology = calibration.platform(spec.max_nodes)
        deployment_kwargs: dict[str, Any] = {
            "stripe_count": int(factors.get("stripe_count", 4)),
        }
        if factors.get("chooser"):
            deployment_kwargs["chooser"] = str(factors["chooser"])
        if factors.get("chunk_kib"):
            deployment_kwargs["chunk_size"] = int(factors["chunk_kib"]) * 1024
        engine = _engine_class(spec.engine)(
            calibration,
            topology,
            calibration.deployment(**deployment_kwargs),
            seed=spec.seed,
            options=spec.options,
        )
    return BuiltScenario(
        engine=engine,
        topology=topology,
        make_apps=lambda: default_apps_builder(topology, factors),
    )


register_builder("standard", _build_standard)


# -- the result cache --------------------------------------------------------------


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/beegfs-repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "beegfs-repro"


# Ambient cache policy for service.run() calls that pass None: lets the
# CLI's --no-cache/--cache-dir reach experiments that call the service
# directly (timeline figures) without per-module plumbing.
_CACHE_DEFAULTS: dict[str, Any] = {"cache": True, "cache_dir": None}


@contextmanager
def cache_config(
    cache: bool | None = None, cache_dir: str | Path | None = None
) -> Iterator[None]:
    """Override the default cache policy for the enclosed calls."""
    previous = dict(_CACHE_DEFAULTS)
    if cache is not None:
        _CACHE_DEFAULTS["cache"] = bool(cache)
    if cache_dir is not None:
        _CACHE_DEFAULTS["cache_dir"] = str(cache_dir)
    try:
        yield
    finally:
        _CACHE_DEFAULTS.clear()
        _CACHE_DEFAULTS.update(previous)


class ResultCache:
    """Content-addressed on-disk store of simulated run results.

    Layout: ``<root>/<fp[:2]>/<fp>/<engine>-m<model_revision>-r<rep>.json``
    where ``fp`` is the spec's behaviour fingerprint.  Entries are JSON
    with the full spec embedded, so an entry is self-describing (and a
    fingerprint collision with a *different* spec would be detectable).
    Writes are atomic (same-directory tempfile + ``os.replace``), so
    concurrent campaigns over one cache directory cannot corrupt it.
    """

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, spec: ScenarioSpec, rep: int) -> Path:
        fp = spec.fingerprint
        return self.root / fp[:2] / fp / f"{spec.engine}-m{MODEL_REVISION}-r{int(rep)}.json"

    def load(self, spec: ScenarioSpec, rep: int) -> dict[str, Any] | None:
        """The entry for (spec, rep), or ``None`` on a miss or corruption.

        A missing file is a normal miss; a torn/garbled entry degrades
        to a miss (the run simply re-executes).  Any *other* ``OSError``
        — dead mount, permission loss, not-a-directory — propagates so
        the service can count it against the cache circuit breaker.
        """
        path = self.path_for(spec, rep)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        try:
            entry = json.loads(text)
        except json.JSONDecodeError:
            return None
        if (
            entry.get("schema") != CACHE_SCHEMA
            or entry.get("fingerprint") != spec.fingerprint
            or entry.get("model_revision") != MODEL_REVISION
            or entry.get("engine") != spec.engine
            or entry.get("rep") != int(rep)
        ):
            return None
        return entry

    def store(
        self,
        spec: ScenarioSpec,
        rep: int,
        result: RunResult,
        events: list[dict[str, Any]],
    ) -> Path:
        path = self.path_for(spec, rep)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA,
            "fingerprint": spec.fingerprint,
            "model_revision": MODEL_REVISION,
            "engine": spec.engine,
            "rep": int(rep),
            "spec": spec.to_jsonable(),
            "result": result_to_jsonable(result),
            "events": events,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            # The rename itself must survive a crash: sync the directory.
            fsync_dir(path.parent)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*/*.json"))

    def gc(self, max_bytes: int, dry_run: bool = False) -> dict[str, int]:
        """Evict entries, oldest mtime first, until the cache fits.

        LRU-by-mtime: a cache hit does not touch mtime, so this is
        strictly least-recently-*written* — good enough for a cache
        whose entries are immutable.  Emptied fingerprint directories
        are pruned.  Returns a summary and emits a ``cache.gc`` event
        plus the ``service.cache.evicted`` counter.

        ``dry_run=True`` deletes nothing: the summary reports what a
        real pass *would* evict (and no event or counter is emitted,
        since nothing happened).
        """
        if max_bytes < 0:
            raise ConfigError(f"max_bytes must be >= 0, got {max_bytes}")
        files: list[tuple[float, int, Path]] = []
        if self.root.is_dir():
            for path in self.root.glob("*/*/*.json"):
                try:
                    st = path.stat()
                except OSError:
                    continue
                files.append((st.st_mtime, st.st_size, path))
        files.sort(key=lambda item: (item[0], str(item[2])))
        total = sum(size for _, size, _ in files)
        evicted = 0
        freed = 0
        for _, size, path in files:
            if total - freed <= max_bytes:
                break
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    continue
            evicted += 1
            freed += size
        if evicted and not dry_run:
            for depth in ("*/*", "*"):
                for directory in self.root.glob(depth):
                    try:
                        directory.rmdir()
                    except OSError:
                        pass  # not empty (or gone already)
        summary = {
            "scanned": len(files),
            "evicted": evicted,
            "freed_bytes": freed,
            "remaining_bytes": total - freed,
            "dry_run": bool(dry_run),
        }
        if dry_run:
            return summary
        bus = get_bus()
        if bus.enabled:
            bus.metrics.counter("service.cache.evicted").inc(evicted)
            bus.emit(
                "cache.gc",
                evicted=evicted,
                freed_bytes=freed,
                remaining_bytes=total - freed,
            )
        return summary


# -- the service -------------------------------------------------------------------


class SimulationService:
    """Process-wide facade every run executes through (see module doc)."""

    def __init__(self) -> None:
        self._contexts: dict[tuple[str, str, str], BuiltScenario] = {}
        # Cache-tier circuit breaker: repeated cache OSErrors trip it
        # open and runs degrade to cache-off instead of failing the
        # campaign; after the cooldown one probe half-opens it.
        self.breaker = CircuitBreaker()

    def context(self, spec: ScenarioSpec) -> BuiltScenario:
        """The constructed engine context for a spec, built at most once."""
        key = (spec.fingerprint, spec.engine, spec.options.validation.name)
        ctx = self._contexts.get(key)
        if ctx is None:
            builder = _BUILDERS.get(spec.builder)
            if builder is None:
                known = ", ".join(sorted(_BUILDERS))
                raise ConfigError(
                    f"unknown scenario builder {spec.builder!r} (registered: {known})"
                )
            ctx = builder(spec)
            while len(self._contexts) >= _CONTEXT_CAP:
                self._contexts.pop(next(iter(self._contexts)))
            self._contexts[key] = ctx
        return ctx

    def run(
        self,
        spec: ScenarioSpec,
        rep: int,
        *,
        cache: bool | None = None,
        cache_dir: str | Path | None = None,
    ) -> RunResult:
        """Execute (or replay) one repetition of a scenario.

        ``cache``/``cache_dir`` default to the ambient
        :func:`cache_config` policy.  Validated runs never touch the
        cache: their purpose is to execute the invariant checkers.  On a
        miss the result is passed through the exact JSON codec before it
        is returned, so a cold result and its later cache-hit replay are
        byte-identical.

        Cache I/O failures never fail the run: each ``OSError`` on load
        or store is counted (``error``) and strikes the circuit breaker;
        once the breaker opens, runs execute cache-off (``degraded``)
        until the cooldown's half-open probe succeeds.
        """
        if cache is None:
            cache = bool(_CACHE_DEFAULTS["cache"])
        if cache_dir is None:
            cache_dir = _CACHE_DEFAULTS["cache_dir"]
        use_cache = cache and spec.options.validation is ValidationLevel.OFF
        bus = get_bus()
        degraded = use_cache and not self.breaker.allow()
        if degraded:
            use_cache = False
            _count("degraded")
            self._emit_breaker(bus)
        if not use_cache:
            if not degraded:
                _count("bypassed" if cache else "uncached")
            ctx = self.context(spec)
            return ctx.engine.run(ctx.make_apps(), rep=rep)

        store = ResultCache(cache_dir)
        probe_started = time.perf_counter()
        try:
            entry = store.load(spec, rep)
        except OSError:
            self._cache_fault(bus)
            entry = None
        else:
            if entry is not None:
                self.breaker.record_success()
                self._emit_breaker(bus)
                _count("hit")
                if bus.enabled:
                    self._replay_events(bus, entry.get("events", ()))
                self._emit_cache_span(bus, "hit", probe_started)
                return result_from_jsonable(entry["result"])

        _count("miss")
        ctx = self.context(spec)
        apps = ctx.make_apps()
        # Capture the engine's telemetry (flow retries, fault triggers)
        # even when no user sink is attached — the attached ring enables
        # the bus, and instrumentation is proven byte-identical — so a
        # later hit can replay the run's events, not just its result.
        ring = RingBufferSink(_CAPTURE_RING_CAPACITY)
        bus.attach(ring)
        try:
            result = ctx.engine.run(apps, rep=rep)
        finally:
            bus.detach(ring)
        result = result_from_jsonable(result_to_jsonable(result))
        try:
            store.store(spec, rep, result, ring.events)
        except OSError:
            self._cache_fault(bus)
        else:
            self.breaker.record_success()
            self._emit_breaker(bus)
        # After the ring detaches: the span marker must not be captured
        # into the cache entry, or a replayed hit would claim a miss.
        self._emit_cache_span(bus, "miss", probe_started)
        return result

    def prefetch(
        self,
        jobs: "list[tuple[ScenarioSpec, int]]",
        *,
        cache: bool | None = None,
        cache_dir: str | Path | None = None,
    ) -> dict[tuple[str, str, int], dict[str, Any]]:
        """Bulk cache lookup: load every hit among ``jobs`` in one pass.

        Jobs are grouped by fingerprint and each fingerprint directory
        is scanned **once** (one ``scandir`` replaces a failed ``open``
        per missing rep), visiting directories in sorted order.  Returns
        raw cache entries keyed by ``(fingerprint, engine, rep)``.

        This emits nothing and counts nothing: consume each entry with
        :meth:`resolve_prefetched` at the position the run would have
        executed, so events, counters (one ``hit`` per run — never per
        batch) and results are byte-identical to the per-run path.  Jobs
        absent from the returned map are cache misses and should go
        through :meth:`run` as usual.  I/O errors here leave the job a
        miss; breaker accounting stays on the authoritative per-run
        path, and nothing is probed while the breaker is not closed.
        """
        if cache is None:
            cache = bool(_CACHE_DEFAULTS["cache"])
        if cache_dir is None:
            cache_dir = _CACHE_DEFAULTS["cache_dir"]
        out: dict[tuple[str, str, int], dict[str, Any]] = {}
        if not cache or self.breaker.state != "closed":
            return out
        store = ResultCache(cache_dir)
        by_fp: dict[str, list[tuple[ScenarioSpec, int]]] = {}
        for spec, rep in jobs:
            if spec.options.validation is not ValidationLevel.OFF:
                continue
            by_fp.setdefault(spec.fingerprint, []).append((spec, int(rep)))
        for fp in sorted(by_fp):
            probe = by_fp[fp][0][0]
            try:
                names = {e.name for e in os.scandir(store.path_for(probe, 0).parent)}
            except OSError:
                continue
            for spec, rep in sorted(by_fp[fp], key=lambda job: job[1]):
                key = (spec.fingerprint, spec.engine, rep)
                if key in out or store.path_for(spec, rep).name not in names:
                    continue
                try:
                    entry = store.load(spec, rep)
                except OSError:
                    continue
                if entry is not None:
                    out[key] = entry
        return out

    def resolve_prefetched(self, entry: Mapping[str, Any]) -> RunResult:
        """Consume one prefetched cache entry as the hit it stands for.

        Replays the stored telemetry events, counts exactly one ``hit``
        and closes the trace span — the same sequence :meth:`run`
        performs on an inline hit — so a prefetched campaign is
        byte-identical to one probing the cache run by run.
        """
        bus = get_bus()
        started = time.perf_counter()
        self.breaker.record_success()
        self._emit_breaker(bus)
        _count("hit")
        if bus.enabled:
            self._replay_events(bus, entry.get("events", ()))
        self._emit_cache_span(bus, "hit", started)
        return result_from_jsonable(entry["result"])

    def run_many(
        self,
        jobs: "list[tuple[ScenarioSpec, int]]",
        *,
        cache: bool | None = None,
        cache_dir: str | Path | None = None,
    ) -> list[RunResult]:
        """Execute (or replay) many ``(spec, rep)`` jobs, in job order.

        One fingerprint-sorted bulk pass resolves every cache hit; only
        the misses execute.  Results come back in the order given, and
        each job's events/counters are emitted at its own position.
        """
        entries = self.prefetch(jobs, cache=cache, cache_dir=cache_dir)
        results: list[RunResult] = []
        for spec, rep in jobs:
            entry = entries.pop((spec.fingerprint, spec.engine, int(rep)), None)
            if entry is not None:
                results.append(self.resolve_prefetched(entry))
            else:
                results.append(self.run(spec, rep, cache=cache, cache_dir=cache_dir))
        return results

    def _cache_fault(self, bus: Any) -> None:
        _count("error")
        self.breaker.record_failure()
        self._emit_breaker(bus)

    @staticmethod
    def _emit_cache_span(bus: Any, status: str, started: float) -> None:
        """Close the "cache" span of the ambient trace (tracing only).

        Emitted as a ``trace.span`` marker — a child of whatever span is
        active (the server's "run" span, or the local runner's "job"
        span) — carrying the probe/execute outcome and machine-time
        duration in the payload, the same convention as
        ``worker.end.elapsed_s``.
        """
        if not getattr(bus, "tracing", False):
            return
        ctx = current_trace()
        if ctx is None:
            return
        with trace_scope(ctx.child("cache")):
            bus.emit(
                "trace.span",
                name="cache",
                phase="end",
                status=status,
                elapsed_s=time.perf_counter() - started,
            )

    def _emit_breaker(self, bus: Any) -> None:
        for state, failures in self.breaker.drain_transitions():
            if bus.enabled:
                bus.emit("orchestrator.breaker", state=state, failures=failures)

    @staticmethod
    def _replay_events(bus: Any, events: Any) -> None:
        for event in events:
            payload = {k: v for k, v in event.items() if k not in _ENVELOPE_KEYS}
            bus.emit(event["event"], t=event.get("t"), **payload)


_SERVICE = SimulationService()


def get_service() -> SimulationService:
    return _SERVICE


# -- the protocol-runner adapter ---------------------------------------------------


@dataclass
class ServiceExecutor:
    """An :class:`~repro.methodology.runner.Executor` over the service.

    Maps each planned :class:`ExperimentSpec` (by key) to its compiled
    :class:`ScenarioSpec` — the lowering happened once, up front, in
    ``run_specs`` — and carries only plain data, so it crosses the
    parallel runner's worker boundary under any start method.
    """

    scenarios: dict[str, ScenarioSpec] = field(default_factory=dict)
    cache: bool = True
    cache_dir: str | None = None
    seed: int = 0
    # Prefetched cache entries keyed by (planned key, rep), populated by
    # the runners' bulk pass and *popped* per run so every hit is
    # replayed and counted exactly once, at the run's own position.
    # Never pickled: workers re-probe their own cache.
    prefetched: dict[tuple[str, int], dict[str, Any]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __call__(self, spec: ExperimentSpec, rep: int) -> RunResult:
        scenario = self.scenarios.get(spec.key)
        if scenario is None:
            raise ExperimentError(f"no compiled scenario for planned spec {spec.key!r}")
        entry = self.prefetched.pop((spec.key, int(rep)), None)
        if entry is not None:
            return get_service().resolve_prefetched(entry)
        return get_service().run(scenario, rep, cache=self.cache, cache_dir=self.cache_dir)

    def prefetch(self, jobs: "list[tuple[ExperimentSpec, int]]") -> int:
        """Bulk-load the cache entries for the given planned jobs.

        Returns how many hits were staged.  Safe to call with jobs whose
        keys are unknown (they are skipped and will fail per-run with
        the usual error).
        """
        pairs = [
            (self.scenarios[spec.key], int(rep))
            for spec, rep in jobs
            if spec.key in self.scenarios
        ]
        entries = get_service().prefetch(pairs, cache=self.cache, cache_dir=self.cache_dir)
        staged = 0
        for spec, rep in jobs:
            scenario = self.scenarios.get(spec.key)
            if scenario is None:
                continue
            entry = entries.get((scenario.fingerprint, scenario.engine, int(rep)))
            if entry is not None and (spec.key, int(rep)) not in self.prefetched:
                self.prefetched[(spec.key, int(rep))] = entry
                staged += 1
        return staged

    def __getstate__(self) -> dict[str, Any]:
        # Entries can be large and are parent-side state: workers probe
        # their own cache, so the staged map never crosses the pipe.
        state = self.__dict__.copy()
        state["prefetched"] = {}
        return state
