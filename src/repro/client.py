"""The remote-execution client: retries, hedging, graceful degradation.

:class:`RemoteClient` speaks the :mod:`repro.server.protocol` wire
format to an :class:`~repro.server.app.OrchestratorServer` and makes
the unreliable network look like the local service:

* **bounded retries with deterministic backoff** — transport faults
  (reset, timeout, torn frame) reconnect and retry up to
  ``max_attempts`` times, with the delay computed by the same seeded
  :meth:`~repro.orchestrator.supervise.SupervisionPolicy.backoff_s` the
  local supervisor uses (no ``random``, so campaigns stay replayable);
* **deadline awareness** — every operation carries an optional overall
  deadline; a retry that cannot finish before it is not attempted;
* **idempotent resubmission** — a retried submit of the same
  ``(fingerprint, rep)`` attaches to the server's existing job, so
  "did my submit land before the reset?" never needs an answer;
* **hedging** — a ``wait`` that exceeds ``hedge_after_s`` reconnects
  and resubmits on a fresh connection (free, by idempotency) in case
  the original connection is a zombie;
* **graceful degradation** — when the server stays unreachable past the
  retry budget and ``fallback`` is enabled, the run executes locally
  through :func:`repro.service.get_service` (one ``client.fallback``
  event), so a campaign outlives its server.

:class:`RemoteExecutor` adapts the client to the
:class:`~repro.methodology.runner.ProtocolRunner` executor contract —
the same merge logic then produces record stores byte-identical to a
local campaign's — and :func:`remote_run_specs` mirrors
:func:`repro.experiments.common.run_specs` for remote execution.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from .engine.base import EngineOptions
from .engine.result import RunResult, result_from_jsonable
from .errors import ExperimentError, ProtocolError, RemoteError
from .methodology.plan import ExperimentPlan, ExperimentSpec
from .methodology.protocol import ProtocolConfig
from .methodology.records import RecordStore
from .methodology.runner import ProtocolRunner
from .orchestrator.supervise import SupervisionPolicy
from .scenario import ScenarioSpec
from .scenario.compile import compile_scenario
from .server.protocol import check_version, message, recv_frame, send_frame
from .service import get_service
from .telemetry.bus import get_bus
from .telemetry.trace import root_context, trace_id_for, trace_scope

__all__ = ["RemoteClient", "RemoteExecutor", "remote_run_specs"]

# Envelope keys stripped before replaying returned events on the local
# bus (the same convention as the service's cache-hit path).
_ENVELOPE_KEYS = ("schema", "seq", "event", "t")

# Default retry budget: generous enough to bridge a server SIGKILL +
# restart (seconds), small enough that a truly dead server fails over
# to local fallback promptly.
_DEFAULT_ATTEMPTS = 8


def _emit(event: str, **fields: Any) -> None:
    bus = get_bus()
    if bus.enabled:
        bus.emit(event, **fields)


class RemoteClient:
    """One connection-with-retries to an orchestrator server."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        policy: SupervisionPolicy | None = None,
        max_attempts: int = _DEFAULT_ATTEMPTS,
        deadline_s: float | None = None,
        hedge_after_s: float | None = None,
        fallback: bool = True,
        priority: str = "batch",
        io_timeout_s: float = 10.0,
        seed: int = 0,
    ):
        self.host = host
        self.port = int(port)
        self.policy = policy if policy is not None else SupervisionPolicy(
            backoff_base_s=0.1, backoff_cap_s=2.0
        )
        self.max_attempts = max(1, int(max_attempts))
        self.deadline_s = deadline_s
        self.hedge_after_s = hedge_after_s
        self.fallback = bool(fallback)
        self.priority = priority
        self.io_timeout_s = float(io_timeout_s)
        self.seed = int(seed)
        self.session_id: str | None = None
        self._sock: socket.socket | None = None
        self.stats = {"retries": 0, "hedges": 0, "fallbacks": 0}

    # -- connection management ---------------------------------------------

    def connect(self) -> str:
        """Ensure a live session; returns its id (resumes across drops)."""
        if self._sock is not None:
            return self.session_id or ""
        sock = socket.create_connection((self.host, self.port), timeout=5.0)
        sock.settimeout(self.io_timeout_s)
        self._sock = sock
        hello = (
            message("hello", session=self.session_id)
            if self.session_id
            else message("hello")
        )
        reply = self._roundtrip(hello)
        if reply.get("type") != "welcome":
            self._drop()
            raise RemoteError(f"expected welcome, got {reply.get('type')!r}")
        self.session_id = str(reply.get("session"))
        return self.session_id

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._roundtrip(message("bye", session=self.session_id))
        except (RemoteError, OSError):
            pass
        self._drop()

    def __enter__(self) -> "RemoteClient":
        self.connect()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _roundtrip(self, msg: dict[str, Any]) -> dict[str, Any]:
        """One send/recv on the live connection; drops it on any defect."""
        assert self._sock is not None
        try:
            send_frame(self._sock, msg)
            reply = recv_frame(self._sock)
        except (ProtocolError, OSError) as exc:
            self._drop()
            raise RemoteError(f"connection failed: {exc}") from exc
        if reply is None:
            self._drop()
            raise RemoteError("server closed the connection")
        check_version(reply)
        return reply

    # -- the retry engine --------------------------------------------------

    def _call(
        self,
        op: str,
        msg_fields: dict[str, Any],
        *,
        key: str,
        rep: int,
        deadline: float | None,
    ) -> dict[str, Any]:
        """Send one request with reconnect/backoff/busy handling."""
        last = "unreachable"
        for attempt in range(self.max_attempts):
            if deadline is not None and time.monotonic() >= deadline:
                raise RemoteError(f"{op} deadline exceeded after {attempt} attempts")
            try:
                self.connect()
                reply = self._roundtrip(
                    message(op, session=self.session_id, **msg_fields)
                )
            except (RemoteError, OSError) as exc:
                last = str(exc)
                self._retry_sleep(op, key, rep, attempt, "connection", deadline)
                continue
            if reply.get("type") == "busy":
                hint = float(reply.get("retry_after_s") or 0.0)
                last = f"busy ({reply.get('reason')})"
                self._retry_sleep(
                    op, key, rep, attempt, str(reply.get("reason") or "busy"),
                    deadline, floor=hint,
                )
                continue
            if reply.get("type") == "error":
                raise RemoteError(
                    f"{op} rejected: {reply.get('error')}: {reply.get('message')}"
                )
            return reply
        raise RemoteError(
            f"{op} failed after {self.max_attempts} attempts: {last}",
            retry_after_s=self.policy.backoff_cap_s,
        )

    def _retry_sleep(
        self,
        op: str,
        key: str,
        rep: int,
        attempt: int,
        reason: str,
        deadline: float | None,
        floor: float = 0.0,
    ) -> None:
        delay = max(
            floor, self.policy.backoff_s(f"client.{op}:{key}", rep, attempt, self.seed)
        )
        if deadline is not None:
            delay = min(delay, max(0.0, deadline - time.monotonic()))
        self.stats["retries"] += 1
        _emit("client.retry", op=op, attempt=attempt + 1, delay_s=delay, reason=reason)
        if delay > 0:
            time.sleep(delay)

    # -- the public API ----------------------------------------------------

    def submit(
        self, scenario: ScenarioSpec, rep: int, deadline: float | None = None
    ) -> str:
        """Admit (or re-attach to) one job; returns its server-side state."""
        reply = self._call(
            "submit",
            {
                "spec": scenario.to_jsonable(),
                "rep": int(rep),
                "priority": self.priority,
                # Deterministic trace correlation (the server would mint
                # the identical id anyway; carrying it costs nothing).
                "trace": trace_id_for(scenario.fingerprint, rep),
            },
            key=scenario.fingerprint,
            rep=int(rep),
            deadline=deadline,
        )
        if reply.get("type") != "accepted":
            raise RemoteError(f"expected accepted, got {reply.get('type')!r}")
        return str(reply.get("state"))

    def wait(
        self,
        scenario: ScenarioSpec,
        rep: int,
        deadline: float | None = None,
    ) -> dict[str, Any]:
        """Block until the job finishes; returns the ``result`` frame.

        Re-polls on ``pending``; a connection drop resubmits (idempotent)
        and keeps waiting; past ``hedge_after_s`` it proactively tears
        the connection down and resubmits on a fresh one.
        """
        fp = scenario.fingerprint
        started = time.monotonic()
        hedged = False
        while True:
            if deadline is not None and time.monotonic() >= deadline:
                raise RemoteError(f"wait deadline exceeded for ({fp[:12]}, {rep})")
            if (
                self.hedge_after_s is not None
                and not hedged
                and time.monotonic() - started > self.hedge_after_s
            ):
                hedged = True
                self.stats["hedges"] += 1
                self._drop()
                self.submit(scenario, rep, deadline=deadline)
            try:
                reply = self._call(
                    "wait",
                    {
                        "job": fp,
                        "rep": int(rep),
                        "timeout_s": 5.0,
                        "trace": trace_id_for(fp, rep),
                    },
                    key=fp,
                    rep=int(rep),
                    deadline=deadline,
                )
            except RemoteError:
                # The server may have restarted and lost this job id from
                # memory ("unknown-job") or the transport gave out —
                # resubmission is free and re-anchors the job either way.
                self.submit(scenario, rep, deadline=deadline)
                continue
            if reply.get("type") == "result":
                return reply
            # "pending": loop and wait again.

    def run(self, scenario: ScenarioSpec, rep: int) -> RunResult:
        """Execute (or replay) one repetition remotely; fall back locally.

        The remote path is byte-identical to the local one: the server
        executes through the same service + cache, the result crosses
        the wire codec-normalized, and the returned engine events are
        replayed on the local bus exactly like a cache hit.
        """
        deadline = (
            time.monotonic() + self.deadline_s if self.deadline_s is not None else None
        )
        bus = get_bus()
        # The root "job" span covers the whole remote round-trip; the
        # "submit" child marks the client-side RPC leg.  Both contexts
        # derive purely from the job identity, so local and remote
        # executions of the same job share one trace.
        ctx = (
            root_context(scenario.fingerprint, rep)
            if bus.tracing
            else None
        )
        with trace_scope(ctx):
            if ctx is not None:
                with trace_scope(ctx.child("submit")):
                    _emit(
                        "job.submit",
                        job=scenario.fingerprint,
                        rep=int(rep),
                        attempt=0,
                    )
            try:
                self.submit(scenario, rep, deadline=deadline)
                frame = self.wait(scenario, rep, deadline=deadline)
            except RemoteError as exc:
                if not self.fallback:
                    raise
                self.stats["fallbacks"] += 1
                _emit(
                    "client.fallback",
                    job=scenario.fingerprint,
                    rep=int(rep),
                    reason=str(exc)[:200],
                )
                return get_service().run(scenario, rep)
            if frame.get("status") != "ok":
                raise ExperimentError(
                    f"remote run ({scenario.fingerprint[:12]}, rep {rep}) failed: "
                    f"{frame.get('error')}"
                )
            if bus.enabled:
                for event in frame.get("events") or ():
                    payload = {
                        k: v for k, v in event.items() if k not in _ENVELOPE_KEYS
                    }
                    bus.emit(event["event"], t=event.get("t"), **payload)
            return result_from_jsonable(frame["result"])

    def ping(self) -> dict[str, Any]:
        """Heartbeat: renews the session lease, returns server stats."""
        return self._call("ping", {}, key="ping", rep=0, deadline=None)


@dataclass
class RemoteExecutor:
    """A :class:`~repro.methodology.runner.Executor` over a remote server.

    The mirror of :class:`~repro.service.ServiceExecutor`: planned specs
    map (by key) to compiled scenarios, execution goes through one
    :class:`RemoteClient`.  The unchanged ProtocolRunner merge logic on
    top produces record stores byte-identical to local campaigns.
    """

    scenarios: dict[str, ScenarioSpec] = field(default_factory=dict)
    host: str = "127.0.0.1"
    port: int = 0
    max_attempts: int = _DEFAULT_ATTEMPTS
    deadline_s: float | None = None
    hedge_after_s: float | None = None
    fallback: bool = True
    priority: str = "batch"
    seed: int = 0
    _client: RemoteClient | None = field(default=None, repr=False)

    def client(self) -> RemoteClient:
        if self._client is None:
            self._client = RemoteClient(
                self.host,
                self.port,
                max_attempts=self.max_attempts,
                deadline_s=self.deadline_s,
                hedge_after_s=self.hedge_after_s,
                fallback=self.fallback,
                priority=self.priority,
                seed=self.seed,
            )
        return self._client

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    def __call__(self, spec: ExperimentSpec, rep: int) -> RunResult:
        scenario = self.scenarios.get(spec.key)
        if scenario is None:
            raise ExperimentError(f"no compiled scenario for planned spec {spec.key!r}")
        return self.client().run(scenario, rep)


def remote_run_specs(
    specs: Sequence[ExperimentSpec],
    host: str,
    port: int,
    repetitions: int = 100,
    seed: int = 0,
    options: EngineOptions = EngineOptions(),
    max_nodes: int = 32,
    builder: str = "standard",
    progress: Callable[[str], None] | None = None,
    on_error: str = "fail",
    checkpoint: Any = None,
    resume: bool = False,
    checkpoint_every: int = 10,
    max_attempts: int = _DEFAULT_ATTEMPTS,
    deadline_s: float | None = None,
    hedge_after_s: float | None = None,
    fallback: bool = True,
    priority: str = "batch",
) -> RecordStore:
    """Run a sweep remotely under the paper's exact protocol.

    Mirrors :func:`repro.experiments.common.run_specs` — same protocol
    derivation, same plan seeding, same scenario lowering — with a
    :class:`RemoteExecutor` in place of the local service executor, so
    the resulting record store is byte-identical to a local campaign
    over the same specs.
    """
    protocol = ProtocolConfig(
        repetitions=repetitions,
        block_size=min(10, max(1, repetitions)),
        min_wait_s=60.0 if repetitions >= 20 else 0.0,
        max_wait_s=1800.0 if repetitions >= 20 else 0.0,
    )
    plan = ExperimentPlan.build(specs, protocol, seed=seed)
    scenarios = {
        spec.key: compile_scenario(
            spec, seed=seed, options=options, max_nodes=max_nodes, builder=builder
        )
        for spec in specs
    }
    executor = RemoteExecutor(
        scenarios=scenarios,
        host=host,
        port=int(port),
        max_attempts=max_attempts,
        deadline_s=deadline_s,
        hedge_after_s=hedge_after_s,
        fallback=fallback,
        priority=priority,
        seed=seed,
    )
    runner = ProtocolRunner(
        executor,
        on_error=on_error,
        checkpoint_path=checkpoint,
        checkpoint_every=checkpoint_every,
    )
    try:
        if resume and checkpoint is not None:
            return runner.resume(plan, progress=progress)
        return runner.run(plan, progress=progress)
    finally:
        executor.close()
