"""The experimental methodology of Section III-C.

The paper's protocol, reproduced verbatim in simulated wall-clock time:

1. generate the list of all benchmark runs, 100 repetitions of each
   experiment configuration;
2. divide the list into blocks of ten executions;
3. execute blocks one run at a time, in random order;
4. impose a randomly selected wait (1-30 minutes) between blocks.

This package also owns the run records (CSV-friendly flat rows) used by
every analysis and figure.
"""

from .plan import ExperimentSpec, PlannedRun, ExperimentPlan
from .protocol import ProtocolConfig
from .records import FailedRunRecord, RunRecord, RecordStore
from .runner import ProtocolRunner

__all__ = [
    "ExperimentSpec",
    "PlannedRun",
    "ExperimentPlan",
    "ProtocolConfig",
    "RunRecord",
    "FailedRunRecord",
    "RecordStore",
    "ProtocolRunner",
]
