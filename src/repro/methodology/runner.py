"""Protocol runner: executes a plan block by block, resiliently.

The runner walks an :class:`~repro.methodology.plan.ExperimentPlan` in
its (shuffled) block order, maintains a simulated wall clock (run
durations plus the randomly drawn inter-block waits), and hands every
planned run to a caller-provided executor — typically a closure around
an engine built per experiment configuration.

The executor contract::

    executor(spec: ExperimentSpec, rep: int) -> RunResult

The repetition index fully determines the run's randomness (engines
seed their file system, chooser and noise from it), so records are
reproducible irrespective of block order — yet the protocol order and
waits are recorded, as the paper archives them.

Long campaigns on production systems fail partially: a run raises, a
node dies, the job hits its time limit.  The runner therefore supports

* ``on_error="skip"``: a raising run is quarantined as a
  :class:`~repro.methodology.records.FailedRunRecord` and the campaign
  continues (``"fail"``, the default, re-raises after checkpointing);
* ``on_violation="skip"`` (the default): a run that trips a
  :class:`~repro.errors.InvariantViolation` — a machine-checked model
  bug detected by a validating engine — is quarantined even under
  ``on_error="fail"``, so one corrupted point never aborts (or worse,
  silently pollutes) a paranoid campaign; ``"fail"`` re-raises;
* periodic crash-safe checkpoints of the full store to
  ``checkpoint_path`` (JSON, atomic replace);
* :meth:`resume`, which loads the checkpoint and re-executes only the
  (spec, rep) pairs that have no successful record yet — quarantined
  failures are retried, with the prior attempt's failure records
  archived to ``store.retried_failures`` rather than discarded.

Execution of one run and the folding of its outcome into the store are
split into :func:`execute_outcome` and :meth:`ProtocolRunner._merge`, so
the parallel runner can execute runs in worker processes (outcomes are
plain picklable data) and merge them in the parent in protocol order,
producing byte-identical stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from ..engine.result import RunResult
from ..errors import CampaignInterrupted, CheckpointError, ExperimentError, InvariantViolation
from ..orchestrator.interrupts import pending_signal
from ..orchestrator.queue import DurableJobQueue
from ..telemetry.bus import get_bus
from ..telemetry.profiling import get_profiler
from ..telemetry.trace import TraceContext, current_trace, root_context, trace_scope
from .plan import ExperimentPlan, ExperimentSpec, PlannedRun
from .records import FailedRunRecord, RecordStore, RunRecord

__all__ = ["ProtocolRunner", "RunOutcome", "execute_outcome"]

Executor = Callable[[ExperimentSpec, int], RunResult]

_ON_ERROR_POLICIES = ("fail", "skip")


@dataclass
class RunOutcome:
    """What executing one planned run produced.

    Either ``result`` is set (success) or the error fields describe the
    exception.  Everything except ``exception`` is plain picklable data,
    so outcomes cross process boundaries; ``exception`` is only set when
    the run executed in-process and lets the fail policy re-raise the
    original object.
    """

    result: RunResult | None = None
    error_type: str | None = None
    message: str = ""
    violation: bool = False
    retries: int = 0
    flow_trace: tuple[Mapping[str, Any], ...] = ()
    invalid: bool = False
    exception: BaseException | None = field(default=None, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        return self.result is not None


def execute_outcome(executor: Executor, spec: ExperimentSpec, rep: int) -> RunOutcome:
    """Run one (spec, rep) through ``executor``, capturing the outcome."""
    prof = get_profiler()
    try:
        with prof.span("executor.run"):
            result = executor(spec, rep)
    except Exception as exc:
        return RunOutcome(
            error_type=type(exc).__name__,
            message=str(exc),
            violation=isinstance(exc, InvariantViolation),
            # Engines annotate exceptions with the run's retry trace
            # (there is no RunResult to carry it).
            retries=int(getattr(exc, "flow_retries", 0) or 0),
            flow_trace=tuple(getattr(exc, "flow_trace", ()) or ()),
            exception=exc,
        )
    if not isinstance(result, RunResult):
        return RunOutcome(
            error_type="ExperimentError",
            message=f"executor returned {type(result).__name__}, expected RunResult",
            invalid=True,
        )
    return RunOutcome(result=result)


class ProtocolRunner:
    """Walks a plan and collects records, surviving partial failures."""

    def __init__(
        self,
        executor: Executor,
        on_error: str = "fail",
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 10,
        on_violation: str = "skip",
    ):
        if on_error not in _ON_ERROR_POLICIES:
            raise ExperimentError(
                f"on_error must be one of {_ON_ERROR_POLICIES}, got {on_error!r}"
            )
        if on_violation not in _ON_ERROR_POLICIES:
            raise ExperimentError(
                f"on_violation must be one of {_ON_ERROR_POLICIES}, got {on_violation!r}"
            )
        if checkpoint_every < 1:
            raise ExperimentError("checkpoint_every must be >= 1")
        self.executor = executor
        self.on_error = on_error
        self.on_violation = on_violation
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path is not None else None
        self.checkpoint_every = checkpoint_every
        # Orchestration counters, accumulated across run()/resume() calls:
        # requeues/quarantines are written by the parallel supervisor,
        # reclaimed by _open_queue on either runner.
        self.supervision_stats: dict[str, int] = {
            "requeues": 0,
            "quarantines": 0,
            "worker_deaths": 0,
            "reclaimed": 0,
        }

    # -- checkpointing -----------------------------------------------------------

    def _open_queue(self) -> "DurableJobQueue | None":
        """The campaign's durable job queue, or None without a checkpoint.

        The journal lives next to the checkpoint (``<checkpoint>.journal``)
        so both artifacts of a campaign travel together.  Leases left by
        a dead owner are reclaimed on open and surfaced on the bus.
        """
        if self.checkpoint_path is None:
            return None
        queue = DurableJobQueue(Path(str(self.checkpoint_path) + ".journal"))
        queue.open()
        self.supervision_stats["reclaimed"] += len(queue.reclaimed)
        bus = get_bus()
        if bus.enabled:
            for entry in queue.reclaimed:
                bus.metrics.counter("orchestrator.reclaimed").inc()
                bus.emit(
                    "orchestrator.reclaim",
                    key=entry.key,
                    rep=entry.rep,
                    owner=entry.owner,
                )
        return queue

    def _checkpoint(self, store: RecordStore) -> None:
        if self.checkpoint_path is not None:
            store.write_json(self.checkpoint_path)
            bus = get_bus()
            if bus.enabled:
                bus.metrics.counter("runner.checkpoints").inc()
                bus.emit(
                    "checkpoint.write",
                    path=str(self.checkpoint_path),
                    records=len(store),
                    failures=len(store.failures),
                )

    def resume(self, plan: ExperimentPlan, progress: Callable[[str], None] | None = None) -> RecordStore:
        """Continue an interrupted campaign from its checkpoint.

        Already-recorded (spec, rep) pairs are skipped; quarantined
        failures are archived to ``store.retried_failures`` and
        re-executed (they get a second chance under the current
        ``on_error`` policy, and the prior attempt's failure history is
        preserved).  Without a checkpoint file the campaign simply
        starts from scratch.

        A checkpoint that cannot be parsed — a torn write from a crash
        mid-replace, manual truncation, disk corruption — degrades to an
        empty store (every run re-executes) instead of raising: the
        checkpoint is an optimization over recomputation, never the only
        copy of the data.  The degradation is surfaced as a
        ``checkpoint.corrupt`` event and ``runner.checkpoint_corrupt``
        counter.
        """
        if self.checkpoint_path is None:
            raise ExperimentError("resume() needs a checkpoint_path")
        store = RecordStore()
        if self.checkpoint_path.exists():
            try:
                store = RecordStore.read_json(self.checkpoint_path)
            except CheckpointError as exc:
                bus = get_bus()
                if bus.enabled:
                    bus.metrics.counter("runner.checkpoint_corrupt").inc()
                    bus.emit(
                        "checkpoint.corrupt",
                        path=str(self.checkpoint_path),
                        error=str(exc),
                    )
                store = RecordStore()
            else:
                store.archive_failures()
        return self.run(plan, progress=progress, resume_from=store)

    # -- outcome merging ----------------------------------------------------------

    def _trace_context(self, planned: PlannedRun) -> TraceContext | None:
        """The job's root trace context, or None with tracing off.

        The trace id derives from the compiled scenario fingerprint when
        the executor exposes its ``scenarios`` map (the service and
        remote executors both do) — which is what makes a local and a
        remote execution of the same job share one trace.  Executors
        without one fall back to the planned spec key, which is equally
        deterministic, just not comparable across executor kinds.
        """
        if not get_bus().tracing:
            return None
        identity = planned.spec.key
        scenarios = getattr(self.executor, "scenarios", None)
        if isinstance(scenarios, Mapping):
            fingerprint = getattr(scenarios.get(planned.spec.key), "fingerprint", None)
            if isinstance(fingerprint, str):
                identity = fingerprint
        return root_context(identity, planned.rep)

    def _emit_start(self, bus: Any, planned: PlannedRun, block_index: int, wall_clock: float) -> None:
        if bus.enabled:
            bus.emit(
                "run.start",
                t=wall_clock,
                exp_id=planned.spec.exp_id,
                scenario=planned.spec.scenario,
                spec=planned.spec.key,
                rep=planned.rep,
                block=block_index,
            )

    def _merge(
        self,
        store: RecordStore,
        planned: PlannedRun,
        block_index: int,
        wall_clock: float,
        outcome: RunOutcome,
        bus: Any,
    ) -> float:
        """Fold one outcome into the store; returns the new wall clock.

        Raises under the fail policies (after checkpointing), exactly as
        the serial inline path always did — so serial and parallel
        campaigns share one definition of what a run's outcome means.
        """
        if outcome.invalid:
            self._checkpoint(store)
            raise ExperimentError(outcome.message)
        if not outcome.ok:
            policy = self.on_violation if outcome.violation else self.on_error
            status = "quarantined" if outcome.violation else "failed"
            if bus.enabled:
                bus.metrics.counter("runner.runs", status=status).inc()
                bus.emit(
                    "run.end",
                    t=wall_clock,
                    exp_id=planned.spec.exp_id,
                    scenario=planned.spec.scenario,
                    spec=planned.spec.key,
                    rep=planned.rep,
                    block=block_index,
                    status=status,
                    bw_mib_s=None,
                    makespan_s=None,
                    retries=outcome.retries,
                    complete=False,
                    error_type=outcome.error_type,
                )
            if policy == "fail":
                self._checkpoint(store)
                if outcome.exception is not None:
                    raise outcome.exception
                raise ExperimentError(f"{outcome.error_type}: {outcome.message}")
            # Post-mortem dump: the flight recorder's recent events for
            # this job's trace (all recent events with tracing off), so
            # the quarantine record explains itself without the stream.
            last_events: tuple[Mapping[str, Any], ...] = ()
            flight = getattr(bus, "flight", None)
            if flight is not None:
                ctx = current_trace()
                last_events = tuple(
                    flight.for_trace(ctx.trace if ctx is not None else None, limit=64)
                )
            store.failures.append(
                FailedRunRecord(
                    exp_id=planned.spec.exp_id,
                    scenario=planned.spec.scenario,
                    rep=planned.rep,
                    factors=planned.spec.factors,
                    error_type=outcome.error_type or "Exception",
                    message=outcome.message,
                    wall_clock_s=wall_clock,
                    block=block_index,
                    retries=outcome.retries,
                    flow_trace=outcome.flow_trace,
                    last_events=last_events,
                )
            )
            return wall_clock
        result = outcome.result
        store.append(
            RunRecord.from_run_result(
                result,
                exp_id=planned.spec.exp_id,
                scenario=planned.spec.scenario,
                rep=planned.rep,
                factors=planned.spec.factors,
                wall_clock_s=wall_clock,
                block=block_index,
            )
        )
        wall_clock += float(result.makespan)
        if bus.enabled:
            bw = float(result.aggregate_bandwidth_mib_s)
            bus.metrics.counter("runner.runs", status="ok").inc()
            bus.metrics.histogram("run.bandwidth_mib_s").observe(bw)
            extra = {}
            if result.resource_series:
                extra["servers"] = {
                    rid: [[float(t), float(v)] for t, v in zip(ts.times, ts.values)]
                    for rid, ts in result.resource_series.items()
                }
            bus.emit(
                "run.end",
                t=wall_clock,
                exp_id=planned.spec.exp_id,
                scenario=planned.spec.scenario,
                spec=planned.spec.key,
                rep=planned.rep,
                block=block_index,
                status="ok",
                bw_mib_s=bw,
                makespan_s=float(result.makespan),
                retries=int(result.retries),
                complete=bool(result.complete),
                error_type=None,
                **extra,
            )
        return wall_clock

    # -- execution ----------------------------------------------------------------

    def run(
        self,
        plan: ExperimentPlan,
        progress: Callable[[str], None] | None = None,
        resume_from: RecordStore | None = None,
    ) -> RecordStore:
        """Execute every planned run in protocol order.

        With a ``checkpoint_path`` configured, every pending (spec, rep)
        job is journaled in a durable queue next to the checkpoint and
        its state transitions (lease → done/failed) are fsync'd, so a
        crashed campaign can be resumed with full knowledge of what was
        in flight.  SIGINT/SIGTERM (when armed via
        :func:`repro.orchestrator.interrupts.handle_signals`) checkpoint
        and raise :class:`~repro.errors.CampaignInterrupted` between
        runs instead of tearing down mid-merge.
        """
        store = resume_from if resume_from is not None else RecordStore()
        done = store.completed_keys()
        already_done = frozenset(done)
        # Reconstruct the simulated protocol clock while walking the
        # plan: skipped (already-recorded) runs advance it to their
        # recorded end, so post-resume records carry the exact clock a
        # fresh, uninterrupted campaign would have stamped.
        end_clocks = store.end_clocks()
        wall_clock = 0.0
        executed_since_checkpoint = 0
        bus = get_bus()
        queue = self._open_queue()
        if queue is not None:
            queue.enqueue_many(
                [
                    (planned.spec.key, planned.rep)
                    for block in plan.blocks
                    for planned in block
                    if (planned.spec.key, planned.rep) not in done
                ]
            )
        # Executors that can bulk-load cached results ahead of time (the
        # service executor does) get the whole pending campaign in one
        # call: one directory scan per fingerprint instead of one failed
        # open per missing entry.  Per-run hit accounting still happens
        # at each run's position in the schedule, so the event stream
        # and cache tallies are byte-identical to the per-run path.
        prefetch = getattr(self.executor, "prefetch", None)
        if callable(prefetch):
            pending_jobs = [
                (planned.spec, planned.rep)
                for block in plan.blocks
                for planned in block
                if (planned.spec.key, planned.rep) not in done
            ]
            if pending_jobs:
                with get_profiler().span("runner.prefetch"):
                    prefetch(pending_jobs)
        interrupted: str | None = None
        completed = False
        try:
            for block_index, (block, wait) in enumerate(zip(plan.blocks, plan.waits_s)):
                block_ran = False
                for planned in block:
                    key = (planned.spec.key, planned.rep)
                    if key in done:
                        if key in already_done:
                            # The original run advanced the clock (and
                            # its block waited); mirror both so pending
                            # runs resume at the fresh-campaign clock.
                            wall_clock = max(wall_clock, end_clocks[key])
                            block_ran = True
                        continue
                    interrupted = pending_signal()
                    if interrupted is not None:
                        break
                    block_ran = True
                    with trace_scope(self._trace_context(planned)):
                        self._emit_start(bus, planned, block_index, wall_clock)
                        if queue is not None:
                            queue.lease(*key)
                        outcome = execute_outcome(
                            self.executor, planned.spec, planned.rep
                        )
                        if queue is not None:
                            # Journal the terminal state before merging:
                            # the merge may raise under a fail policy,
                            # and the job must not replay as pending on
                            # resume.
                            if outcome.ok:
                                queue.mark_done(*key)
                            else:
                                queue.mark_failed(*key)
                        wall_clock = self._merge(
                            store, planned, block_index, wall_clock, outcome, bus
                        )
                    if not outcome.ok:
                        continue
                    done.add(key)
                    executed_since_checkpoint += 1
                    if executed_since_checkpoint >= self.checkpoint_every:
                        self._checkpoint(store)
                        executed_since_checkpoint = 0
                if interrupted is not None:
                    break
                if block_ran:
                    wall_clock += wait
                if progress is not None:
                    progress(
                        f"block {block_index + 1}/{len(plan.blocks)} done "
                        f"(wall clock {wall_clock / 60:.1f} min)"
                    )
            completed = interrupted is None
        finally:
            if queue is not None:
                queue.close(remove=completed)
        if interrupted is not None:
            self._checkpoint(store)
            raise CampaignInterrupted(
                interrupted,
                checkpoint=str(self.checkpoint_path)
                if self.checkpoint_path is not None
                else None,
            )
        self._checkpoint(store)
        return store
