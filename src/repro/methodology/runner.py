"""Protocol runner: executes a plan block by block.

The runner walks an :class:`~repro.methodology.plan.ExperimentPlan` in
its (shuffled) block order, maintains a simulated wall clock (run
durations plus the randomly drawn inter-block waits), and hands every
planned run to a caller-provided executor — typically a closure around
an engine built per experiment configuration.

The executor contract::

    executor(spec: ExperimentSpec, rep: int) -> RunResult

The repetition index fully determines the run's randomness (engines
seed their file system, chooser and noise from it), so records are
reproducible irrespective of block order — yet the protocol order and
waits are recorded, as the paper archives them.
"""

from __future__ import annotations

from typing import Callable

from ..engine.result import RunResult
from ..errors import ExperimentError
from .plan import ExperimentPlan, ExperimentSpec
from .records import RecordStore, RunRecord

__all__ = ["ProtocolRunner"]

Executor = Callable[[ExperimentSpec, int], RunResult]


class ProtocolRunner:
    """Walks a plan and collects records."""

    def __init__(self, executor: Executor):
        self.executor = executor

    def run(self, plan: ExperimentPlan, progress: Callable[[str], None] | None = None) -> RecordStore:
        """Execute every planned run in protocol order."""
        store = RecordStore()
        wall_clock = 0.0
        for block_index, (block, wait) in enumerate(zip(plan.blocks, plan.waits_s)):
            for planned in block:
                result = self.executor(planned.spec, planned.rep)
                if not isinstance(result, RunResult):
                    raise ExperimentError(
                        f"executor returned {type(result).__name__}, expected RunResult"
                    )
                store.append(
                    RunRecord.from_run_result(
                        result,
                        exp_id=planned.spec.exp_id,
                        scenario=planned.spec.scenario,
                        rep=planned.rep,
                        factors=planned.spec.factors,
                        wall_clock_s=wall_clock,
                        block=block_index,
                    )
                )
                wall_clock += result.makespan
            wall_clock += wait
            if progress is not None:
                progress(
                    f"block {block_index + 1}/{len(plan.blocks)} done "
                    f"(wall clock {wall_clock / 60:.1f} min)"
                )
        return store
