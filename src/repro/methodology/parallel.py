"""Parallel campaign execution with serial-identical results.

The engines honour one contract the whole methodology layer is built
on: *the repetition index fully determines a run's randomness*.  Runs
therefore need no shared state, and a campaign is an embarrassingly
parallel bag of (spec, rep) pairs.  :class:`ParallelProtocolRunner`
exploits exactly that — and nothing more:

* every pending (spec, rep) pair is executed in a worker process of a
  :class:`concurrent.futures.ProcessPoolExecutor`;
* outcomes are merged in the parent **in protocol order**, so the
  resulting :class:`~repro.methodology.records.RecordStore` — records,
  simulated wall clock, block indices, checkpoints — is byte-identical
  to what the serial :class:`~repro.methodology.runner.ProtocolRunner`
  produces, and replay fingerprints match;
* failure policies (``on_error``, ``on_violation``), checkpointing and
  :meth:`resume` behave exactly as in the serial runner, because the
  merge path *is* the serial runner's
  :meth:`~repro.methodology.runner.ProtocolRunner._merge`.

Workers run with a fresh, parent-independent telemetry bus: engine
events are captured in an in-memory ring, shipped back with the
outcome, and re-emitted by the parent tagged with a dense ``worker``
id, bracketed by ``worker.start``/``worker.end`` events carrying the
(spec, rep, seed) triple — so ``repro stats``/``repro tail`` can
attribute throughput per worker.  Worker metrics registries are folded
into the parent registry at merge time.

Worker processes are started with the ``fork`` method where available
(initializer arguments are inherited, not pickled, so closure-based
executors work); (spec, rep) task arguments and outcomes cross the
pool's pickling boundary.  An executor whose results or errors cannot
be pickled surfaces as a structured failed outcome, subject to the
normal ``on_error`` policy.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..errors import ExperimentError
from ..telemetry.bus import EventBus, RingBufferSink, get_bus, set_bus
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.profiling import SpanProfiler, get_profiler, set_profiler
from .plan import ExperimentPlan, ExperimentSpec
from .records import RecordStore
from .runner import Executor, ProtocolRunner, RunOutcome, execute_outcome

__all__ = ["ParallelProtocolRunner"]

# Per-task ring capacity: engine-level events of one run (debug level
# can emit one per fluid segment).
_WORKER_RING_CAPACITY = 65536

# Module-level worker state, populated by the pool initializer.
_WORKER: dict[str, Any] = {}


@dataclass
class _WorkerReply:
    """One executed run, as shipped back from a worker process."""

    pid: int
    elapsed_s: float
    outcome: RunOutcome
    events: list[dict[str, Any]] = field(default_factory=list)
    metrics: MetricsRegistry | None = None
    # Result-cache tally delta of this run (hits/misses in the worker
    # are invisible to the parent's module counters otherwise).
    cache_stats: dict[str, int] = field(default_factory=dict)


def _worker_init(executor: Executor, level: str, capture: bool) -> None:
    """Initialise one worker process: own bus, own profiler, the executor.

    The forked child inherits the parent's process-wide bus *object* —
    including any open JSONL sinks — so the very first thing a worker
    does is install a fresh bus; engine events land in a private ring
    (when the parent session captures telemetry at all) and are shipped
    back with each outcome instead of racing the parent's sinks.
    """
    bus = EventBus(level=level)
    if capture:
        bus.ring = bus.attach(RingBufferSink(_WORKER_RING_CAPACITY))
    set_bus(bus)
    set_profiler(SpanProfiler(enabled=False))
    _WORKER["executor"] = executor


def _worker_run(spec: ExperimentSpec, rep: int) -> _WorkerReply:
    """Execute one (spec, rep) pair in this worker and package the outcome."""
    from .. import service as _service

    bus = get_bus()
    ring = bus.ring
    if ring is not None:
        ring._buffer.clear()
        bus.metrics = MetricsRegistry()
    before = _service.cache_stats()
    start = time.perf_counter()
    outcome = execute_outcome(_WORKER["executor"], spec, rep)
    elapsed = time.perf_counter() - start
    after = _service.cache_stats()
    # Exceptions are not reliably picklable; the structured fields of
    # the outcome carry everything the parent's merge path needs.
    outcome.exception = None
    return _WorkerReply(
        pid=os.getpid(),
        elapsed_s=elapsed,
        outcome=outcome,
        events=ring.events if ring is not None else [],
        metrics=bus.metrics if ring is not None and len(bus.metrics) else None,
        cache_stats={
            k: after[k] - before.get(k, 0) for k in after if after[k] != before.get(k, 0)
        },
    )


def _pool_context() -> multiprocessing.context.BaseContext:
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    return multiprocessing.get_context(method)


class ParallelProtocolRunner(ProtocolRunner):
    """A :class:`ProtocolRunner` that executes runs in worker processes."""

    def __init__(
        self,
        executor: Executor,
        n_workers: int | None = None,
        on_error: str = "fail",
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 10,
        on_violation: str = "skip",
        seed: int | None = None,
    ):
        super().__init__(
            executor,
            on_error=on_error,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            on_violation=on_violation,
        )
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers < 1:
            raise ExperimentError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        # Attribution seed for worker.start/worker.end events; defaults
        # to the executor's campaign seed when it exposes one.
        self.seed = int(seed if seed is not None else getattr(executor, "seed", 0) or 0)

    # -- telemetry -----------------------------------------------------------

    def _replay_worker_events(self, bus: Any, events: list[dict[str, Any]], worker: int) -> None:
        for event in events:
            payload = {
                k: v for k, v in event.items() if k not in ("schema", "seq", "event", "t")
            }
            payload.setdefault("worker", worker)
            bus.emit(event["event"], t=event.get("t"), **payload)

    def _reply_of(self, future: Future) -> _WorkerReply:
        """The worker's reply, or a structured failure when the pool broke.

        A worker that dies (OOM, signal) or a result that cannot cross
        the pickling boundary surfaces here as the future's exception;
        it becomes a normal failed outcome so the ``on_error`` policy
        applies uniformly.
        """
        try:
            return future.result()
        except Exception as exc:
            return _WorkerReply(
                pid=0,
                elapsed_s=0.0,
                outcome=RunOutcome(error_type=type(exc).__name__, message=str(exc)),
            )

    # -- execution -----------------------------------------------------------

    def run(
        self,
        plan: ExperimentPlan,
        progress: Callable[[str], None] | None = None,
        resume_from: RecordStore | None = None,
    ) -> RecordStore:
        """Execute every planned run; results merge in protocol order."""
        if self.n_workers == 1:
            return super().run(plan, progress=progress, resume_from=resume_from)
        store = resume_from if resume_from is not None else RecordStore()
        done = store.completed_keys()
        already_done = frozenset(done)
        wall_clock = store.max_wall_clock_s()
        executed_since_checkpoint = 0
        bus = get_bus()
        prof = get_profiler()
        worker_ids: dict[int, int] = {}

        pool = ProcessPoolExecutor(
            max_workers=self.n_workers,
            mp_context=_pool_context(),
            initializer=_worker_init,
            initargs=(self.executor, bus.level, bus.enabled),
        )
        try:
            futures: deque[Future] = deque()
            for block in plan.blocks:
                for planned in block:
                    if (planned.spec.key, planned.rep) in already_done:
                        continue
                    futures.append(pool.submit(_worker_run, planned.spec, planned.rep))
            for block_index, (block, wait) in enumerate(zip(plan.blocks, plan.waits_s)):
                block_ran = False
                for planned in block:
                    key = (planned.spec.key, planned.rep)
                    if key in already_done:
                        continue
                    future = futures.popleft()
                    if key in done:
                        # A duplicate planned run whose twin already
                        # succeeded this campaign: the serial runner
                        # skips it, so the speculative result is dropped.
                        continue
                    block_ran = True
                    self._emit_start(bus, planned, block_index, wall_clock)
                    reply = self._reply_of(future)
                    worker = worker_ids.setdefault(reply.pid, len(worker_ids))
                    if reply.cache_stats:
                        from .. import service as _service

                        _service.add_cache_stats(reply.cache_stats)
                    outcome = reply.outcome
                    status = (
                        "ok"
                        if outcome.ok
                        else ("quarantined" if outcome.violation else "failed")
                    )
                    if bus.enabled:
                        bus.emit(
                            "worker.start",
                            worker=worker,
                            spec=planned.spec.key,
                            rep=planned.rep,
                            seed=self.seed,
                        )
                        self._replay_worker_events(bus, reply.events, worker)
                        if reply.metrics is not None:
                            bus.metrics.merge(reply.metrics)
                    prof.record("executor.run", reply.elapsed_s)
                    wall_clock = self._merge(
                        store, planned, block_index, wall_clock, outcome, bus
                    )
                    if bus.enabled:
                        bus.emit(
                            "worker.end",
                            worker=worker,
                            spec=planned.spec.key,
                            rep=planned.rep,
                            seed=self.seed,
                            status=status,
                            elapsed_s=float(reply.elapsed_s),
                        )
                    if not outcome.ok:
                        continue
                    done.add(key)
                    executed_since_checkpoint += 1
                    if executed_since_checkpoint >= self.checkpoint_every:
                        self._checkpoint(store)
                        executed_since_checkpoint = 0
                if block_ran:
                    wall_clock += wait
                if progress is not None:
                    progress(
                        f"block {block_index + 1}/{len(plan.blocks)} done "
                        f"(wall clock {wall_clock / 60:.1f} min)"
                    )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        self._checkpoint(store)
        return store
