"""Parallel campaign execution with serial-identical results, supervised.

The engines honour one contract the whole methodology layer is built
on: *the repetition index fully determines a run's randomness*.  Runs
therefore need no shared state, and a campaign is an embarrassingly
parallel bag of (spec, rep) pairs.  :class:`ParallelProtocolRunner`
exploits exactly that — and nothing more:

* every pending (spec, rep) pair is executed in a supervised worker
  process (raw :mod:`multiprocessing` workers, one duplex pipe each);
  dispatch is *batched*: each message hands a worker a chunk of runs
  (sized adaptively from queue depth and worker count, specs deduped
  per batch) instead of one, so per-run IPC and scheduling overhead is
  amortised across the chunk;
* results do not travel over the pipe: workers append each outcome as
  a length-prefixed pickle frame to a per-batch spool file (flushed
  before the ``prog`` progress marker is sent), and the parent reads
  complete frames incrementally — a worker killed mid-batch loses only
  its unfinished runs, finished frames are salvaged from the spool;
* outcomes are merged in the parent **in protocol order**, so the
  resulting :class:`~repro.methodology.records.RecordStore` — records,
  simulated wall clock, block indices, checkpoints — is byte-identical
  to what the serial :class:`~repro.methodology.runner.ProtocolRunner`
  produces, and replay fingerprints match;
* failure policies (``on_error``, ``on_violation``), checkpointing and
  :meth:`resume` behave exactly as in the serial runner, because the
  merge path *is* the serial runner's
  :meth:`~repro.methodology.runner.ProtocolRunner._merge`.

On top of that contract sits the supervision layer of
:mod:`repro.orchestrator`:

* workers send heartbeats on their pipe; a watchdog in the parent kills
  workers whose current run exceeds the per-run wall-clock timeout or
  whose heartbeats stop (frozen/stopped process), and respawns them;
* a run interrupted by an *infrastructure* fault — worker death,
  timeout, stall — is requeued with exponential backoff + deterministic
  jitter under a bounded retry budget, then quarantined as a structured
  ``WorkerCrashed``/``WorkerTimeout``/``WorkerStalled`` failure subject
  to the normal ``on_error`` policy.  Exceptions *raised by the
  executor* are never retried here: application failures keep their
  existing exactly-once semantics;
* dispatch is admission-controlled to a bounded window ahead of the
  merge frontier, so a slow run applies backpressure instead of letting
  completed-but-unmergeable results pile up without bound;
* when a ``checkpoint_path`` is configured, every (spec, rep) job is
  journaled in a :class:`~repro.orchestrator.queue.DurableJobQueue`
  next to the checkpoint, and SIGINT/SIGTERM drain in-flight work,
  checkpoint, and raise :class:`~repro.errors.CampaignInterrupted`.

Workers run with a fresh, parent-independent telemetry bus: engine
events are captured in an in-memory ring, shipped back with the
outcome, and re-emitted by the parent tagged with a dense ``worker``
id, bracketed by ``worker.start``/``worker.end`` events carrying the
(spec, rep, seed) triple.  Worker metrics registries are folded into
the parent registry at merge time.

Worker processes are started with the ``fork`` method where available
(process arguments are inherited, not pickled, so closure-based
executors work); (spec, rep) task arguments and outcomes cross the
pipe's pickling boundary.  An executor whose results cannot be pickled
surfaces as a structured failed outcome, subject to the normal
``on_error`` policy.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import shutil
import signal
import struct
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Any, Callable

from ..errors import CampaignInterrupted, ExperimentError
from ..orchestrator.interrupts import pending_signal
from ..orchestrator.supervise import SupervisionPolicy
from ..telemetry.bus import EventBus, RingBufferSink, get_bus, set_bus
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.profiling import SpanProfiler, get_profiler, set_profiler
from ..telemetry.trace import trace_scope
from .plan import ExperimentPlan, ExperimentSpec, PlannedRun
from .records import RecordStore
from .runner import Executor, ProtocolRunner, RunOutcome, execute_outcome

__all__ = ["ParallelProtocolRunner"]

# Per-task ring capacity: engine-level events of one run (debug level
# can emit one per fluid segment).
_WORKER_RING_CAPACITY = 65536

# Module-level worker state, populated by the worker initializer.
_WORKER: dict[str, Any] = {}

# Infra fault reason -> the structured error type it quarantines as.
_INFRA_ERROR_TYPES = {
    "worker-died": "WorkerCrashed",
    "timeout": "WorkerTimeout",
    "stalled": "WorkerStalled",
}


@dataclass
class _WorkerReply:
    """One executed run, as shipped back from a worker process."""

    pid: int
    elapsed_s: float
    outcome: RunOutcome
    events: list[dict[str, Any]] = field(default_factory=list)
    metrics: MetricsRegistry | None = None
    # Result-cache tally delta of this run (hits/misses in the worker
    # are invisible to the parent's module counters otherwise).
    cache_stats: dict[str, int] = field(default_factory=dict)


def _worker_init(executor: Executor, level: str, capture: bool) -> None:
    """Initialise one worker process: own bus, own profiler, the executor.

    The forked child inherits the parent's process-wide bus *object* —
    including any open JSONL sinks — so the very first thing a worker
    does is install a fresh bus; engine events land in a private ring
    (when the parent session captures telemetry at all) and are shipped
    back with each outcome instead of racing the parent's sinks.
    """
    bus = EventBus(level=level)
    if capture:
        bus.ring = bus.attach(RingBufferSink(_WORKER_RING_CAPACITY))
    set_bus(bus)
    set_profiler(SpanProfiler(enabled=False))
    _WORKER["executor"] = executor


def _worker_run(spec: ExperimentSpec, rep: int) -> _WorkerReply:
    """Execute one (spec, rep) pair in this worker and package the outcome."""
    from .. import service as _service

    bus = get_bus()
    ring = bus.ring
    if ring is not None:
        ring._buffer.clear()
        bus.metrics = MetricsRegistry()
    before = _service.cache_stats()
    start = time.perf_counter()
    outcome = execute_outcome(_WORKER["executor"], spec, rep)
    elapsed = time.perf_counter() - start
    after = _service.cache_stats()
    # Exceptions are not reliably picklable; the structured fields of
    # the outcome carry everything the parent's merge path needs.
    outcome.exception = None
    return _WorkerReply(
        pid=os.getpid(),
        elapsed_s=elapsed,
        outcome=outcome,
        events=ring.events if ring is not None else [],
        metrics=bus.metrics if ring is not None and len(bus.metrics) else None,
        cache_stats={
            k: after[k] - before.get(k, 0) for k in after if after[k] != before.get(k, 0)
        },
    )


def _supervised_main(
    conn: Any, executor: Executor, level: str, capture: bool, heartbeat_s: float
) -> None:
    """Worker process main loop: heartbeats + one batch of runs per request.

    SIGINT/SIGTERM are ignored — graceful shutdown is the parent's job
    (it drains and then closes the pipe).  A daemon thread sends a
    heartbeat every ``heartbeat_s`` even while a run executes (the GIL
    is released in the engine's numeric kernels and in sleep), so the
    parent can distinguish *slow* from *frozen*.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    _worker_init(executor, level, capture)
    send_lock = threading.Lock()
    stop = threading.Event()
    pid = os.getpid()

    def _beat() -> None:
        while not stop.wait(heartbeat_s):
            try:
                with send_lock:
                    conn.send(("hb", pid))
            except (OSError, ValueError):
                return

    threading.Thread(target=_beat, daemon=True, name="heartbeat").start()
    try:
        while True:
            message = conn.recv()
            if message is None:
                break
            _, batch_id, spool_path, specs, jobs = message
            with open(spool_path, "wb") as spool:
                for ordinal, spec_key, rep in jobs:
                    reply = _worker_run(specs[spec_key], rep)
                    try:
                        payload = pickle.dumps(
                            (ordinal, reply), protocol=pickle.HIGHEST_PROTOCOL
                        )
                    except Exception as exc:
                        # The outcome could not cross the pickling
                        # boundary; spool a structured failure instead
                        # of dying silently.
                        fallback = _WorkerReply(
                            pid=pid,
                            elapsed_s=reply.elapsed_s,
                            outcome=RunOutcome(
                                error_type=type(exc).__name__, message=str(exc)
                            ),
                        )
                        payload = pickle.dumps(
                            (ordinal, fallback), protocol=pickle.HIGHEST_PROTOCOL
                        )
                    spool.write(struct.pack("<I", len(payload)))
                    spool.write(payload)
                    # Flush to the OS before announcing progress: if
                    # this process is killed right after, the parent
                    # still salvages every announced frame.
                    spool.flush()
                    with send_lock:
                        conn.send(("prog", batch_id, ordinal))
            with send_lock:
                conn.send(("bdone", batch_id, len(jobs)))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        stop.set()
        try:
            conn.close()
        except OSError:
            pass


def _pool_context() -> multiprocessing.context.BaseContext:
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    return multiprocessing.get_context(method)


@dataclass
class _Task:
    """One schedulable (spec, rep) run and its supervision state."""

    ordinal: int
    planned: PlannedRun
    block: int
    attempts: int = 0
    not_before: float = 0.0
    dispatched: bool = False
    discarded: bool = False
    # Prefetched cache hit: resolved in-parent at merge position, never
    # dispatched to a worker.
    local: bool = False


@dataclass
class _Batch:
    """A chunk of runs dispatched to one worker in a single message."""

    batch_id: int
    spool: Path
    tasks: dict[int, _Task]  # ordinal -> task; drained as frames land
    offset: int = 0  # bytes of the spool consumed so far
    completed: bool = False  # worker sent its bdone marker


@dataclass
class _WorkerHandle:
    """Parent-side view of one worker process."""

    process: Any
    conn: Any
    batch: _Batch | None = None
    dispatched_at: float = 0.0
    last_seen: float = 0.0
    broken: bool = False


class _Supervisor:
    """Dispatches tasks to worker processes and polices their liveness."""

    def __init__(
        self,
        runner: "ParallelProtocolRunner",
        bus: Any,
        queue: Any,
        stats: dict[str, int],
        worker_ids: dict[int, int],
        spool_dir: Path,
    ):
        self.runner = runner
        self.policy = runner.policy
        self.n_workers = runner.n_workers
        self.bus = bus
        self.queue = queue
        self.stats = stats
        self.worker_ids = worker_ids
        self.spool_dir = spool_dir
        self.ctx = _pool_context()
        self.window = self.policy.window_for(self.n_workers)
        self.workers: list[_WorkerHandle] = []
        self.pending: deque[_Task] = deque()
        self.delayed: list[_Task] = []
        self.requeue_ready: list[_Task] = []
        self.results: dict[int, _WorkerReply] = {}
        self.frontier = 0
        self.draining = False
        self.drain_signal: str | None = None
        self.next_batch = 0
        # Dispatch/transfer accounting, surfaced as
        # ``runner.transfer_stats`` for bench and ops tooling.
        self.transfer: dict[str, float] = {
            "batches": 0,
            "jobs": 0,
            "specs": 0,
            "frames": 0,
            "spool_bytes": 0,
            "dispatch_overhead_s": 0.0,
        }

    # -- worker lifecycle --------------------------------------------------

    def _spawn(self) -> _WorkerHandle:
        parent_conn, child_conn = self.ctx.Pipe()
        process = self.ctx.Process(
            target=_supervised_main,
            args=(
                child_conn,
                self.runner.executor,
                self.bus.level,
                self.bus.enabled,
                self.policy.heartbeat_s,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(
            process=process, conn=parent_conn, last_seen=time.monotonic()
        )
        self.workers.append(handle)
        self.worker_ids.setdefault(process.pid, len(self.worker_ids))
        return handle

    def start(self) -> None:
        if self._outstanding() == 0:
            return  # fully prefetched/recorded campaign: nothing to dispatch
        want = min(self.n_workers, max(1, self._outstanding()))
        for _ in range(want):
            self._spawn()

    def _outstanding(self) -> int:
        return len(self.pending) + len(self.delayed) + len(self.requeue_ready)

    def _retire(self, handle: _WorkerHandle) -> None:
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(timeout=5.0)
        if handle in self.workers:
            self.workers.remove(handle)
        self.stats["worker_deaths"] += 1

    def _maybe_respawn(self) -> None:
        if self.draining:
            return
        busy = sum(1 for h in self.workers if h.batch is not None)
        want = min(self.n_workers, busy + self._outstanding())
        while len(self.workers) < want:
            self._spawn()

    # -- message pump ------------------------------------------------------

    def _pump_messages(self, timeout: float = 0.05) -> None:
        conns = [h.conn for h in self.workers if not h.broken]
        if not conns:
            time.sleep(timeout)
            return
        try:
            ready = mp_connection.wait(conns, timeout)
        except OSError:
            return
        by_conn = {h.conn: h for h in self.workers}
        for conn in ready:
            handle = by_conn.get(conn)
            if handle is not None:
                self._drain_conn(handle)

    def _drain_conn(self, handle: _WorkerHandle) -> None:
        """Consume every buffered message on a worker's pipe."""
        while True:
            try:
                if handle.conn.closed or not handle.conn.poll():
                    return
                message = handle.conn.recv()
            except (EOFError, OSError):
                handle.broken = True
                return
            self._on_message(handle, message)

    def _on_message(self, handle: _WorkerHandle, message: Any) -> None:
        handle.last_seen = time.monotonic()
        kind = message[0]
        if kind == "hb":
            if self.bus.enabled:
                self.bus.emit("worker.heartbeat", pid=int(message[1]))
            return
        batch = handle.batch
        if batch is None or batch.batch_id != message[1]:
            return  # stale marker from a batch already salvaged
        if kind == "prog":
            # One more run's frame is durably spooled: reset the per-run
            # watchdog clock and collect what's ready.
            handle.dispatched_at = handle.last_seen
            self._collect(batch)
        elif kind == "bdone":
            batch.completed = True
            self._collect(batch)
            self._finish_batch(handle)

    def _collect(self, batch: _Batch) -> None:
        """Read every complete spool frame past the consumed offset.

        The spool is append-only and each frame is flushed before its
        ``prog`` marker, so a torn tail can only be the frame being
        written at the moment of a kill — parsing stops at the last
        complete frame and resumes from the same offset next time.
        """
        try:
            with open(batch.spool, "rb") as spool:
                spool.seek(batch.offset)
                data = spool.read()
        except OSError:
            return
        pos = 0
        while pos + 4 <= len(data):
            (length,) = struct.unpack_from("<I", data, pos)
            if pos + 4 + length > len(data):
                break
            try:
                ordinal, reply = pickle.loads(data[pos + 4 : pos + 4 + length])
            except Exception:
                break  # corrupt tail: salvage stops at the last good frame
            pos += 4 + length
            ordinal = int(ordinal)
            self.transfer["frames"] += 1
            self.transfer["spool_bytes"] += 4 + length
            batch.tasks.pop(ordinal, None)
            # A worker presumed dead may still have delivered: the reply
            # wins, any scheduled retry of the same run is dropped.
            if any(t.ordinal == ordinal for t in self.delayed):
                self.delayed = [t for t in self.delayed if t.ordinal != ordinal]
            if any(t.ordinal == ordinal for t in self.requeue_ready):
                self.requeue_ready = [
                    t for t in self.requeue_ready if t.ordinal != ordinal
                ]
            self.results[ordinal] = reply
        batch.offset += pos

    def _finish_batch(self, handle: _WorkerHandle) -> None:
        batch = handle.batch
        handle.batch = None
        if batch is None:
            return
        # A clean bdone with frames unaccounted for should not happen
        # (each frame is flushed before its marker); requeue leftovers
        # as an infra fault rather than losing them.
        if batch.tasks:
            now = time.monotonic()
            for task in sorted(batch.tasks.values(), key=lambda t: t.ordinal):
                if task.ordinal not in self.results:
                    self._infra_failure(task, "worker-died", now)
        try:
            batch.spool.unlink()
        except OSError:
            pass

    def _salvage(self, handle: _WorkerHandle, reason: str, now: float) -> None:
        """Recover a dead worker's batch: keep spooled runs, requeue the rest."""
        batch = handle.batch
        handle.batch = None
        if batch is None:
            return
        self._collect(batch)
        for task in sorted(batch.tasks.values(), key=lambda t: t.ordinal):
            if task.ordinal not in self.results:
                self._infra_failure(task, reason, now)
        try:
            batch.spool.unlink()
        except OSError:
            pass

    # -- fault handling ----------------------------------------------------

    def _infra_failure(self, task: _Task, reason: str, now: float) -> None:
        """A run was interrupted by infrastructure: retry or quarantine."""
        task.attempts += 1
        task.dispatched = False
        key = task.planned.spec.key
        rep = task.planned.rep
        if task.attempts <= self.policy.max_retries:
            delay = self.policy.backoff_s(key, rep, task.attempts, self.runner.seed)
            task.not_before = now + delay
            self.delayed.append(task)
            self.stats["requeues"] += 1
            if self.queue is not None:
                self.queue.requeue(key, rep, attempt=task.attempts)
            if self.bus.enabled:
                self.bus.metrics.counter("orchestrator.requeues", reason=reason).inc()
                self.bus.emit(
                    "orchestrator.requeue",
                    spec=key,
                    rep=rep,
                    attempt=task.attempts,
                    reason=reason,
                    delay_s=float(delay),
                )
            return
        self.stats["quarantines"] += 1
        budget = self.policy.max_retries
        detail = {
            "worker-died": "worker process died",
            "timeout": f"run exceeded the {self.policy.run_timeout_s:g}s timeout",
            "stalled": "worker heartbeats stopped",
        }[reason]
        self.results[task.ordinal] = _WorkerReply(
            pid=0,
            elapsed_s=0.0,
            outcome=RunOutcome(
                error_type=_INFRA_ERROR_TYPES[reason],
                message=f"{detail}; retry budget exhausted "
                f"({task.attempts} attempts, {budget} retries allowed)",
            ),
        )
        if self.bus.enabled:
            self.bus.metrics.counter("orchestrator.quarantines").inc()
            self.bus.emit(
                "orchestrator.quarantine",
                spec=key,
                rep=rep,
                attempts=task.attempts,
                reason=reason,
            )

    def _reap_dead(self, now: float) -> None:
        for handle in list(self.workers):
            if not handle.broken and handle.process.is_alive():
                continue
            # Consume progress markers buffered before death, then
            # salvage finished frames straight from the spool file.
            self._drain_conn(handle)
            self._salvage(handle, "worker-died", now)
            self._retire(handle)
        self._maybe_respawn()

    def _watchdog(self, now: float) -> None:
        for handle in list(self.workers):
            if handle.batch is None:
                continue
            # ``dispatched_at`` resets at every ``prog`` marker, so the
            # timeout stays a *per-run* wall-clock ceiling even when
            # runs travel in batches.
            if now - handle.dispatched_at > self.policy.run_timeout_s:
                reason = "timeout"
            elif now - handle.last_seen > self.policy.stall_threshold_s:
                reason = "stalled"
            else:
                continue
            handle.process.kill()
            self._drain_conn(handle)
            self._salvage(handle, reason, now)
            self._retire(handle)
        self._maybe_respawn()

    # -- scheduling --------------------------------------------------------

    def _promote_delayed(self, now: float) -> None:
        still: list[_Task] = []
        for task in self.delayed:
            if task.ordinal in self.results or task.discarded:
                continue
            if now >= task.not_before:
                self.requeue_ready.append(task)
            else:
                still.append(task)
        self.delayed = still
        self.requeue_ready.sort(key=lambda t: t.ordinal)

    def _next_task(self) -> _Task | None:
        if self.requeue_ready:
            return self.requeue_ready.pop(0)
        while self.pending:
            task = self.pending[0]
            if task.discarded or task.ordinal in self.results:
                self.pending.popleft()
                continue
            if task.ordinal >= self.frontier + self.window:
                return None  # admission control: stay near the frontier
            return self.pending.popleft()
        return None

    def _chunk_size(self) -> int:
        """Runs per batch, adapted to queue depth and worker count.

        A deep queue earns big chunks (per-run dispatch overhead is
        amortised); near the end of the campaign the chunk shrinks
        toward 1 so the stragglers spread across workers instead of
        queueing behind one.
        """
        outstanding = self._outstanding()
        if outstanding <= 0:
            return 1
        target = math.ceil(outstanding / (self.n_workers * 4))
        return max(1, min(target, self.policy.max_batch, self.window))

    def _send_batch(self, handle: _WorkerHandle, tasks: list[_Task], now: float) -> None:
        started = time.perf_counter()
        self.next_batch += 1
        batch_id = self.next_batch
        spool = self.spool_dir / f"batch-{batch_id:06d}.bin"
        # Ship each distinct spec once per batch; jobs reference it by
        # key.  Same-spec runs execute back to back inside the batch so
        # the worker's engine-context cache stays warm (merge order is
        # by ordinal, so execution order within a batch is free).
        specs: dict[str, ExperimentSpec] = {}
        jobs: list[tuple[int, str, int]] = []
        for task in sorted(tasks, key=lambda t: (t.planned.spec.key, t.planned.rep)):
            specs.setdefault(task.planned.spec.key, task.planned.spec)
            jobs.append((task.ordinal, task.planned.spec.key, task.planned.rep))
        batch = _Batch(
            batch_id=batch_id, spool=spool, tasks={t.ordinal: t for t in tasks}
        )
        try:
            handle.conn.send(("batch", batch_id, str(spool), specs, jobs))
        except (OSError, ValueError):
            # Worker already gone; let the reaper requeue the batch.
            handle.broken = True
            handle.batch = batch
            for task in tasks:
                task.dispatched = True
            return
        for task in tasks:
            task.dispatched = True
        handle.batch = batch
        handle.dispatched_at = now
        handle.last_seen = now
        if self.queue is not None:
            self.queue.lease_many(
                [(t.planned.spec.key, t.planned.rep) for t in tasks]
            )
        self.transfer["batches"] += 1
        self.transfer["jobs"] += len(jobs)
        self.transfer["specs"] += len(specs)
        self.transfer["dispatch_overhead_s"] += time.perf_counter() - started
        if self.bus.enabled:
            worker = self.worker_ids.get(handle.process.pid, 0)
            self.bus.emit(
                "orchestrator.batch",
                batch=batch_id,
                size=len(jobs),
                specs=len(specs),
                worker=worker,
            )
            for task in tasks:
                self.bus.emit(
                    "orchestrator.dispatch",
                    spec=task.planned.spec.key,
                    rep=task.planned.rep,
                    attempt=task.attempts,
                    worker=worker,
                    batch=batch_id,
                )

    def _dispatch(self, now: float) -> None:
        if self.draining:
            return
        for handle in self.workers:
            if handle.batch is not None or handle.broken:
                continue
            chunk = self._chunk_size()
            tasks: list[_Task] = []
            while len(tasks) < chunk:
                task = self._next_task()
                if task is None:
                    break
                tasks.append(task)
            if not tasks:
                return
            self._send_batch(handle, tasks, now)

    def _check_interrupt(self) -> None:
        if self.draining:
            return
        sig = pending_signal()
        if sig is None:
            return
        self.draining = True
        self.drain_signal = sig
        if self.bus.enabled:
            self.bus.emit(
                "orchestrator.drain",
                signal=sig,
                pending=self._outstanding(),
                inflight=sum(
                    len(h.batch.tasks) for h in self.workers if h.batch is not None
                ),
            )

    def tick(self) -> None:
        """One supervision round: pump, reap, police, promote, dispatch."""
        self._check_interrupt()
        self._pump_messages()
        now = time.monotonic()
        self._reap_dead(now)
        self._watchdog(now)
        self._promote_delayed(now)
        self._dispatch(now)
        self._maybe_respawn()

    def shutdown(self) -> None:
        for handle in list(self.workers):
            try:
                handle.conn.send(None)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + 2.0
        for handle in list(self.workers):
            handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        self.workers.clear()


class ParallelProtocolRunner(ProtocolRunner):
    """A :class:`ProtocolRunner` that executes runs in supervised workers."""

    def __init__(
        self,
        executor: Executor,
        n_workers: int | None = None,
        on_error: str = "fail",
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 10,
        on_violation: str = "skip",
        seed: int | None = None,
        policy: SupervisionPolicy | None = None,
        supervise: bool | None = None,
    ):
        super().__init__(
            executor,
            on_error=on_error,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            on_violation=on_violation,
        )
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        if n_workers < 1:
            raise ExperimentError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        # Attribution seed for worker.start/worker.end events; defaults
        # to the executor's campaign seed when it exposes one.
        self.seed = int(seed if seed is not None else getattr(executor, "seed", 0) or 0)
        self.policy = policy if policy is not None else SupervisionPolicy()
        # n_workers == 1 normally falls back to the (faster) in-process
        # serial path; supervise=True forces worker processes anyway so
        # single-worker campaigns get timeouts and crash isolation too.
        self.force_supervise = bool(supervise)
        # Batched-dispatch accounting from the last supervised run():
        # batches/jobs dispatched, spool frames/bytes transferred, and
        # the parent-side dispatch overhead in seconds.
        self.transfer_stats: dict[str, float] = {}

    # -- telemetry -----------------------------------------------------------

    def _replay_worker_events(self, bus: Any, events: list[dict[str, Any]], worker: int) -> None:
        for event in events:
            payload = {
                k: v for k, v in event.items() if k not in ("schema", "seq", "event", "t")
            }
            payload.setdefault("worker", worker)
            bus.emit(event["event"], t=event.get("t"), **payload)

    # -- execution -----------------------------------------------------------

    def run(
        self,
        plan: ExperimentPlan,
        progress: Callable[[str], None] | None = None,
        resume_from: RecordStore | None = None,
    ) -> RecordStore:
        """Execute every planned run; results merge in protocol order."""
        if self.n_workers == 1 and not self.force_supervise:
            return super().run(plan, progress=progress, resume_from=resume_from)
        store = resume_from if resume_from is not None else RecordStore()
        done = store.completed_keys()
        already_done = frozenset(done)
        # The simulated protocol clock is reconstructed while merging:
        # skip entries (already-recorded runs) advance it to their
        # recorded end, so post-resume records carry the exact clock a
        # fresh, uninterrupted campaign would have stamped.
        end_clocks = store.end_clocks()
        wall_clock = 0.0
        executed_since_checkpoint = 0
        bus = get_bus()
        prof = get_profiler()
        worker_ids: dict[int, int] = {}

        # Flatten the plan into a schedule: run entries carry a dense
        # ordinal (the merge order), block entries close a block.
        schedule: list[tuple[Any, ...]] = []
        ordinal = 0
        for block_index, (block, wait) in enumerate(zip(plan.blocks, plan.waits_s)):
            for planned in block:
                key = (planned.spec.key, planned.rep)
                if key in already_done:
                    schedule.append(("skip", key, block_index))
                    continue
                schedule.append(("run", _Task(ordinal, planned, block_index)))
                ordinal += 1
            schedule.append(("block", block_index, wait))

        # Bulk cache prefetch (executors that support it): prefetched
        # runs never go to a worker — the parent resolves them at merge
        # position through the exact serial code path, so per-run cache
        # tallies and replay events match a serial campaign's.
        local_keys: set[tuple[str, int]] = set()
        prefetch = getattr(self.executor, "prefetch", None)
        if callable(prefetch):
            jobs = [
                (entry[1].planned.spec, entry[1].planned.rep)
                for entry in schedule
                if entry[0] == "run"
            ]
            if jobs:
                with prof.span("runner.prefetch"):
                    prefetch(jobs)
            staged = getattr(self.executor, "prefetched", None)
            if isinstance(staged, dict):
                local_keys = set(staged.keys())
        if local_keys:
            for entry in schedule:
                if entry[0] != "run":
                    continue
                task = entry[1]
                if (task.planned.spec.key, task.planned.rep) in local_keys:
                    task.local = True

        queue = self._open_queue()
        if queue is not None:
            queue.enqueue_many(
                [
                    (entry[1].planned.spec.key, entry[1].planned.rep)
                    for entry in schedule
                    if entry[0] == "run"
                ]
            )

        spool_dir = Path(tempfile.mkdtemp(prefix="repro-spool-"))
        supervisor = _Supervisor(
            self, bus, queue, self.supervision_stats, worker_ids, spool_dir
        )
        supervisor.pending.extend(
            entry[1] for entry in schedule if entry[0] == "run" and not entry[1].local
        )

        block_ran: dict[int, bool] = {}
        interrupted: str | None = None
        merge_index = 0
        try:
            supervisor.start()
            while merge_index < len(schedule):
                entry = schedule[merge_index]
                if entry[0] == "block":
                    _, block_index, wait = entry
                    if block_ran.get(block_index):
                        wall_clock += wait
                    if progress is not None:
                        progress(
                            f"block {block_index + 1}/{len(plan.blocks)} done "
                            f"(wall clock {wall_clock / 60:.1f} min)"
                        )
                    merge_index += 1
                    continue
                if entry[0] == "skip":
                    # Already recorded by a previous attempt: advance
                    # the reconstructed clock to that run's end and let
                    # its block wait as the original campaign did.
                    _, key, block_index = entry
                    wall_clock = max(wall_clock, end_clocks[key])
                    block_ran[block_index] = True
                    merge_index += 1
                    continue
                task = entry[1]
                key = (task.planned.spec.key, task.planned.rep)
                if key in done:
                    # A duplicate planned run whose twin already
                    # succeeded this campaign: the serial runner skips
                    # it, so any speculative result is dropped.
                    task.discarded = True
                    supervisor.results.pop(task.ordinal, None)
                    if queue is not None:
                        queue.mark_done(*key)
                    supervisor.frontier = task.ordinal + 1
                    merge_index += 1
                    continue
                if task.local:
                    # Prefetched cache hit: resolve it in-parent at its
                    # merge position, through the serial runner's exact
                    # lease/execute/merge sequence.
                    sig = (
                        supervisor.drain_signal
                        if supervisor.draining
                        else pending_signal()
                    )
                    if sig is not None:
                        interrupted = sig
                        break
                    block_ran[task.block] = True
                    with trace_scope(self._trace_context(task.planned)):
                        self._emit_start(bus, task.planned, task.block, wall_clock)
                        if queue is not None:
                            queue.lease(*key)
                        outcome = execute_outcome(
                            self.executor, task.planned.spec, task.planned.rep
                        )
                        if queue is not None:
                            if outcome.ok:
                                queue.mark_done(*key)
                            else:
                                queue.mark_failed(*key)
                        wall_clock = self._merge(
                            store, task.planned, task.block, wall_clock, outcome, bus
                        )
                    supervisor.frontier = task.ordinal + 1
                    merge_index += 1
                    if not outcome.ok:
                        continue
                    done.add(key)
                    executed_since_checkpoint += 1
                    if executed_since_checkpoint >= self.checkpoint_every:
                        self._checkpoint(store)
                        executed_since_checkpoint = 0
                    continue
                reply = supervisor.results.pop(task.ordinal, None)
                if reply is None:
                    if supervisor.draining and not task.dispatched:
                        # Nothing in flight can produce this run any
                        # more: stop merging, checkpoint, surface the
                        # interrupt.
                        interrupted = supervisor.drain_signal or "SIGINT"
                        break
                    supervisor.tick()
                    continue
                block_ran[task.block] = True
                self._emit_start(bus, task.planned, task.block, wall_clock)
                worker = worker_ids.setdefault(reply.pid, len(worker_ids))
                if reply.cache_stats:
                    from .. import service as _service

                    _service.add_cache_stats(reply.cache_stats)
                outcome = reply.outcome
                status = (
                    "ok"
                    if outcome.ok
                    else ("quarantined" if outcome.violation else "failed")
                )
                # The whole merge of one task runs under the task's job
                # span: worker brackets, replayed engine events and
                # run.end all land in one trace (no-op with tracing off).
                with trace_scope(self._trace_context(task.planned)):
                    if bus.enabled:
                        bus.emit(
                            "worker.start",
                            worker=worker,
                            spec=task.planned.spec.key,
                            rep=task.planned.rep,
                            seed=self.seed,
                        )
                        self._replay_worker_events(bus, reply.events, worker)
                        if reply.metrics is not None:
                            bus.metrics.merge(reply.metrics)
                    prof.record("executor.run", reply.elapsed_s)
                    if queue is not None:
                        # Journal the terminal state before merging: the
                        # merge may raise under a fail policy, and the
                        # job must not be replayed as pending on resume.
                        if outcome.ok:
                            queue.mark_done(*key)
                        else:
                            queue.mark_failed(*key)
                    wall_clock = self._merge(
                        store, task.planned, task.block, wall_clock, outcome, bus
                    )
                    if bus.enabled:
                        bus.emit(
                            "worker.end",
                            worker=worker,
                            spec=task.planned.spec.key,
                            rep=task.planned.rep,
                            seed=self.seed,
                            status=status,
                            elapsed_s=float(reply.elapsed_s),
                        )
                supervisor.frontier = task.ordinal + 1
                merge_index += 1
                if not outcome.ok:
                    continue
                done.add(key)
                executed_since_checkpoint += 1
                if executed_since_checkpoint >= self.checkpoint_every:
                    self._checkpoint(store)
                    executed_since_checkpoint = 0
        finally:
            supervisor.shutdown()
            self.transfer_stats = dict(supervisor.transfer)
            shutil.rmtree(spool_dir, ignore_errors=True)
            if queue is not None:
                queue.close(
                    remove=(interrupted is None and merge_index >= len(schedule))
                )
        if interrupted is not None:
            self._checkpoint(store)
            raise CampaignInterrupted(
                interrupted,
                checkpoint=str(self.checkpoint_path)
                if self.checkpoint_path is not None
                else None,
            )
        self._checkpoint(store)
        return store
