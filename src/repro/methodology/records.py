"""Run records: flat, CSV-friendly result rows.

Each executed run yields one :class:`RunRecord` holding the run's
context (experiment, scenario, factors, repetition, simulated wall
clock) plus per-application outcomes and the Equation-1 aggregate.
:class:`RecordStore` is the query surface every figure and analysis
uses, with CSV round-tripping so experiment outputs can be archived the
way the paper publishes its raw results.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

import numpy as np

from ..engine.result import RunResult
from ..errors import ExperimentError

__all__ = ["RunRecord", "RecordStore"]


@dataclass(frozen=True)
class RunRecord:
    """One run's flattened outcome."""

    exp_id: str
    scenario: str
    rep: int
    factors: Mapping[str, Any]
    aggregate_bw_mib_s: float
    apps: tuple[Mapping[str, Any], ...]  # per-app dicts (see from_run_result)
    wall_clock_s: float = 0.0
    block: int = -1

    @classmethod
    def from_run_result(
        cls,
        result: RunResult,
        exp_id: str,
        scenario: str,
        rep: int,
        factors: Mapping[str, Any],
        wall_clock_s: float = 0.0,
        block: int = -1,
    ) -> "RunRecord":
        apps = tuple(
            {
                "app_id": a.app_id,
                "bw_mib_s": a.bandwidth_mib_s,
                "start_s": a.start_time,
                "end_s": a.end_time,
                "volume_bytes": a.volume_bytes,
                "num_nodes": a.num_nodes,
                "ppn": a.ppn,
                "stripe_count": a.stripe_count,
                "targets": a.targets,
                "placement": a.placement,
            }
            for a in result.apps
        )
        return cls(
            exp_id=exp_id,
            scenario=scenario,
            rep=rep,
            factors=dict(factors),
            aggregate_bw_mib_s=result.aggregate_bandwidth_mib_s,
            apps=apps,
            wall_clock_s=wall_clock_s,
            block=block,
        )

    # -- convenience ------------------------------------------------------------

    @property
    def num_apps(self) -> int:
        return len(self.apps)

    @property
    def bw_mib_s(self) -> float:
        """Bandwidth of a single-app run (raises on concurrent runs)."""
        if len(self.apps) != 1:
            raise ExperimentError(f"record has {len(self.apps)} apps; use aggregate_bw_mib_s")
        return float(self.apps[0]["bw_mib_s"])

    @property
    def placement(self) -> tuple[int, ...]:
        """Placement of a single-app run."""
        if len(self.apps) != 1:
            raise ExperimentError("placement of a concurrent run is per-app")
        return tuple(self.apps[0]["placement"])

    def shared_target_count(self) -> int:
        """How many targets are used by more than one application."""
        seen: dict[int, int] = {}
        for app in self.apps:
            for t in app["targets"]:
                seen[t] = seen.get(t, 0) + 1
        return sum(1 for n in seen.values() if n > 1)

    def to_row(self) -> dict[str, str]:
        """Flatten to a CSV row (factors and apps JSON-encoded)."""
        return {
            "exp_id": self.exp_id,
            "scenario": self.scenario,
            "rep": str(self.rep),
            "factors": json.dumps(dict(self.factors), sort_keys=True),
            "aggregate_bw_mib_s": repr(self.aggregate_bw_mib_s),
            "apps": json.dumps([dict(a) for a in self.apps]),
            "wall_clock_s": repr(self.wall_clock_s),
            "block": str(self.block),
        }

    @classmethod
    def from_row(cls, row: Mapping[str, str]) -> "RunRecord":
        apps = tuple(
            {**a, "targets": tuple(a["targets"]), "placement": tuple(a["placement"])}
            for a in json.loads(row["apps"])
        )
        return cls(
            exp_id=row["exp_id"],
            scenario=row["scenario"],
            rep=int(row["rep"]),
            factors=json.loads(row["factors"]),
            aggregate_bw_mib_s=float(row["aggregate_bw_mib_s"]),
            apps=apps,
            wall_clock_s=float(row["wall_clock_s"]),
            block=int(row["block"]),
        )


_CSV_FIELDS = [
    "exp_id",
    "scenario",
    "rep",
    "factors",
    "aggregate_bw_mib_s",
    "apps",
    "wall_clock_s",
    "block",
]


class RecordStore:
    """An in-memory collection of run records with query helpers."""

    def __init__(self, records: list[RunRecord] | None = None):
        self._records: list[RunRecord] = list(records or [])

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self._records)

    def append(self, record: RunRecord) -> None:
        self._records.append(record)

    def extend(self, records: "RecordStore | list[RunRecord]") -> None:
        self._records.extend(records)

    # -- queries --------------------------------------------------------------

    def filter(
        self,
        exp_id: str | None = None,
        scenario: str | None = None,
        predicate: Callable[[RunRecord], bool] | None = None,
        **factors: Any,
    ) -> "RecordStore":
        out = []
        for r in self._records:
            if exp_id is not None and r.exp_id != exp_id:
                continue
            if scenario is not None and r.scenario != scenario:
                continue
            if any(r.factors.get(k) != v for k, v in factors.items()):
                continue
            if predicate is not None and not predicate(r):
                continue
            out.append(r)
        return RecordStore(out)

    def bandwidths(self) -> np.ndarray:
        """Single-app bandwidths of every record, in order."""
        return np.array([r.bw_mib_s for r in self._records])

    def aggregates(self) -> np.ndarray:
        return np.array([r.aggregate_bw_mib_s for r in self._records])

    def factor_values(self, name: str) -> list[Any]:
        """Distinct values of one factor, in sorted order."""
        values = {r.factors.get(name) for r in self._records}
        return sorted(values, key=lambda v: (v is None, v))

    def group_by_factor(self, name: str) -> dict[Any, "RecordStore"]:
        out: dict[Any, RecordStore] = {}
        for r in self._records:
            out.setdefault(r.factors.get(name), RecordStore()).append(r)
        return out

    def group_by_placement(self) -> dict[tuple[int, ...], "RecordStore"]:
        """Group single-app records by their (min, max) placement."""
        out: dict[tuple[int, ...], RecordStore] = {}
        for r in self._records:
            out.setdefault(r.placement, RecordStore()).append(r)
        return out

    # -- persistence -----------------------------------------------------------

    def write_csv(self, path: str | Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=_CSV_FIELDS)
            writer.writeheader()
            for record in self._records:
                writer.writerow(record.to_row())

    @classmethod
    def read_csv(cls, path: str | Path) -> "RecordStore":
        store = cls()
        with Path(path).open(newline="") as fh:
            for row in csv.DictReader(fh):
                store.append(RunRecord.from_row(row))
        return store
