"""Run records: flat, CSV-friendly result rows.

Each executed run yields one :class:`RunRecord` holding the run's
context (experiment, scenario, factors, repetition, simulated wall
clock) plus per-application outcomes and the Equation-1 aggregate.
:class:`RecordStore` is the query surface every figure and analysis
uses, with CSV round-tripping so experiment outputs can be archived the
way the paper publishes its raw results.
"""

from __future__ import annotations

import csv
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

import numpy as np

from ..engine.result import RunResult
from ..errors import CheckpointError, ExperimentError
from ..orchestrator.journal import fsync_dir

__all__ = ["RunRecord", "FailedRunRecord", "RecordStore"]


def _spec_key(exp_id: str, scenario: str, factors: Mapping[str, Any]) -> str:
    # Must match ExperimentSpec.key exactly: resume matching is by key.
    parts = [f"{k}={factors[k]}" for k in sorted(factors)]
    return f"{exp_id}[{scenario}]({','.join(parts)})"


@dataclass(frozen=True)
class RunRecord:
    """One run's flattened outcome."""

    exp_id: str
    scenario: str
    rep: int
    factors: Mapping[str, Any]
    aggregate_bw_mib_s: float
    apps: tuple[Mapping[str, Any], ...]  # per-app dicts (see from_run_result)
    wall_clock_s: float = 0.0
    block: int = -1
    # Fault-injection trace: chunk-request timeouts suffered, whether
    # every flow delivered its full volume, and the engine's
    # timeout/retry/abandon events.  Defaults describe a fault-free run
    # (and let pre-fault-tracking CSV files load unchanged).
    retries: int = 0
    complete: bool = True
    fault_events: tuple[Mapping[str, Any], ...] = ()

    @property
    def spec_key(self) -> str:
        """The owning ExperimentSpec's key (resume matching)."""
        return _spec_key(self.exp_id, self.scenario, self.factors)

    @classmethod
    def from_run_result(
        cls,
        result: RunResult,
        exp_id: str,
        scenario: str,
        rep: int,
        factors: Mapping[str, Any],
        wall_clock_s: float = 0.0,
        block: int = -1,
    ) -> "RunRecord":
        apps = tuple(
            {
                # float()/int() casts keep numpy scalars out of the rows
                # (their repr does not round-trip through CSV/JSON).
                "app_id": a.app_id,
                "bw_mib_s": float(a.bandwidth_mib_s),
                "start_s": float(a.start_time),
                "end_s": float(a.end_time),
                "volume_bytes": float(a.volume_bytes),
                "num_nodes": int(a.num_nodes),
                "ppn": int(a.ppn),
                "stripe_count": int(a.stripe_count),
                "targets": tuple(int(t) for t in a.targets),
                "placement": tuple(int(p) for p in a.placement),
            }
            for a in result.apps
        )
        return cls(
            exp_id=exp_id,
            scenario=scenario,
            rep=rep,
            factors=dict(factors),
            aggregate_bw_mib_s=float(result.aggregate_bandwidth_mib_s),
            apps=apps,
            wall_clock_s=float(wall_clock_s),
            block=block,
            retries=result.retries,
            complete=result.complete,
            fault_events=result.fault_events,
        )

    # -- convenience ------------------------------------------------------------

    @property
    def num_apps(self) -> int:
        return len(self.apps)

    @property
    def end_wall_clock_s(self) -> float:
        """Simulated protocol clock when this run *finished*.

        ``wall_clock_s`` stamps the run's start; the run then advanced
        the clock by its makespan (the latest per-app end time, which
        is relative to the run's own t=0).  Resume uses this to restart
        the clock exactly where an interrupted campaign left it.
        """
        return self.wall_clock_s + max((a["end_s"] for a in self.apps), default=0.0)

    @property
    def bw_mib_s(self) -> float:
        """Bandwidth of a single-app run (raises on concurrent runs)."""
        if len(self.apps) != 1:
            raise ExperimentError(f"record has {len(self.apps)} apps; use aggregate_bw_mib_s")
        return float(self.apps[0]["bw_mib_s"])

    @property
    def placement(self) -> tuple[int, ...]:
        """Placement of a single-app run."""
        if len(self.apps) != 1:
            raise ExperimentError("placement of a concurrent run is per-app")
        return tuple(self.apps[0]["placement"])

    def shared_target_count(self) -> int:
        """How many targets are used by more than one application."""
        seen: dict[int, int] = {}
        for app in self.apps:
            for t in app["targets"]:
                seen[t] = seen.get(t, 0) + 1
        return sum(1 for n in seen.values() if n > 1)

    def to_row(self) -> dict[str, str]:
        """Flatten to a CSV row (factors and apps JSON-encoded)."""
        return {
            "exp_id": self.exp_id,
            "scenario": self.scenario,
            "rep": str(self.rep),
            "factors": json.dumps(dict(self.factors), sort_keys=True),
            "aggregate_bw_mib_s": repr(self.aggregate_bw_mib_s),
            "apps": json.dumps([dict(a) for a in self.apps]),
            "wall_clock_s": repr(self.wall_clock_s),
            "block": str(self.block),
            "retries": str(self.retries),
            "complete": str(int(self.complete)),
            "fault_events": json.dumps([dict(e) for e in self.fault_events]),
        }

    @classmethod
    def from_row(cls, row: Mapping[str, str]) -> "RunRecord":
        apps = tuple(
            {**a, "targets": tuple(a["targets"]), "placement": tuple(a["placement"])}
            for a in json.loads(row["apps"])
        )
        return cls(
            exp_id=row["exp_id"],
            scenario=row["scenario"],
            rep=int(row["rep"]),
            factors=json.loads(row["factors"]),
            aggregate_bw_mib_s=float(row["aggregate_bw_mib_s"]),
            apps=apps,
            wall_clock_s=float(row["wall_clock_s"]),
            block=int(row["block"]),
            # ``get`` defaults keep files written before fault tracking loadable.
            retries=int(row.get("retries") or 0),
            complete=bool(int(row.get("complete") or 1)),
            fault_events=tuple(json.loads(row.get("fault_events") or "[]")),
        )


@dataclass(frozen=True)
class FailedRunRecord:
    """A quarantined run: the executor raised instead of returning.

    Keeps the campaign's failure context (what, when, why) next to the
    successful records, so a long protocol survives partial failures
    and the analysis can see exactly what is missing.
    """

    exp_id: str
    scenario: str
    rep: int
    factors: Mapping[str, Any]
    error_type: str
    message: str
    wall_clock_s: float = 0.0
    block: int = -1
    # Client-robustness history of the failed run: how many chunk-request
    # timeouts it retried through and the full retry/abandon trace the
    # engine attached to the exception.  Round-tripped through the JSON
    # checkpoint so resume() reports are complete (a failed run used to
    # silently drop its RetryPolicy trace).
    retries: int = 0
    flow_trace: tuple[Mapping[str, Any], ...] = ()
    # The flight recorder's dump: the last telemetry events stamped with
    # this run's trace id at the moment of quarantine (see
    # repro.telemetry.trace.FlightRecorder), so a post-mortem needs no
    # event stream.
    last_events: tuple[Mapping[str, Any], ...] = ()

    @property
    def spec_key(self) -> str:
        return _spec_key(self.exp_id, self.scenario, self.factors)

    def to_dict(self) -> dict[str, Any]:
        return {
            "exp_id": self.exp_id,
            "scenario": self.scenario,
            "rep": self.rep,
            "factors": dict(self.factors),
            "error_type": self.error_type,
            "message": self.message,
            "wall_clock_s": self.wall_clock_s,
            "block": self.block,
            "retries": self.retries,
            "flow_trace": [dict(e) for e in self.flow_trace],
            "last_events": [dict(e) for e in self.last_events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FailedRunRecord":
        return cls(
            exp_id=data["exp_id"],
            scenario=data["scenario"],
            rep=int(data["rep"]),
            factors=dict(data["factors"]),
            error_type=data["error_type"],
            message=data["message"],
            wall_clock_s=float(data.get("wall_clock_s", 0.0)),
            block=int(data.get("block", -1)),
            # ``get`` defaults keep checkpoints written before the trace
            # was preserved loadable.
            retries=int(data.get("retries", 0)),
            flow_trace=tuple(dict(e) for e in data.get("flow_trace", ())),
            last_events=tuple(dict(e) for e in data.get("last_events", ())),
        )


_CSV_FIELDS = [
    "exp_id",
    "scenario",
    "rep",
    "factors",
    "aggregate_bw_mib_s",
    "apps",
    "wall_clock_s",
    "block",
    "retries",
    "complete",
    "fault_events",
]


def _atomic_write(path: Path, write_body: Callable[[Any], None]) -> None:
    """Write a file via a same-directory temp file + ``os.replace``.

    An interrupted run can therefore never leave a truncated results
    file: readers see either the previous complete version or the new
    complete version, nothing in between.  The temp file is fsynced
    before the replace and the parent directory after it, so the rename
    itself survives a power cut — without the directory fsync the data
    would be durable but the directory entry could still point at the
    old (or no) version.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", newline="") as fh:
            write_body(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
        fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class RecordStore:
    """An in-memory collection of run records with query helpers.

    Besides the successful :class:`RunRecord` rows it carries the
    campaign's quarantined failures (:class:`FailedRunRecord`), so a
    checkpoint holds the full execution state of an interrupted
    protocol.
    """

    def __init__(
        self,
        records: list[RunRecord] | None = None,
        failures: list[FailedRunRecord] | None = None,
        retried_failures: list[FailedRunRecord] | None = None,
    ):
        self._records: list[RunRecord] = list(records or [])
        self.failures: list[FailedRunRecord] = list(failures or [])
        # Failures from earlier attempts that a resume re-executed: the
        # campaign's full failure history, kept out of ``failures`` so
        # policy decisions only see the current attempt.
        self.retried_failures: list[FailedRunRecord] = list(retried_failures or [])

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self._records)

    def append(self, record: RunRecord) -> None:
        self._records.append(record)

    def extend(self, records: "RecordStore | list[RunRecord]") -> None:
        if isinstance(records, RecordStore):
            self.failures.extend(records.failures)
            self.retried_failures.extend(records.retried_failures)
        self._records.extend(records)

    def archive_failures(self) -> int:
        """Move current failures to ``retried_failures``; returns the count.

        Called by resume() before re-executing quarantined runs, so the
        retry gets a clean slate without discarding the history of what
        failed on the previous attempt.
        """
        count = len(self.failures)
        self.retried_failures.extend(self.failures)
        self.failures.clear()
        return count

    def completed_keys(self) -> set[tuple[str, int]]:
        """The (spec key, rep) pairs already recorded (resume skips them)."""
        return {(r.spec_key, r.rep) for r in self._records}

    def max_wall_clock_s(self) -> float:
        """Latest simulated wall clock of any record (0 when empty)."""
        clocks = [r.wall_clock_s for r in self._records] + [f.wall_clock_s for f in self.failures]
        return max(clocks, default=0.0)

    def end_clocks(self) -> dict[tuple[str, int], float]:
        """Per-(spec key, rep) end-of-run clocks for resume reconstruction.

        Walking the plan and advancing the clock through these values
        (plus the plan's block waits) reproduces the exact clock a
        fresh, uninterrupted campaign would have shown at each pending
        run — the byte-identical-resume contract the chaos harness
        enforces.
        """
        return {(r.spec_key, r.rep): r.end_wall_clock_s for r in self._records}

    # -- queries --------------------------------------------------------------

    def filter(
        self,
        exp_id: str | None = None,
        scenario: str | None = None,
        predicate: Callable[[RunRecord], bool] | None = None,
        **factors: Any,
    ) -> "RecordStore":
        out = []
        for r in self._records:
            if exp_id is not None and r.exp_id != exp_id:
                continue
            if scenario is not None and r.scenario != scenario:
                continue
            if any(r.factors.get(k) != v for k, v in factors.items()):
                continue
            if predicate is not None and not predicate(r):
                continue
            out.append(r)
        return RecordStore(out)

    def bandwidths(self) -> np.ndarray:
        """Single-app bandwidths of every record, in order."""
        return np.array([r.bw_mib_s for r in self._records])

    def aggregates(self) -> np.ndarray:
        return np.array([r.aggregate_bw_mib_s for r in self._records])

    def factor_values(self, name: str) -> list[Any]:
        """Distinct values of one factor, in sorted order."""
        values = {r.factors.get(name) for r in self._records}
        return sorted(values, key=lambda v: (v is None, v))

    def group_by_factor(self, name: str) -> dict[Any, "RecordStore"]:
        out: dict[Any, RecordStore] = {}
        for r in self._records:
            out.setdefault(r.factors.get(name), RecordStore()).append(r)
        return out

    def group_by_placement(self) -> dict[tuple[int, ...], "RecordStore"]:
        """Group single-app records by their (min, max) placement."""
        out: dict[tuple[int, ...], RecordStore] = {}
        for r in self._records:
            out.setdefault(r.placement, RecordStore()).append(r)
        return out

    # -- persistence -----------------------------------------------------------

    def write_csv(self, path: str | Path) -> None:
        """Archive the successful records as CSV, crash-safely."""

        def body(fh: Any) -> None:
            writer = csv.DictWriter(fh, fieldnames=_CSV_FIELDS)
            writer.writeheader()
            for record in self._records:
                writer.writerow(record.to_row())

        _atomic_write(Path(path), body)

    @classmethod
    def read_csv(cls, path: str | Path) -> "RecordStore":
        store = cls()
        with Path(path).open(newline="") as fh:
            for row in csv.DictReader(fh):
                store.append(RunRecord.from_row(row))
        return store

    def write_json(self, path: str | Path) -> None:
        """Checkpoint the full store (records AND failures), crash-safely."""
        payload = {
            "records": [r.to_row() for r in self._records],
            "failures": [f.to_dict() for f in self.failures],
            "retried_failures": [f.to_dict() for f in self.retried_failures],
        }
        _atomic_write(Path(path), lambda fh: json.dump(payload, fh))

    @classmethod
    def read_json(cls, path: str | Path) -> "RecordStore":
        try:
            with Path(path).open() as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
        try:
            return cls(
                records=[RunRecord.from_row(row) for row in payload["records"]],
                failures=[FailedRunRecord.from_dict(f) for f in payload["failures"]],
                # ``get`` default keeps checkpoints written before the
                # retry archive loadable.
                retried_failures=[
                    FailedRunRecord.from_dict(f) for f in payload.get("retried_failures", [])
                ],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint {path}: {exc}") from exc
