"""Experiment plans: expansion into runs, blocking, shuffling.

An :class:`ExperimentSpec` is one experiment *configuration* (a point
of a parameter sweep).  The plan expands every spec into its
repetitions, chunks each spec's runs into blocks (the paper's blocks
are homogeneous: ten consecutive repetitions of the same experiment),
shuffles the block order, and draws the inter-block waits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from ..errors import ExperimentError
from ..rng import SeedTree
from .protocol import ProtocolConfig

__all__ = ["ExperimentSpec", "PlannedRun", "ExperimentPlan"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment configuration of a sweep."""

    exp_id: str
    scenario: str
    factors: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.exp_id:
            raise ExperimentError("exp_id must be non-empty")
        object.__setattr__(self, "factors", dict(self.factors))

    @property
    def key(self) -> str:
        """A stable, human-readable key for engine caching and records."""
        parts = [f"{k}={self.factors[k]}" for k in sorted(self.factors)]
        return f"{self.exp_id}[{self.scenario}]({','.join(parts)})"


@dataclass(frozen=True)
class PlannedRun:
    """One scheduled execution: a spec plus its repetition index."""

    spec: ExperimentSpec
    rep: int

    def __post_init__(self) -> None:
        if self.rep < 0:
            raise ExperimentError("negative repetition index")


@dataclass
class ExperimentPlan:
    """The ordered execution schedule with inter-block waits."""

    blocks: list[list[PlannedRun]]
    waits_s: list[float]  # wait after each block (len == len(blocks))
    protocol: ProtocolConfig

    def __post_init__(self) -> None:
        if len(self.waits_s) != len(self.blocks):
            raise ExperimentError("need one wait per block")

    @classmethod
    def build(
        cls,
        specs: Sequence[ExperimentSpec],
        protocol: ProtocolConfig = ProtocolConfig(),
        seed: int = 0,
    ) -> "ExperimentPlan":
        """Expand, block, shuffle and draw waits (Section III-C steps 1-4)."""
        if not specs:
            raise ExperimentError("plan needs at least one experiment spec")
        keys = [s.key for s in specs]
        if len(set(keys)) != len(keys):
            raise ExperimentError("duplicate experiment specs in plan")
        rng = SeedTree(seed).rng("protocol")

        blocks: list[list[PlannedRun]] = []
        for spec in specs:
            runs = [PlannedRun(spec, rep) for rep in range(protocol.repetitions)]
            for i in range(0, len(runs), protocol.block_size):
                blocks.append(runs[i : i + protocol.block_size])
        if protocol.shuffle_blocks:
            order = rng.permutation(len(blocks))
            blocks = [blocks[i] for i in order]
        if protocol.max_wait_s > 0:
            waits = rng.uniform(protocol.min_wait_s, protocol.max_wait_s, size=len(blocks))
            waits_s = [float(w) for w in waits]
        else:
            waits_s = [0.0] * len(blocks)
        return cls(blocks=blocks, waits_s=waits_s, protocol=protocol)

    # -- queries -------------------------------------------------------------

    def __iter__(self) -> Iterator[PlannedRun]:
        for block in self.blocks:
            yield from block

    @property
    def num_runs(self) -> int:
        return sum(len(b) for b in self.blocks)

    def runs_of(self, spec: ExperimentSpec) -> list[PlannedRun]:
        return [r for r in self if r.spec.key == spec.key]

    def total_wait_s(self) -> float:
        return float(np.sum(self.waits_s))

    def block_of(self, run: PlannedRun) -> int:
        for i, block in enumerate(self.blocks):
            if run in block:
                return i
        raise ExperimentError("run not in plan")
