"""Protocol configuration: Section III-C's constants as a dataclass."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["ProtocolConfig"]


@dataclass(frozen=True)
class ProtocolConfig:
    """The execution protocol parameters.

    Defaults are the paper's: 100 repetitions, blocks of 10, random
    block order, waits uniformly drawn from 1-30 minutes.
    """

    repetitions: int = 100
    block_size: int = 10
    shuffle_blocks: bool = True
    min_wait_s: float = 60.0
    max_wait_s: float = 1800.0

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ConfigError("repetitions must be >= 1")
        if self.block_size < 1:
            raise ConfigError("block size must be >= 1")
        if not 0 <= self.min_wait_s <= self.max_wait_s:
            raise ConfigError("need 0 <= min_wait_s <= max_wait_s")

    def quick(self, repetitions: int = 10) -> "ProtocolConfig":
        """A reduced copy for tests and smoke runs."""
        return ProtocolConfig(
            repetitions=repetitions,
            block_size=min(self.block_size, max(1, repetitions // 2)),
            shuffle_blocks=self.shuffle_blocks,
            min_wait_s=0.0,
            max_wait_s=0.0,
        )
