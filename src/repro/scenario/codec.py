"""JSON codecs for the engine-facing configuration objects.

:class:`~repro.engine.base.EngineOptions` (with its nested
:class:`~repro.faults.FaultSchedule` and
:class:`~repro.storage.client_model.RetryPolicy`) predates the IR and
has no serialization of its own; these functions give it an exact
JSON round trip so a :class:`~repro.scenario.spec.ScenarioSpec` can be
fingerprinted, stored next to cached results, and reconstructed in a
different process.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Mapping

from ..engine.base import EngineOptions
from ..faults import FaultSchedule
from ..storage.client_model import RetryPolicy
from ..verify.level import ValidationLevel
from .canonical import canonical_json, fingerprint_of

__all__ = [
    "canonical_json",
    "fingerprint_of",
    "options_to_jsonable",
    "options_from_jsonable",
    "retry_to_jsonable",
    "retry_from_jsonable",
]


def retry_to_jsonable(retry: RetryPolicy) -> dict[str, Any]:
    return {k: float(v) if isinstance(v, float) else int(v) for k, v in asdict(retry).items()}


def retry_from_jsonable(data: Mapping[str, Any]) -> RetryPolicy:
    return RetryPolicy(
        timeout_s=float(data["timeout_s"]),
        max_retries=int(data["max_retries"]),
        backoff_base_s=float(data["backoff_base_s"]),
        backoff_factor=float(data["backoff_factor"]),
        backoff_max_s=float(data["backoff_max_s"]),
    )


def options_to_jsonable(options: EngineOptions) -> dict[str, Any]:
    return {
        "noise_enabled": bool(options.noise_enabled),
        "observe_servers": bool(options.observe_servers),
        "include_metadata_overhead": bool(options.include_metadata_overhead),
        "cap_iterations": int(options.cap_iterations),
        "interleaved_creations": [int(n) for n in options.interleaved_creations],
        "fault_schedule": (
            None if options.fault_schedule is None else options.fault_schedule.to_jsonable()
        ),
        "retry": None if options.retry is None else retry_to_jsonable(options.retry),
        "validation": options.validation.name.lower(),
    }


def options_from_jsonable(data: Mapping[str, Any]) -> EngineOptions:
    return EngineOptions(
        noise_enabled=bool(data["noise_enabled"]),
        observe_servers=bool(data["observe_servers"]),
        include_metadata_overhead=bool(data["include_metadata_overhead"]),
        cap_iterations=int(data["cap_iterations"]),
        interleaved_creations=tuple(int(n) for n in data["interleaved_creations"]),
        fault_schedule=(
            None
            if data["fault_schedule"] is None
            else FaultSchedule.from_jsonable(data["fault_schedule"])
        ),
        retry=None if data["retry"] is None else retry_from_jsonable(data["retry"]),
        validation=ValidationLevel.parse(data["validation"]),
    )
