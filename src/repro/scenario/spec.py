"""The scenario IR: one canonical, frozen description of a simulated run.

A :class:`ScenarioSpec` is everything that determines what a run
*simulates*: the calibration scenario, the workload factor assignment,
the deployment builder, the seed, the platform size, and the full
:class:`~repro.engine.base.EngineOptions` (fault schedule and retry
policy included).  Every entry point — experiment sweep tables, CLI
flags, bench workloads, verify cases — lowers to this object through
:func:`~repro.scenario.compile.compile_scenario`, and everything
downstream (the simulation service, the result cache, the campaign
planner) consumes only this.

Identity is content: :attr:`fingerprint` is a sha256 over the spec's
canonical JSON form, independent of factor-dict insertion order and of
the process that computed it.  Two deliberate exclusions keep the cache
maximally shareable:

* ``exp_id`` is a presentation label — two experiments sweeping the
  same configuration hit the same cache entries;
* ``options.validation`` — validated runs are byte-identical to
  unvalidated ones (PR 2's guarantee), and the service bypasses the
  cache entirely for validated runs anyway, so the level must not
  split the key space.

The engine (fluid vs DES) and the model revision are part of the cache
*entry* key, not the fingerprint: one scenario, several engines.
``MODEL_REVISION`` must be bumped whenever the simulated behaviour of
the engines changes, or stale cached results would survive a model fix.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping

from ..engine.base import EngineOptions
from ..errors import ConfigError
from .canonical import fingerprint_of
from .codec import options_from_jsonable, options_to_jsonable

__all__ = ["MODEL_REVISION", "ScenarioSpec", "SPEC_SCHEMA"]

# Bump when engine behaviour changes: cached results are keyed on it.
MODEL_REVISION = 1

# Version of the ScenarioSpec JSON layout itself.
SPEC_SCHEMA = 1

_ENGINES = ("fluid", "des")


def _normalize_value(value: Any) -> Any:
    """Coerce a factor value to a canonical JSON-able scalar (or tuple)."""
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if isinstance(value, str):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_normalize_value(v) for v in value)
    if hasattr(value, "item"):  # numpy scalar
        return _normalize_value(value.item())
    raise ConfigError(f"factor value {value!r} is not JSON-representable")


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-determined simulated run configuration (minus the rep index)."""

    exp_id: str
    scenario: str
    factors: tuple[tuple[str, Any], ...] = ()
    engine: str = "fluid"
    builder: str = "standard"
    seed: int = 0
    max_nodes: int = 32
    options: EngineOptions = field(default_factory=EngineOptions)

    def __post_init__(self) -> None:
        factors = self.factors
        if isinstance(factors, Mapping):
            items: Iterable[tuple[Any, Any]] = factors.items()
        else:
            items = tuple(factors)
        normalized = tuple(
            sorted((str(k), _normalize_value(v)) for k, v in items)
        )
        keys = [k for k, _ in normalized]
        if len(set(keys)) != len(keys):
            raise ConfigError(f"duplicate factor names: {keys}")
        object.__setattr__(self, "factors", normalized)
        if self.engine not in _ENGINES:
            raise ConfigError(
                f"unknown engine {self.engine!r} (expected one of: {', '.join(_ENGINES)})"
            )

    # -- views ---------------------------------------------------------------------

    @property
    def factor_map(self) -> dict[str, Any]:
        return dict(self.factors)

    def factor(self, name: str, default: Any = None) -> Any:
        return self.factor_map.get(name, default)

    def with_options(self, **changes: Any) -> "ScenarioSpec":
        return replace(self, options=replace(self.options, **changes))

    # -- identity ------------------------------------------------------------------

    def behavior_form(self) -> dict[str, Any]:
        """The JSON projection of everything that affects simulated behaviour.

        Excludes ``exp_id``, the engine choice and the validation level
        (see the module docstring); infinite fault durations are already
        string-encoded by the options codec, so the form is strictly
        canonical-JSON safe.
        """
        options = options_to_jsonable(self.options)
        options.pop("validation")
        return {
            "scenario": self.scenario,
            "factors": self.factor_map,
            "builder": self.builder,
            "seed": int(self.seed),
            "max_nodes": int(self.max_nodes),
            "options": options,
        }

    @property
    def fingerprint(self) -> str:
        """Content digest of :meth:`behavior_form`, cached after first use."""
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = fingerprint_of(self.behavior_form())
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    # -- serialization -------------------------------------------------------------

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "schema": SPEC_SCHEMA,
            "exp_id": self.exp_id,
            "scenario": self.scenario,
            "factors": self.factor_map,
            "engine": self.engine,
            "builder": self.builder,
            "seed": int(self.seed),
            "max_nodes": int(self.max_nodes),
            "options": options_to_jsonable(self.options),
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        if data.get("schema") != SPEC_SCHEMA:
            raise ConfigError(
                f"scenario spec has schema {data.get('schema')!r}, expected {SPEC_SCHEMA}"
            )
        return cls(
            exp_id=str(data["exp_id"]),
            scenario=str(data["scenario"]),
            factors=dict(data["factors"]),
            engine=str(data["engine"]),
            builder=str(data["builder"]),
            seed=int(data["seed"]),
            max_nodes=int(data["max_nodes"]),
            options=options_from_jsonable(data["options"]),
        )

    def describe(self) -> str:
        factors = ", ".join(f"{k}={v}" for k, v in self.factors)
        return (
            f"{self.exp_id}[{self.scenario}] {{{factors}}} "
            f"engine={self.engine} seed={self.seed} fp={self.fingerprint[:12]}"
        )
