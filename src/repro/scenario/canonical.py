"""Canonical JSON and content fingerprints.

One serialization convention shared by everything that hashes run
configurations or run results — the :class:`~repro.scenario.spec.ScenarioSpec`
fingerprint, the result cache keys, and the deterministic-replay
fingerprints of :mod:`repro.verify.replay` all go through here, so a
digest computed anywhere agrees with a digest computed everywhere.

The convention: JSON with sorted keys, no whitespace, and ``allow_nan``
off (a NaN would compare unequal to itself and silently break content
addressing; infinities must be encoded as strings by the caller).
Floats rely on Python's shortest-repr float formatting, which is exact:
``float(repr(x)) == x`` for every finite float, so a value survives any
number of encode/decode round trips bit-identically.  This module is a
leaf on purpose — no repro imports — so any layer may use it.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["canonical_json", "fingerprint_of"]


class _CanonicalEncoder(json.JSONEncoder):
    """Accept numpy scalars: ``np.float64`` subclasses ``float`` and is
    handled natively, but integer scalars are not ``int`` and would fail."""

    def default(self, o: Any) -> Any:
        for cast in (int, float):
            if hasattr(o, "item") and isinstance(o.item(), cast):
                return o.item()
        return super().default(o)


def canonical_json(obj: Any) -> str:
    """The one canonical text form of a JSON-able object."""
    return json.dumps(
        obj,
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
        cls=_CanonicalEncoder,
    )


def fingerprint_of(obj: Any) -> str:
    """sha256 hex digest of the object's canonical JSON form."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()
