"""Lowering entry-point configurations into the scenario IR.

:func:`compile_scenario` is the single pass every caller goes through:
an :class:`~repro.methodology.plan.ExperimentSpec` (the sweep tables'
unit) plus the campaign-level knobs (seed, engine options, platform
size, deployment builder) become one frozen
:class:`~repro.scenario.spec.ScenarioSpec`.  The factor vocabulary the
paper's experiments sweep lives here too, as
:func:`default_apps_builder` — the standard interpretation of a factor
dict as IOR applications on a topology.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..engine.base import EngineOptions
from ..methodology.plan import ExperimentSpec
from ..topology.graph import Topology
from ..units import GiB, MiB
from ..workload.application import Application
from ..workload.generator import concurrent_applications, single_application
from ..workload.patterns import pattern_by_name
from .spec import ScenarioSpec

__all__ = ["compile_scenario", "default_apps_builder"]


def default_apps_builder(topology: Topology, factors: Mapping[str, Any]) -> list[Application]:
    """Build the applications a factor dict describes.

    ==================  =========================================================
    factor              meaning (default)
    ==================  =========================================================
    ``num_nodes``       compute nodes of the application (8)
    ``ppn``             processes per node (8)
    ``total_gib``       total data volume in GiB (32)
    ``transfer_mib``    IOR transfer size in MiB (1)
    ``pattern``         access pattern name (``n1-contiguous``)
    ``operation``       ``write`` (default) or ``read``
    ``num_apps``        concurrent applications on disjoint node sets (1)
    ``nodes_per_app``   nodes of each concurrent application (``num_nodes``)
    ==================  =========================================================

    (``stripe_count``, ``chooser`` and ``chunk_kib`` are deployment
    factors, consumed by the scenario builders instead.)
    """
    num_nodes = int(factors.get("num_nodes", 8))
    ppn = int(factors.get("ppn", 8))
    total_bytes = int(float(factors.get("total_gib", 32)) * GiB)
    transfer = int(float(factors.get("transfer_mib", 1)) * MiB)
    pattern = pattern_by_name(str(factors.get("pattern", "n1-contiguous")))
    operation = str(factors.get("operation", "write"))
    num_apps = int(factors.get("num_apps", 1))
    if num_apps == 1:
        return [
            single_application(
                topology,
                num_nodes,
                ppn=ppn,
                total_bytes=total_bytes,
                transfer_size=transfer,
                pattern=pattern,
                operation=operation,
            )
        ]
    nodes_per_app = int(factors.get("nodes_per_app", num_nodes))
    return concurrent_applications(
        topology,
        num_apps,
        nodes_per_app=nodes_per_app,
        ppn=ppn,
        total_bytes_each=total_bytes,
        transfer_size=transfer,
        pattern=pattern,
    )


def compile_scenario(
    spec: ExperimentSpec,
    *,
    seed: int = 0,
    options: EngineOptions = EngineOptions(),
    max_nodes: int = 32,
    engine: str = "fluid",
    builder: str = "standard",
) -> ScenarioSpec:
    """Lower an experiment-level spec plus campaign knobs to the IR."""
    return ScenarioSpec(
        exp_id=spec.exp_id,
        scenario=spec.scenario,
        factors=dict(spec.factors),
        engine=engine,
        builder=builder,
        seed=int(seed),
        max_nodes=int(max_nodes),
        options=options,
    )
