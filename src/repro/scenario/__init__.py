"""The canonical scenario IR (see :mod:`repro.scenario.spec`).

``canonical``/``codec``/``spec`` are imported eagerly (they are cheap);
:mod:`.compile` pulls in the workload and calibration layers, so it is
resolved lazily to keep leaf importers (e.g. the replay fingerprinter,
which only needs :func:`canonical_json`) light and cycle-free.
"""

from __future__ import annotations

from .canonical import canonical_json, fingerprint_of
from .codec import (
    options_from_jsonable,
    options_to_jsonable,
    retry_from_jsonable,
    retry_to_jsonable,
)
from .spec import MODEL_REVISION, SPEC_SCHEMA, ScenarioSpec

__all__ = [
    "MODEL_REVISION",
    "SPEC_SCHEMA",
    "ScenarioSpec",
    "canonical_json",
    "fingerprint_of",
    "options_to_jsonable",
    "options_from_jsonable",
    "retry_to_jsonable",
    "retry_from_jsonable",
    "compile_scenario",
    "default_apps_builder",
]


def __getattr__(name: str):
    if name in ("compile_scenario", "default_apps_builder"):
        from . import compile as _compile

        return getattr(_compile, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
