"""Model calibration: parameter sets tying the simulator to PlaFRIM.

The paper reports enough anchor points (single-node bandwidths, plateau
values, per-scenario peaks, noise magnitudes) to pin every model
parameter; :mod:`repro.calibration.plafrim` packages them as the two
scenarios, and :mod:`repro.calibration.fitting` provides the helpers
used to derive/check them.
"""

from .plafrim import (
    Calibration,
    scenario1,
    scenario2,
    SCENARIOS,
    scenario_by_name,
)
from .fitting import AnchorCheck, anchor_report, check_anchors, fit_depth_constant

__all__ = [
    "Calibration",
    "scenario1",
    "scenario2",
    "SCENARIOS",
    "scenario_by_name",
    "AnchorCheck",
    "anchor_report",
    "check_anchors",
    "fit_depth_constant",
]
