"""The calibrated PlaFRIM model: scenarios 1 and 2.

Anchor points from the paper and the derived parameters:

========================================  =======================================
Paper observation                          Model parameter
========================================  =======================================
1 node x 8 ppn, eth: ~880 MiB/s            client base capacity (eth) = 880
1 node x 8 ppn, opath: ~1631 MiB/s         client base capacity (opath) = 1630
stripe 1, 32 nodes, opath: ~1764 MiB/s     storage pool S(1) = 1764
stripe 4, opath plateau ~6100 (Fig 4b)     pool S(3) = 4900 (6530 via (1,3) split)
(3,3) ~10.15% over (2,4) (Fig 10)          pool S(2) = 3400, S(4) = 5200
stripe 8, opath mean ~8064 (Fig 6b)        SAN ramp base 11800 (x0.73 at 32 nodes)
plateau node count grows with stripe       SAN ramp (a=.25, d_fast=10, d_slow=500)
  count: ~2/3/14/32 nodes for k=1/2/4/8      -> Figure 11's plateau positions
sharing all OSTs == sharing none (Fig 13)  SAN depends on *total* concurrency only
scenario 1 balanced peak: ~2200 MiB/s      per-server ingest = 1100 (10G x 0.923)
scenario 1 plateau at 4 nodes (Fig 4a)     ingest depth constant = 5
16 ppn ~= 8 ppn, slight degradation        client contention 0.003/proc past 8
sigma 139.8 -> 787.9 MiB/s (stripe 1->8)   pool/SAN noise sigmas below
Fig 2 stabilises at 16-32 GiB              noisy metadata overhead (0.3-0.35 s,
  and is far more variable at small sizes     sigma 0.4) + epoch noise averaging
========================================  =======================================

The per-target service curve peak (2000 MiB/s) sits above the pool's
single-target rate S(1) = 1764 so that the *pool* and the *SAN ramp*
(the noisy resources) are the binding constraints; the per-target
curve saturates within a few outstanding requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..beegfs.filesystem import BeeGFSDeploymentSpec, plafrim_deployment
from ..errors import ConfigError
from ..storage.client_model import ClientServiceSpec
from ..storage.san import SanRampSpec
from ..storage.server import ServerIngestSpec, StorageHostSpec, StoragePoolSpec
from ..storage.target import TargetServiceSpec
from ..storage.variability import CompositeNoise, NoiseSpec, SharedStateNoise, StochasticNoise
from ..topology.builders import ETHERNET_10G, OMNIPATH_100G, NetworkSpec, plafrim_spec, build_platform
from ..topology.graph import Topology

__all__ = ["Calibration", "scenario1", "scenario2", "SCENARIOS", "scenario_by_name"]


@dataclass(frozen=True)
class Calibration:
    """Every parameter the engines need, for one scenario."""

    name: str
    description: str
    network: NetworkSpec
    client: ClientServiceSpec
    ingest: ServerIngestSpec
    target: TargetServiceSpec
    pool: StoragePoolSpec
    san: SanRampSpec
    request_rtt_s: float
    metadata_overhead_s: float
    metadata_sigma: float
    storage_noise: NoiseSpec
    network_noise: NoiseSpec | None = None
    # Reads skip the RAID-6 read-modify-write parity penalty, so the
    # storage side is somewhat faster.  The paper defers reads to future
    # work ("we expect the observed behaviors to be the same", citing
    # Chowdhury et al.); this factor is our documented extrapolation.
    read_storage_factor: float = 1.12

    def __post_init__(self) -> None:
        if self.request_rtt_s < 0 or self.metadata_overhead_s < 0:
            raise ConfigError("negative overheads")
        if self.metadata_sigma < 0:
            raise ConfigError("negative metadata sigma")
        if self.read_storage_factor <= 0:
            raise ConfigError("read factor must be positive")

    @property
    def san_mib_s(self) -> float:
        """The global storage ceiling at full concurrency."""
        return self.san.base_mib_s

    # -- factories -------------------------------------------------------------

    def platform(self, num_compute_nodes: int = 64) -> Topology:
        """Build the scenario's topology."""
        return build_platform(plafrim_spec(self.network, num_compute_nodes))

    def deployment(self, **kwargs: object) -> BeeGFSDeploymentSpec:
        """The PlaFRIM BeeGFS deployment (see ``plafrim_deployment``)."""
        kwargs.setdefault("keep_data", False)
        return plafrim_deployment(**kwargs)  # type: ignore[arg-type]

    def storage_hosts(
        self, deployment: BeeGFSDeploymentSpec, operation: str = "write"
    ) -> list[StorageHostSpec]:
        """Per-host performance specs matching a deployment's targets.

        For ``operation="read"`` the storage-side peaks are scaled by
        ``read_storage_factor`` (no parity penalty).
        """
        factor = self.read_storage_factor if operation == "read" else 1.0
        target = replace(self.target, peak_mib_s=self.target.peak_mib_s * factor)
        pool = replace(self.pool, per_target_mib_s=self.pool.per_target_mib_s * factor)
        return [
            StorageHostSpec(
                host=host,
                target_ids=tuple(tids),
                target_spec=target,
                ingest_spec=self.ingest,
                pool_spec=pool,
            )
            for host, tids in deployment.servers
        ]

    def san_for(self, operation: str = "write") -> SanRampSpec:
        """The SAN ramp, scaled for the operation direction."""
        if operation == "read":
            return replace(self.san, base_mib_s=self.san.base_mib_s * self.read_storage_factor)
        return self.san

    def make_noise(self) -> CompositeNoise:
        """A fresh (single-run) noise model instance.

        Storage noise is *shared-state* (one multiplier for the whole
        storage stack — see :class:`SharedStateNoise`); network noise,
        when present, varies per server link.
        """
        models: list[StochasticNoise | SharedStateNoise] = [
            SharedStateNoise(self.storage_noise)
        ]
        if self.network_noise is not None:
            models.append(StochasticNoise(self.network_noise))
        return CompositeNoise(tuple(models))

    # -- analytic anchors ---------------------------------------------------------

    @property
    def per_server_network_mib_s(self) -> float:
        """Effective per-server ingest at full concurrency."""
        return self.ingest.effective_link_mib_s

    @property
    def per_server_storage_mib_s(self) -> float:
        """Storage-side per-server ceiling with all four targets busy."""
        return self.pool.aggregate_mib_s(4)

    @property
    def network_bound(self) -> bool:
        """True for scenario 1: the network is slower than the storage."""
        return self.per_server_network_mib_s < self.pool.aggregate_mib_s(1)

    def with_overrides(self, **kwargs: object) -> "Calibration":
        """A modified copy (ablation studies)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


# The per-target curve saturates almost immediately (one busy process
# fills a target's command queue); system-level concurrency effects
# live in the SAN ramp below.
_TARGET_SPEC = TargetServiceSpec(peak_mib_s=2000.0, depth_constant=2.0)
_POOL_SPEC = StoragePoolSpec(
    per_target_mib_s=1764.0,
    scaling=(1.0, 0.964, 0.926, 0.737),
    tail_decay=0.95,
)
_SAN_SPEC = SanRampSpec(base_mib_s=11800.0, fast_fraction=0.25, depth_fast=10.0, depth_slow=500.0)

_STORAGE_NOISE = NoiseSpec(
    sigma_run=0.08,
    sigma_epoch=0.05,
    epoch_length_s=4.0,
    transient_prob=0.01,
    transient_severity=0.55,
    scope_prefixes=("pool:", "san:", "ost:"),
)


def scenario1() -> Calibration:
    """Scenario 1 — 10 GbE: the network is slower than the storage."""
    return Calibration(
        name="scenario1",
        description="network is slower than storage (10 Gbit/s Ethernet)",
        network=ETHERNET_10G,
        client=ClientServiceSpec(base_mib_s=880.0),
        ingest=ServerIngestSpec(
            link_mib_s=ETHERNET_10G.link_mib_s,  # ~1192 MiB/s raw
            protocol_efficiency=0.923,  # -> ~1100 MiB/s effective
            depth_constant=5.0,
        ),
        target=_TARGET_SPEC,
        pool=_POOL_SPEC,
        san=_SAN_SPEC,
        request_rtt_s=3.0e-4,
        metadata_overhead_s=0.35,
        metadata_sigma=0.4,
        storage_noise=_STORAGE_NOISE,
        network_noise=NoiseSpec(
            sigma_run=0.012,
            sigma_epoch=0.022,
            epoch_length_s=4.0,
            transient_prob=0.004,
            transient_severity=0.6,
            scope_prefixes=("ingest:",),
        ),
    )


def scenario2() -> Calibration:
    """Scenario 2 — 100 Gb Omnipath: the storage is slower than the network."""
    return Calibration(
        name="scenario2",
        description="storage is slower than network (100 Gbit/s Omnipath)",
        network=OMNIPATH_100G,
        client=ClientServiceSpec(base_mib_s=1630.0),
        ingest=ServerIngestSpec(
            link_mib_s=OMNIPATH_100G.link_mib_s,  # ~11921 MiB/s raw
            protocol_efficiency=0.92,
            depth_constant=5.0,
        ),
        target=_TARGET_SPEC,
        pool=_POOL_SPEC,
        san=_SAN_SPEC,
        request_rtt_s=1.0e-4,
        metadata_overhead_s=0.30,
        metadata_sigma=0.4,
        storage_noise=_STORAGE_NOISE,
        network_noise=None,
    )


SCENARIOS = ("scenario1", "scenario2")


def scenario_by_name(name: str) -> Calibration:
    """Look a scenario up by its registry name."""
    if name == "scenario1":
        return scenario1()
    if name == "scenario2":
        return scenario2()
    raise ConfigError(f"unknown scenario {name!r}; known: {SCENARIOS}")
