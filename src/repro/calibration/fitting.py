"""Calibration helpers: fitting and anchor checking.

These utilities derive model parameters from observed anchor points and
verify that a :class:`~repro.calibration.plafrim.Calibration` is
consistent with the paper's reported numbers.  They are also what a
user would run to re-calibrate the model against *their own* system —
the paper's methodological point (Lesson 2: find your node plateau
first) packaged as code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from ..errors import AnalysisError
from .plafrim import Calibration

__all__ = ["fit_depth_constant", "anchor_report", "AnchorCheck"]


def fit_depth_constant(depths: np.ndarray, achieved_fraction: np.ndarray) -> float:
    """Least-squares fit of ``d0`` in ``f(d) = 1 - exp(-d / d0)``.

    ``depths`` are concurrency levels, ``achieved_fraction`` the
    measured fraction of peak rate at each.  Used to derive the target
    and ingest depth constants from node-scaling curves like Figure 4.
    """
    depths = np.asarray(depths, dtype=float)
    frac = np.asarray(achieved_fraction, dtype=float)
    if depths.shape != frac.shape or depths.size < 2:
        raise AnalysisError("need >= 2 aligned (depth, fraction) samples")
    if np.any(depths <= 0) or np.any((frac <= 0) | (frac >= 1)):
        raise AnalysisError("depths must be positive, fractions in (0, 1)")

    def residual(d0: float) -> np.ndarray:
        return (1.0 - np.exp(-depths / d0)) - frac

    result = optimize.least_squares(residual, x0=[float(np.median(depths))], bounds=(1e-6, 1e6))
    return float(result.x[0])


@dataclass(frozen=True)
class AnchorCheck:
    """One calibrated quantity versus its paper anchor."""

    name: str
    paper_value: float
    model_value: float

    @property
    def relative_error(self) -> float:
        return abs(self.model_value - self.paper_value) / abs(self.paper_value)

    def within(self, tolerance: float) -> bool:
        return self.relative_error <= tolerance


def anchor_report(calibration: Calibration) -> list[AnchorCheck]:
    """Compare a calibration's analytic anchors with the paper's numbers.

    Only anchors that are closed-form in the calibration are checked
    here; curve-shaped claims (plateaus, crossovers) are validated by
    the experiment suite itself.
    """
    checks = [
        AnchorCheck(
            "single active target rate (stripe count 1, scenario 2 mean)",
            paper_value=1764.0,
            model_value=calibration.pool.aggregate_mib_s(1),
        ),
        AnchorCheck(
            # 32 nodes x 8 ppn x 2 outstanding chunk requests = depth 512.
            "system storage ceiling at 32 nodes (8-target best case ~9000)",
            paper_value=9000.0,
            model_value=calibration.san.capacity_at(512),
        ),
    ]
    if calibration.network_bound:
        checks.append(
            AnchorCheck(
                "balanced two-server peak (scenario 1)",
                paper_value=2200.0,
                model_value=2 * calibration.per_server_network_mib_s,
            )
        )
        checks.append(
            AnchorCheck(
                "single-node client ceiling (scenario 1, 8 ppn)",
                paper_value=880.0,
                model_value=calibration.client.node_capacity(8),
            )
        )
    else:
        checks.append(
            AnchorCheck(
                "single-node client ceiling (scenario 2, 8 ppn)",
                paper_value=1631.5,
                model_value=calibration.client.node_capacity(8),
            )
        )
    return checks


def check_anchors(calibration: Calibration, tolerance: float = 0.10) -> None:
    """Raise if any analytic anchor strays beyond ``tolerance``."""
    for check in anchor_report(calibration):
        if not check.within(tolerance):
            raise AnalysisError(
                f"calibration {calibration.name!r}: anchor {check.name!r} off by "
                f"{check.relative_error:.1%} (paper {check.paper_value}, "
                f"model {check.model_value})"
            )
