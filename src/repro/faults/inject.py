"""Injecting a fault schedule into the capacity layer.

:class:`FaultyCapacity` wraps any capacity provider and scales its
output by the schedule's combined multiplier for that resource at the
segment's evaluation time.  Because the engines evaluate capacities at
the *start* of each piecewise-constant segment and the schedule's
:meth:`~repro.faults.FaultSchedule.boundaries` are added to the segment
breakpoints, the product is exact: no fault transition is ever averaged
into a segment.

The wrapper is only installed for resources the schedule actually
affects, so an empty schedule leaves the capacity graph — and therefore
every simulated byte — untouched.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Mapping

from ..netsim.fluid import CapacityProvider, ResourceContext

if TYPE_CHECKING:  # pragma: no cover
    from ..telemetry.bus import EventBus
    from .schedule import FaultEvent, FaultSchedule

__all__ = ["FaultyCapacity", "wrap_providers", "publish_schedule"]


class FaultyCapacity:
    """A capacity provider throttled by a fault schedule."""

    def __init__(self, inner: CapacityProvider, schedule: "FaultSchedule", resource_id: str):
        self.inner = inner
        self.schedule = schedule
        self.resource_id = resource_id

    @property
    def distinct_tag(self) -> object:
        # Concurrency ramps count distinct *underlying* components, so the
        # wrapper must be transparent to tag-based grouping.
        return getattr(self.inner, "distinct_tag", None)

    def capacity(self, ctx: ResourceContext) -> float:
        return self.inner.capacity(ctx) * self.schedule.multiplier(self.resource_id, ctx.time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultyCapacity({self.inner!r}, resource={self.resource_id!r})"


def wrap_providers(
    providers: Mapping[str, CapacityProvider], schedule: "FaultSchedule"
) -> dict[str, CapacityProvider]:
    """Wrap exactly the providers the schedule affects; share the rest."""
    if schedule.is_empty:
        return dict(providers)
    return {
        rid: FaultyCapacity(provider, schedule, rid) if schedule.affects(rid) else provider
        for rid, provider in providers.items()
    }


def _component(event: "FaultEvent") -> str:
    """The human-stable component label used in fault.* events."""
    if event.target_id is not None:
        return f"target:{event.target_id}"
    if event.server is not None:
        return f"server:{event.server}"
    return str(event.resource_id)


def publish_schedule(schedule: "FaultSchedule", bus: "EventBus") -> None:
    """Emit a run's fault windows as ``fault.trigger``/``fault.clear`` events.

    The schedule is declarative (the whole timeline is known at prepare
    time), so this walks the windows in simulated-time order, emitting a
    trigger at each start and a clear at each finite end, and tracks the
    ``faults.active`` gauge along the way.  Called once per prepared run
    when telemetry is on; a disabled bus or empty schedule is a no-op.
    """
    if schedule.is_empty or not bus.enabled:
        return
    timeline: list[tuple[float, int, int, "FaultEvent"]] = []
    for order, event in enumerate(schedule):
        timeline.append((event.start_s, 0, order, event))
        if math.isfinite(event.end_s):
            timeline.append((event.end_s, 1, order, event))
    active = bus.metrics.gauge("faults.active")
    triggered = bus.metrics.counter("faults.triggered")
    for t, phase, _, event in sorted(timeline, key=lambda item: item[:3]):
        if phase == 0:
            triggered.inc()
            active.inc()
            bus.emit(
                "fault.trigger",
                t=t,
                kind=event.kind.value,
                component=_component(event),
                multiplier=float(event.multiplier),
            )
        else:
            active.dec()
            bus.emit("fault.clear", t=t, kind=event.kind.value, component=_component(event))
