"""Injecting a fault schedule into the capacity layer.

:class:`FaultyCapacity` wraps any capacity provider and scales its
output by the schedule's combined multiplier for that resource at the
segment's evaluation time.  Because the engines evaluate capacities at
the *start* of each piecewise-constant segment and the schedule's
:meth:`~repro.faults.FaultSchedule.boundaries` are added to the segment
breakpoints, the product is exact: no fault transition is ever averaged
into a segment.

The wrapper is only installed for resources the schedule actually
affects, so an empty schedule leaves the capacity graph — and therefore
every simulated byte — untouched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from ..netsim.fluid import CapacityProvider, ResourceContext

if TYPE_CHECKING:  # pragma: no cover
    from .schedule import FaultSchedule

__all__ = ["FaultyCapacity", "wrap_providers"]


class FaultyCapacity:
    """A capacity provider throttled by a fault schedule."""

    def __init__(self, inner: CapacityProvider, schedule: "FaultSchedule", resource_id: str):
        self.inner = inner
        self.schedule = schedule
        self.resource_id = resource_id

    @property
    def distinct_tag(self) -> object:
        # Concurrency ramps count distinct *underlying* components, so the
        # wrapper must be transparent to tag-based grouping.
        return getattr(self.inner, "distinct_tag", None)

    def capacity(self, ctx: ResourceContext) -> float:
        return self.inner.capacity(ctx) * self.schedule.multiplier(self.resource_id, ctx.time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultyCapacity({self.inner!r}, resource={self.resource_id!r})"


def wrap_providers(
    providers: Mapping[str, CapacityProvider], schedule: "FaultSchedule"
) -> dict[str, CapacityProvider]:
    """Wrap exactly the providers the schedule affects; share the rest."""
    if schedule.is_empty:
        return dict(providers)
    return {
        rid: FaultyCapacity(provider, schedule, rid) if schedule.affects(rid) else provider
        for rid, provider in providers.items()
    }
