"""Declarative fault schedules: who fails, when, and how badly.

A :class:`FaultSchedule` is a set of :class:`FaultEvent` windows —
target/server outages, degraded ("limping") targets with a capacity
multiplier, and link degradation or flapping — known up front, exactly
like the injection plans of fault-tolerance experiments.  Engines
consume a schedule two ways:

* as a **capacity timeline**: every affected resource's capacity is
  multiplied by the product of its active events' multipliers, and the
  event boundaries become extra piecewise-constant segment breakpoints
  (the same machinery that handles flow arrivals and noise epochs);
* as **management state**: :meth:`FaultSchedule.apply_to_management`
  marks targets ONLINE/DEGRADED/OFFLINE at a point in time, so the
  choosers allocate around failures (BeeGFS's reachability states).

Schedules are plain data: seeded builders (:meth:`random_target_outages`,
:meth:`flapping_link`) draw starts and durations from distributions
through the package's named seed tree, so campaigns are reproducible.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping, Sequence

from ..errors import FaultError
from ..rng import SeedTree

if TYPE_CHECKING:  # pragma: no cover
    from ..beegfs.management import ManagementService

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultSchedule",
    "target_outage",
    "degraded_target",
    "server_outage",
    "degraded_link",
]


class FaultKind(enum.Enum):
    """What kind of component failure an event models."""

    TARGET_OFFLINE = "target-offline"
    TARGET_DEGRADED = "target-degraded"
    SERVER_OFFLINE = "server-offline"
    LINK_DEGRADED = "link-degraded"


@dataclass(frozen=True)
class FaultEvent:
    """One fault window: a component, a start, a duration, a severity.

    ``multiplier`` scales the affected resources' capacity while the
    event is active: 0 for a hard outage, between 0 and 1 for a limping
    component.  ``duration_s`` may be ``math.inf`` for a permanent
    failure.  Windows are half-open: active for ``start_s <= t < end_s``.
    """

    kind: FaultKind
    start_s: float
    duration_s: float
    target_id: int | None = None
    server: str | None = None
    resource_id: str | None = None
    multiplier: float = 0.0

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise FaultError(f"fault starts before t=0: {self.start_s}")
        if self.duration_s <= 0:
            raise FaultError(f"fault duration must be positive, got {self.duration_s}")
        if not 0.0 <= self.multiplier <= 1.0:
            raise FaultError(f"capacity multiplier must be in [0, 1], got {self.multiplier}")
        if self.kind in (FaultKind.TARGET_OFFLINE, FaultKind.TARGET_DEGRADED):
            if self.target_id is None:
                raise FaultError(f"{self.kind.value} event needs a target_id")
        elif self.kind is FaultKind.SERVER_OFFLINE:
            if self.server is None:
                raise FaultError("server-offline event needs a server name")
        elif self.kind is FaultKind.LINK_DEGRADED:
            if self.resource_id is None:
                raise FaultError("link-degraded event needs a resource_id")
        if self.kind in (FaultKind.TARGET_OFFLINE, FaultKind.SERVER_OFFLINE):
            if self.multiplier != 0.0:
                raise FaultError("hard outages have multiplier 0")
        elif self.multiplier == 0.0:
            raise FaultError(f"{self.kind.value} event needs a multiplier in (0, 1)")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def active_at(self, time: float) -> bool:
        return self.start_s <= time < self.end_s

    @property
    def resources(self) -> tuple[str, ...]:
        """Capacity-provider resource ids this event throttles."""
        if self.kind in (FaultKind.TARGET_OFFLINE, FaultKind.TARGET_DEGRADED):
            return (f"ost:{self.target_id}",)
        if self.kind is FaultKind.SERVER_OFFLINE:
            return (f"ingest:{self.server}", f"pool:{self.server}")
        return (str(self.resource_id),)

    def describe(self) -> str:
        component = (
            f"target {self.target_id}"
            if self.target_id is not None
            else (f"server {self.server}" if self.server is not None else str(self.resource_id))
        )
        window = "permanently" if math.isinf(self.duration_s) else f"for {self.duration_s:g}s"
        return f"{self.kind.value} of {component} at t={self.start_s:g}s {window}"

    # -- serialization -------------------------------------------------------------
    # Permanent faults have an infinite duration, which JSON cannot carry
    # as a number: it round-trips as the string "inf".

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "kind": self.kind.value,
            "start_s": float(self.start_s),
            "duration_s": "inf" if math.isinf(self.duration_s) else float(self.duration_s),
            "target_id": self.target_id,
            "server": self.server,
            "resource_id": self.resource_id,
            "multiplier": float(self.multiplier),
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "FaultEvent":
        duration = data["duration_s"]
        return cls(
            kind=FaultKind(data["kind"]),
            start_s=float(data["start_s"]),
            duration_s=math.inf if duration == "inf" else float(duration),
            target_id=None if data.get("target_id") is None else int(data["target_id"]),
            server=data.get("server"),
            resource_id=data.get("resource_id"),
            multiplier=float(data.get("multiplier", 0.0)),
        )


def target_outage(target_id: int, start_s: float, duration_s: float = math.inf) -> FaultEvent:
    """A storage target becomes unreachable (Offline)."""
    return FaultEvent(FaultKind.TARGET_OFFLINE, start_s, duration_s, target_id=target_id)


def degraded_target(
    target_id: int, start_s: float, duration_s: float, multiplier: float
) -> FaultEvent:
    """A limping target: still reachable, at a fraction of its rate."""
    return FaultEvent(
        FaultKind.TARGET_DEGRADED, start_s, duration_s, target_id=target_id, multiplier=multiplier
    )


def server_outage(server: str, start_s: float, duration_s: float = math.inf) -> FaultEvent:
    """A whole storage server (ingest + pool) becomes unreachable."""
    return FaultEvent(FaultKind.SERVER_OFFLINE, start_s, duration_s, server=server)


def degraded_link(
    resource_id: str, start_s: float, duration_s: float, multiplier: float
) -> FaultEvent:
    """A network link runs at a fraction of its capacity."""
    return FaultEvent(
        FaultKind.LINK_DEGRADED, start_s, duration_s, resource_id=resource_id, multiplier=multiplier
    )


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable collection of fault windows with timeline queries."""

    events: tuple[FaultEvent, ...] = ()

    def __init__(self, events: Iterable[FaultEvent] = ()):
        object.__setattr__(self, "events", tuple(events))
        by_resource: dict[str, list[FaultEvent]] = {}
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise FaultError(f"not a FaultEvent: {event!r}")
            for rid in event.resources:
                by_resource.setdefault(rid, []).append(event)
        object.__setattr__(self, "_by_resource", by_resource)

    _by_resource: dict[str, list[FaultEvent]] = field(
        default_factory=dict, repr=False, compare=False
    )

    # -- basic queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    @property
    def is_empty(self) -> bool:
        return not self.events

    def affects(self, resource_id: str) -> bool:
        return resource_id in self._by_resource

    def events_for(self, resource_id: str) -> tuple[FaultEvent, ...]:
        return tuple(self._by_resource.get(resource_id, ()))

    # -- the capacity timeline ---------------------------------------------------

    def multiplier(self, resource_id: str, time: float) -> float:
        """Combined capacity multiplier of a resource at a point in time."""
        out = 1.0
        for event in self._by_resource.get(resource_id, ()):
            if event.active_at(time):
                out *= event.multiplier
        return out

    def boundaries(self) -> tuple[float, ...]:
        """Every finite instant at which some capacity changes, sorted.

        These are the extra segment breakpoints the piecewise-constant
        engines integrate across, so a capacity is never averaged over
        a fault transition.
        """
        times = set()
        for event in self.events:
            times.add(event.start_s)
            if math.isfinite(event.end_s):
                times.add(event.end_s)
        return tuple(sorted(times))

    # -- the management view ------------------------------------------------------

    def offline_target_ids(self, management: "ManagementService", time: float) -> set[int]:
        """Targets unreachable at ``time`` (direct or via their server)."""
        out: set[int] = set()
        for event in self.events:
            if not event.active_at(time):
                continue
            if event.kind is FaultKind.TARGET_OFFLINE:
                out.add(int(event.target_id))  # type: ignore[arg-type]
            elif event.kind is FaultKind.SERVER_OFFLINE:
                out.update(t.target_id for t in management.targets(server=event.server))
        return out

    def degraded_target_ids(self, time: float) -> set[int]:
        return {
            int(e.target_id)  # type: ignore[arg-type]
            for e in self.events
            if e.kind is FaultKind.TARGET_DEGRADED and e.active_at(time)
        }

    def apply_to_management(self, management: "ManagementService", time: float = 0.0) -> None:
        """Set every target's reachability state as of ``time``.

        Resets all targets to ONLINE first, then applies the active
        events, so the same schedule can be replayed at any instant
        (recovery included).  Unknown targets or servers raise
        :class:`~repro.errors.NoSuchEntityError` — a schedule must match
        its deployment.
        """
        from ..beegfs.management import TargetState

        for info in management.targets():
            info.state = TargetState.ONLINE
        for tid in self.degraded_target_ids(time):
            management.set_state(tid, TargetState.DEGRADED)
        for tid in self.offline_target_ids(management, time):
            management.set_state(tid, TargetState.OFFLINE)

    # -- seeded builders ----------------------------------------------------------

    @classmethod
    def random_target_outages(
        cls,
        target_ids: Sequence[int],
        *,
        horizon_s: float,
        mtbf_s: float,
        mttr_s: float,
        seed: int = 0,
    ) -> "FaultSchedule":
        """Exponential failure/repair processes per target, seeded.

        Each target alternates up (mean ``mtbf_s``) and down (mean
        ``mttr_s``) exponentially-distributed intervals over
        ``[0, horizon_s)`` — the classic renewal model of long, noisy
        measurement campaigns.
        """
        if horizon_s <= 0 or mtbf_s <= 0 or mttr_s <= 0:
            raise FaultError("horizon, MTBF and MTTR must be positive")
        rng = SeedTree(seed).rng("fault-schedule")
        events = []
        for tid in target_ids:
            t = float(rng.exponential(mtbf_s))
            while t < horizon_s:
                duration = max(float(rng.exponential(mttr_s)), 1e-6)
                events.append(target_outage(int(tid), t, duration))
                t += duration + float(rng.exponential(mtbf_s))
        return cls(events)

    @classmethod
    def flapping_link(
        cls,
        resource_id: str,
        *,
        horizon_s: float,
        period_s: float,
        down_fraction: float,
        multiplier: float,
        start_s: float = 0.0,
    ) -> "FaultSchedule":
        """A periodically degrading link: down ``down_fraction`` of each period."""
        if horizon_s <= 0 or period_s <= 0:
            raise FaultError("horizon and period must be positive")
        if not 0.0 < down_fraction < 1.0:
            raise FaultError("down_fraction must be in (0, 1)")
        events = []
        t = start_s
        while t < horizon_s:
            events.append(degraded_link(resource_id, t, down_fraction * period_s, multiplier))
            t += period_s
        return cls(events)

    def describe(self) -> str:
        if self.is_empty:
            return "no faults"
        return "; ".join(e.describe() for e in self.events)

    # -- serialization -------------------------------------------------------------

    def to_jsonable(self) -> list[dict[str, Any]]:
        return [event.to_jsonable() for event in self.events]

    @classmethod
    def from_jsonable(cls, data: Iterable[Mapping[str, Any]]) -> "FaultSchedule":
        return cls(FaultEvent.from_jsonable(item) for item in data)
