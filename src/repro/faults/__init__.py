"""Fault injection and degraded-mode operation.

Declarative, seeded fault schedules (target/server outages, limping
targets, degraded links) consumed by the engines as capacity-timeline
events and by the management service as target reachability states —
the machinery behind the reproduction's robustness experiments: what
happens to allocation balance and bandwidth when targets die
mid-campaign?
"""

from .schedule import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    degraded_link,
    degraded_target,
    server_outage,
    target_outage,
)
from .inject import FaultyCapacity, publish_schedule, wrap_providers

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultSchedule",
    "target_outage",
    "degraded_target",
    "server_outage",
    "degraded_link",
    "FaultyCapacity",
    "wrap_providers",
    "publish_schedule",
]
