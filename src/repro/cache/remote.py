"""The remote tier: read-through / write-behind against ``repro serve``.

A ``repro serve`` instance already owns a disk tier (its result cache);
two new frames in the length-prefixed wire protocol let any client use
it as a shared warm tier:

* ``cache-get {keys: [[fingerprint, engine, rep], ...], model_revision}``
  answered by ``cache-entries {entries: [...]}`` — whole validated
  entries for the keys the server holds, absent keys simply missing;
* ``cache-put {entry}`` answered by ``cache-ok {stored}``.

Reads are synchronous (a miss must be known before the run executes)
and batched: ``lookup_many`` ships up to :data:`MAX_KEYS_PER_FRAME`
keys per frame over one persistent connection.  Writes are
**write-behind**: ``store_entry`` enqueues and returns; a daemon thread
drains the queue so a slow or dead server never sits on the campaign's
critical path.  ``flush()`` exists for tests and CI equivalence jobs
that need the queue drained at a barrier.

Every transport or protocol failure is normalized to ``OSError`` — the
:class:`~repro.cache.tiered.TieredCache` treats a remote fault exactly
like a disk fault on any other tier: strike the tier's circuit breaker
and degrade, never fail the run.
"""

from __future__ import annotations

import collections
import socket
import threading
from typing import Any, Mapping

from ..errors import ConfigError, ProtocolError
from ..scenario import MODEL_REVISION, ScenarioSpec
from .tier import EntryKey, validate_entry

__all__ = ["RemoteTier", "MAX_KEYS_PER_FRAME", "parse_address"]

# Bound on keys per cache-get frame (both sides enforce it): ~128
# entries of tens of KiB keeps a reply comfortably under the 64 MiB
# frame cap while amortizing round-trips across a campaign's backlog.
MAX_KEYS_PER_FRAME = 128


def parse_address(address: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` (the CLI's --cache-remote)."""
    host, sep, port = str(address).rpartition(":")
    if not sep or not host:
        raise ConfigError(f"cache remote must be host:port, got {address!r}")
    try:
        return host, int(port)
    except ValueError as exc:
        raise ConfigError(f"bad cache remote port in {address!r}") from exc


class RemoteTier:
    """One shared warm tier behind a ``repro serve`` endpoint."""

    name = "remote"

    def __init__(self, host: str, port: int, timeout_s: float = 5.0):
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self._io_lock = threading.Lock()
        self._sock: socket.socket | None = None
        # Write-behind machinery: puts queue here; one daemon thread
        # drains.  put_errors counts entries dropped after a send
        # failure (write-behind is best-effort by design).
        self._queue: collections.deque[dict[str, Any]] = collections.deque()
        self._queue_cv = threading.Condition()
        self._inflight = 0
        self._flusher: threading.Thread | None = None
        self._closed = False
        self.put_errors = 0
        self.puts = 0

    @classmethod
    def from_address(cls, address: str, timeout_s: float = 5.0) -> "RemoteTier":
        host, port = parse_address(address)
        return cls(host, port, timeout_s=timeout_s)

    # -- transport ---------------------------------------------------------

    def _connected(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
            sock.settimeout(self.timeout_s)
            self._sock = sock
        return self._sock

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _roundtrip(self, msg: dict[str, Any]) -> dict[str, Any]:
        """One request/response over the persistent connection.

        Any defect — reset, torn frame, protocol garbage, an ``error``
        frame — drops the connection and raises ``OSError`` so the
        composite's breaker accounting sees one uniform failure shape.
        """
        from ..server.protocol import check_version, recv_frame, send_frame

        with self._io_lock:
            try:
                sock = self._connected()
                send_frame(sock, msg)
                reply = recv_frame(sock)
            except ProtocolError as exc:
                self._drop_connection()
                raise ConnectionError(f"remote cache protocol error: {exc}") from exc
            except OSError:
                self._drop_connection()
                raise
            if reply is None:
                self._drop_connection()
                raise ConnectionError("remote cache closed the connection")
            try:
                check_version(reply)
            except ProtocolError as exc:
                self._drop_connection()
                raise ConnectionError(str(exc)) from exc
            if reply.get("type") == "error":
                self._drop_connection()
                raise ConnectionError(
                    f"remote cache error: {reply.get('message', reply.get('error'))}"
                )
            return reply

    # -- reads (read-through) ----------------------------------------------

    def lookup_keys(self, keys: "list[EntryKey]") -> dict[EntryKey, dict[str, Any]]:
        """Fetch entries for ``keys``; absent keys are misses.

        Raises ``OSError`` on transport failure.  Replies are validated
        entry by entry: a peer returning garbage (or entries for keys we
        never asked about) contributes nothing.
        """
        from ..server.protocol import message

        wanted = {(str(fp), str(eng), int(rep)) for fp, eng, rep in keys}
        out: dict[EntryKey, dict[str, Any]] = {}
        todo = sorted(wanted)
        for i in range(0, len(todo), MAX_KEYS_PER_FRAME):
            chunk = todo[i : i + MAX_KEYS_PER_FRAME]
            reply = self._roundtrip(
                message(
                    "cache-get",
                    keys=[[fp, eng, rep] for fp, eng, rep in chunk],
                    model_revision=MODEL_REVISION,
                )
            )
            if reply.get("type") != "cache-entries":
                raise ConnectionError(
                    f"unexpected reply {reply.get('type')!r} to cache-get"
                )
            for entry in reply.get("entries") or ():
                if not validate_entry(entry, model_revision=MODEL_REVISION):
                    continue
                key = (entry["fingerprint"], entry["engine"], int(entry["rep"]))
                if key in wanted:
                    out[key] = entry
        return out

    def lookup(self, spec: ScenarioSpec, rep: int) -> dict[str, Any] | None:
        key: EntryKey = (spec.fingerprint, spec.engine, int(rep))
        return self.lookup_keys([key]).get(key)

    def lookup_many(
        self, jobs: "list[tuple[ScenarioSpec, int]]"
    ) -> dict[EntryKey, dict[str, Any]]:
        keys = [(spec.fingerprint, spec.engine, int(rep)) for spec, rep in jobs]
        return self.lookup_keys(keys)

    # -- writes (write-behind) ---------------------------------------------

    def store_entry(self, entry: Mapping[str, Any]) -> None:
        """Enqueue one entry for background upload (never blocks on I/O)."""
        if not validate_entry(entry, model_revision=MODEL_REVISION):
            return
        with self._queue_cv:
            if self._closed:
                return
            self._queue.append(dict(entry))
            if self._flusher is None or not self._flusher.is_alive():
                self._flusher = threading.Thread(
                    target=self._flush_loop, name="repro-cache-put", daemon=True
                )
                self._flusher.start()
            self._queue_cv.notify_all()

    def _flush_loop(self) -> None:
        from ..server.protocol import message

        while True:
            with self._queue_cv:
                while not self._queue and not self._closed:
                    self._queue_cv.wait(timeout=0.5)
                if self._closed and not self._queue:
                    return
                entry = self._queue.popleft()
                self._inflight += 1
            try:
                reply = self._roundtrip(message("cache-put", entry=entry))
                stored = reply.get("type") == "cache-ok" and bool(reply.get("stored"))
            except OSError:
                stored = False
            with self._queue_cv:
                self._inflight -= 1
                if stored:
                    self.puts += 1
                else:
                    # Best-effort write-behind: the entry is already
                    # durable on the local disk tier; drop, count, move on.
                    self.put_errors += 1
                self._queue_cv.notify_all()

    def flush(self, timeout: float = 10.0) -> bool:
        """Block until the write-behind queue drains (tests, CI barriers)."""
        import time

        deadline = time.monotonic() + timeout
        with self._queue_cv:
            while self._queue or self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._queue_cv.wait(timeout=remaining)
        return True

    # -- bookkeeping -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._queue_cv:
            return {
                "address": f"{self.host}:{self.port}",
                "pending_puts": len(self._queue) + self._inflight,
                "puts": self.puts,
                "put_errors": self.put_errors,
            }

    def gc(self, max_bytes: int, dry_run: bool = False) -> dict[str, int]:
        raise ConfigError(
            "the remote tier cannot be gc'd from a client; run "
            "'repro cache gc' on the serving host"
        )

    def close(self) -> None:
        with self._queue_cv:
            self._closed = True
            self._queue_cv.notify_all()
        flusher = self._flusher
        if flusher is not None and flusher.is_alive():
            flusher.join(timeout=2.0)
        with self._io_lock:
            self._drop_connection()
