"""The in-process hot tier: a bounded LRU of decoded cache entries.

The index is resident (Haystack's metadata-in-memory pattern): a hit is
one ``OrderedDict`` lookup returning the already-decoded entry dict —
no ``scandir``, no ``open``, no JSON decode.  Entries are admitted on
store and on promotion from a slower tier, *after* the disk tier has
made them durable, so the hot tier never holds a result the tier of
record does not.

Bounded two ways: entry count and approximate resident bytes (the
JSON-encoded size, measured once at admission).  Eviction is true LRU —
every hit moves the entry to the back of the queue.

Thread-safe: the server's worker threads and the parallel runner's
parent share one tier per cache root.  Entries are handed out by
reference and must be treated as immutable (the replay path only
reads).
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Any, Mapping

from ..errors import ConfigError
from ..scenario import MODEL_REVISION, ScenarioSpec
from .tier import EntryKey, validate_entry

__all__ = ["MemoryTier"]

# Defaults: campaigns sweep hundreds of (spec, rep) pairs of tens of
# KiB each; 1024 entries / 256 MiB holds a full figure's worth of
# results while bounding a long-lived server's footprint.
_DEFAULT_MAX_ENTRIES = 1024
_DEFAULT_MAX_BYTES = 256 * 1024 * 1024


class MemoryTier:
    """A bounded, thread-safe LRU over decoded cache entries."""

    name = "memory"

    def __init__(
        self,
        max_entries: int = _DEFAULT_MAX_ENTRIES,
        max_bytes: int = _DEFAULT_MAX_BYTES,
    ):
        if max_entries < 1:
            raise ConfigError("memory tier max_entries must be >= 1")
        if max_bytes < 1:
            raise ConfigError("memory tier max_bytes must be >= 1")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        # key -> (entry, approx bytes); insertion order is recency order.
        self._entries: "OrderedDict[EntryKey, tuple[dict[str, Any], int]]" = (
            OrderedDict()
        )
        self._bytes = 0

    @staticmethod
    def _key(spec: ScenarioSpec, rep: int) -> EntryKey:
        return (spec.fingerprint, spec.engine, int(rep))

    def lookup(self, spec: ScenarioSpec, rep: int) -> dict[str, Any] | None:
        with self._lock:
            item = self._entries.get(self._key(spec, rep))
            if item is None:
                return None
            self._entries.move_to_end(self._key(spec, rep))
            return item[0]

    def lookup_many(
        self, jobs: "list[tuple[ScenarioSpec, int]]"
    ) -> dict[EntryKey, dict[str, Any]]:
        out: dict[EntryKey, dict[str, Any]] = {}
        with self._lock:
            for spec, rep in jobs:
                key = self._key(spec, rep)
                item = self._entries.get(key)
                if item is not None and key not in out:
                    self._entries.move_to_end(key)
                    out[key] = item[0]
        return out

    def store_entry(self, entry: Mapping[str, Any]) -> None:
        """Admit one entry (idempotent; silently rejects malformed ones).

        The current model revision is enforced at admission, so a key
        never aliases an entry computed by different simulator
        behaviour.
        """
        if not validate_entry(entry, model_revision=MODEL_REVISION):
            return
        key: EntryKey = (entry["fingerprint"], entry["engine"], int(entry["rep"]))
        size = len(json.dumps(entry, separators=(",", ":")))
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (dict(entry), size)
            self._bytes += size
            self._evict_over_budget()

    def _evict_over_budget(self) -> None:
        while len(self._entries) > self.max_entries or (
            self._bytes > self.max_bytes and self._entries
        ):
            _, (_, size) = self._entries.popitem(last=False)
            self._bytes -= size

    def drop(self, spec: ScenarioSpec, rep: int) -> None:
        with self._lock:
            item = self._entries.pop(self._key(spec, rep), None)
            if item is not None:
                self._bytes -= item[1]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
            }

    def gc(self, max_bytes: int, dry_run: bool = False) -> dict[str, int]:
        """Evict LRU-first until resident bytes fit ``max_bytes``."""
        if max_bytes < 0:
            raise ConfigError(f"max_bytes must be >= 0, got {max_bytes}")
        with self._lock:
            scanned = len(self._entries)
            total = self._bytes
            evicted = 0
            freed = 0
            if not dry_run:
                while self._bytes > max_bytes and self._entries:
                    _, (_, size) = self._entries.popitem(last=False)
                    self._bytes -= size
                    evicted += 1
                    freed += size
            else:
                running = total
                for _, size in self._entries.values():
                    if running <= max_bytes:
                        break
                    running -= size
                    evicted += 1
                    freed += size
            return {
                "scanned": scanned,
                "evicted": evicted,
                "freed_bytes": freed,
                "remaining_bytes": total - freed,
                "dry_run": bool(dry_run),
            }
