"""The durable on-disk tier: today's ``ResultCache``, now the tier of record.

Layout, atomic writes, header validation and size-bounded GC are
preserved byte-for-byte from the original ``repro.service.ResultCache``
(which re-exports this class for compatibility).  Two behaviours are
new:

* **touch-on-hit** — a validated load best-effort bumps the entry's
  mtime, so ``gc``'s oldest-mtime-first ordering is true LRU instead of
  FIFO (before this, nothing ever touched mtime after the write);
* **corrupt-entry quarantine** — an entry that fails JSON decoding is
  renamed to ``<entry>.corrupt`` (best-effort) and reported through the
  ``on_corrupt`` hook, instead of being re-read and re-failed on every
  future lookup.  Quarantined files are still counted and evictable by
  ``gc``.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Mapping

from ..errors import ConfigError
from ..orchestrator.journal import fsync_dir
from ..scenario import MODEL_REVISION, ScenarioSpec
from ..telemetry.bus import get_bus
from .tier import (
    CACHE_SCHEMA,
    EntryKey,
    make_entry,
    safe_fingerprint,
    safe_token,
    validate_entry,
)

__all__ = ["ResultCache", "DiskTier", "default_cache_dir"]


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/beegfs-repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "beegfs-repro"


class ResultCache:
    """Content-addressed on-disk store of simulated run results.

    Layout: ``<root>/<fp[:2]>/<fp>/<engine>-m<model_revision>-r<rep>.json``
    where ``fp`` is the spec's behaviour fingerprint.  Entries are JSON
    with the full spec embedded, so an entry is self-describing (and a
    fingerprint collision with a *different* spec would be detectable).
    Writes are atomic (same-directory tempfile + ``os.replace``), so
    concurrent campaigns over one cache directory cannot corrupt it.

    ``on_corrupt`` (when set) is called with the path of every entry
    quarantined after a decode failure — the service hooks its
    ``corrupt`` tally here without this module importing the service.
    """

    name = "disk"

    def __init__(
        self,
        root: str | Path | None = None,
        on_corrupt: Callable[[Path], None] | None = None,
    ):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.on_corrupt = on_corrupt

    def path_for(self, spec: ScenarioSpec, rep: int) -> Path:
        fp = spec.fingerprint
        return self.root / fp[:2] / fp / f"{spec.engine}-m{MODEL_REVISION}-r{int(rep)}.json"

    def path_for_key(
        self, fingerprint: str, engine: str, rep: int, model_revision: int | None = None
    ) -> Path:
        """The entry path for a bare key (spec-less remote lookups).

        Raises :class:`ConfigError` on a fingerprint or engine that is
        not path-safe — keys arriving over the wire must never be able
        to address outside the cache root.
        """
        fp = safe_fingerprint(fingerprint)
        eng = safe_token(engine)
        if fp is None or eng is None:
            raise ConfigError(
                f"unsafe cache key ({fingerprint!r}, {engine!r}, {rep!r})"
            )
        rev = MODEL_REVISION if model_revision is None else int(model_revision)
        return self.root / fp[:2] / fp / f"{eng}-m{rev}-r{int(rep)}.json"

    def _quarantine(self, path: Path) -> None:
        """Sideline an undecodable entry as ``<entry>.corrupt`` (best effort)."""
        try:
            path.rename(path.with_name(path.name + ".corrupt"))
        except OSError:
            return
        if self.on_corrupt is not None:
            self.on_corrupt(path)

    def _read_validated(self, path: Path, **expect: Any) -> dict[str, Any] | None:
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        try:
            entry = json.loads(text)
        except json.JSONDecodeError:
            self._quarantine(path)
            return None
        if not validate_entry(entry, **expect):
            return None
        # Touch-on-hit (best effort): gc evicts oldest-mtime-first, so a
        # read must refresh the entry or eviction degenerates to FIFO.
        try:
            os.utime(path)
        except OSError:
            pass
        return entry

    def load(self, spec: ScenarioSpec, rep: int) -> dict[str, Any] | None:
        """The entry for (spec, rep), or ``None`` on a miss or corruption.

        A missing file is a normal miss; a torn/garbled entry is
        quarantined and degrades to a miss (the run simply re-executes).
        Any *other* ``OSError`` — dead mount, permission loss,
        not-a-directory — propagates so the service can count it against
        the cache circuit breaker.
        """
        return self._read_validated(
            self.path_for(spec, rep),
            fingerprint=spec.fingerprint,
            engine=spec.engine,
            rep=int(rep),
        )

    def load_key(
        self, fingerprint: str, engine: str, rep: int, model_revision: int | None = None
    ) -> dict[str, Any] | None:
        """Like :meth:`load` but addressed by bare key (the server's path)."""
        fp = safe_fingerprint(fingerprint)
        eng = safe_token(engine)
        if fp is None or eng is None:
            return None
        return self._read_validated(
            self.path_for_key(fp, eng, rep, model_revision),
            fingerprint=fp,
            engine=eng,
            rep=int(rep),
            model_revision=model_revision,
        )

    def load_many(
        self, jobs: "list[tuple[ScenarioSpec, int]]"
    ) -> dict[EntryKey, dict[str, Any]]:
        """Bulk lookup: load every hit among ``jobs`` in one pass.

        Jobs are grouped by fingerprint and each fingerprint directory
        is scanned **once** (one ``scandir`` replaces a failed ``open``
        per missing rep), visiting directories in sorted order.  I/O
        errors leave the affected jobs misses — the bulk path is
        opportunistic; breaker accounting stays on the per-run path.
        """
        out: dict[EntryKey, dict[str, Any]] = {}
        by_fp: dict[str, list[tuple[ScenarioSpec, int]]] = {}
        for spec, rep in jobs:
            by_fp.setdefault(spec.fingerprint, []).append((spec, int(rep)))
        for fp in sorted(by_fp):
            probe = by_fp[fp][0][0]
            try:
                names = {e.name for e in os.scandir(self.path_for(probe, 0).parent)}
            except OSError:
                continue
            for spec, rep in sorted(by_fp[fp], key=lambda job: job[1]):
                key = (spec.fingerprint, spec.engine, rep)
                if key in out or self.path_for(spec, rep).name not in names:
                    continue
                try:
                    entry = self.load(spec, rep)
                except OSError:
                    continue
                if entry is not None:
                    out[key] = entry
        return out

    def store_entry(self, entry: Mapping[str, Any]) -> Path:
        """Atomically persist one validated entry at its canonical path."""
        if not validate_entry(entry, model_revision=entry.get("model_revision")):
            raise ConfigError("malformed cache entry")
        path = self.path_for_key(
            entry["fingerprint"], entry["engine"], entry["rep"], entry["model_revision"]
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(dict(entry), handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            # The rename itself must survive a crash: sync the directory.
            fsync_dir(path.parent)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def store(
        self,
        spec: ScenarioSpec,
        rep: int,
        result: Any,
        events: list[dict[str, Any]],
    ) -> Path:
        return self.store_entry(make_entry(spec, rep, result, events))

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*/*.json"))

    def _scan(self) -> list[tuple[float, int, Path]]:
        """(mtime, size, path) of every entry, quarantined files included."""
        files: list[tuple[float, int, Path]] = []
        if self.root.is_dir():
            for pattern in ("*/*/*.json", "*/*/*.json.corrupt"):
                for path in self.root.glob(pattern):
                    try:
                        st = path.stat()
                    except OSError:
                        continue
                    files.append((st.st_mtime, st.st_size, path))
        return files

    def stats(self) -> dict[str, Any]:
        files = self._scan()
        return {
            "entries": len(self),
            "bytes": sum(size for _, size, _ in files),
            "corrupt": sum(1 for _, _, p in files if p.name.endswith(".corrupt")),
            "root": str(self.root),
        }

    def gc(self, max_bytes: int, dry_run: bool = False) -> dict[str, int]:
        """Evict entries, oldest mtime first, until the cache fits.

        LRU-by-mtime: loads touch mtime (touch-on-hit), so eviction
        order reflects real access recency.  Emptied fingerprint
        directories are pruned.  Returns a summary and emits a
        ``cache.gc`` event plus the ``service.cache.evicted`` counter.

        ``dry_run=True`` deletes nothing: the summary reports what a
        real pass *would* evict (and no event or counter is emitted,
        since nothing happened).
        """
        if max_bytes < 0:
            raise ConfigError(f"max_bytes must be >= 0, got {max_bytes}")
        files = self._scan()
        files.sort(key=lambda item: (item[0], str(item[2])))
        total = sum(size for _, size, _ in files)
        evicted = 0
        freed = 0
        for _, size, path in files:
            if total - freed <= max_bytes:
                break
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    continue
            evicted += 1
            freed += size
        if evicted and not dry_run:
            for depth in ("*/*", "*"):
                for directory in self.root.glob(depth):
                    try:
                        directory.rmdir()
                    except OSError:
                        pass  # not empty (or gone already)
        summary = {
            "scanned": len(files),
            "evicted": evicted,
            "freed_bytes": freed,
            "remaining_bytes": total - freed,
            "dry_run": bool(dry_run),
        }
        if dry_run:
            return summary
        bus = get_bus()
        if bus.enabled:
            bus.metrics.counter("service.cache.evicted").inc(evicted)
            bus.emit(
                "cache.gc",
                evicted=evicted,
                freed_bytes=freed,
                remaining_bytes=total - freed,
            )
        return summary


class DiskTier:
    """The :class:`CacheTier` face of a :class:`ResultCache`.

    A thin adapter: the store itself predates the tier interface and is
    used directly by the server and CLI; this wrapper is what the
    :class:`~repro.cache.tiered.TieredCache` composes.
    """

    name = "disk"

    def __init__(self, store: ResultCache):
        self.store = store

    def lookup(self, spec: ScenarioSpec, rep: int) -> dict[str, Any] | None:
        return self.store.load(spec, rep)

    def lookup_many(
        self, jobs: "list[tuple[ScenarioSpec, int]]"
    ) -> dict[EntryKey, dict[str, Any]]:
        return self.store.load_many(jobs)

    def store_entry(self, entry: Mapping[str, Any]) -> None:
        self.store.store_entry(entry)

    def stats(self) -> dict[str, Any]:
        return self.store.stats()

    def gc(self, max_bytes: int, dry_run: bool = False) -> dict[str, int]:
        return self.store.gc(max_bytes, dry_run=dry_run)
