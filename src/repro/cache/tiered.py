"""The tier composite: memory → disk → remote, promotion and degradation.

Lookup walks the tiers fast → slow.  A hit in a slower tier is promoted
into every faster tier on the way out; a miss falls through.  Stores
write the disk tier **first** — it is the tier of record, and an
``OSError`` there propagates to the service's breaker/tally accounting
exactly as it did before tiering existed — then admit the entry to the
memory tier and enqueue the write-behind remote put.

Degradation is per tier:

* the **disk** tier's breaker is owned by the service (it predates this
  package): while it is open the service runs cache-off entirely, so
  the composite never sees a lookup — an unreadable tier of record
  means results cannot be made durable, and serving hot hits anyway
  would diverge the tallies chaos asserts on;
* the **remote** tier has its own breaker, owned here: a transport
  fault counts one ``error`` probe, strikes the breaker, and the lookup
  degrades to a local miss.  While open, probes are skipped
  (``degraded``) until the cooldown's half-open probe.  Remote faults
  never propagate.
* the **memory** tier cannot fault (it is a dict); it needs no breaker.

The module-level :func:`tier_stats` tally counts per-tier *probes*
(hit / miss / error / degraded) — diagnostic, per-process, and distinct
from the authoritative per-run ``service.cache`` tally that cold/warm
equivalence is asserted against.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..orchestrator.supervise import CircuitBreaker
from ..scenario import ScenarioSpec
from ..telemetry.bus import get_bus
from .disk import ResultCache
from .memory import MemoryTier
from .remote import RemoteTier
from .tier import EntryKey, make_entry

__all__ = ["TieredCache", "tier_stats", "reset_tier_stats"]

_TIER_NAMES = ("memory", "disk", "remote")
_TALLY_KEYS = ("hit", "miss", "error", "degraded")

_TIER_STATS: dict[str, dict[str, int]] = {
    tier: {key: 0 for key in _TALLY_KEYS} for tier in _TIER_NAMES
}


def tier_stats() -> dict[str, dict[str, int]]:
    """Per-tier probe tallies for this process (see module doc)."""
    return {tier: dict(counts) for tier, counts in _TIER_STATS.items()}


def reset_tier_stats() -> None:
    for counts in _TIER_STATS.values():
        for key in counts:
            counts[key] = 0


def _tick(tier: str, status: str) -> None:
    _TIER_STATS[tier][status] = _TIER_STATS[tier].get(status, 0) + 1
    get_bus().metrics.counter("service.cache.tier", tier=tier, status=status).inc()


class TieredCache:
    """One composed view over (memory, disk, remote) for one cache root.

    Cheap to construct per call: the tiers themselves (and the remote
    breaker) are persistent, service-owned state; this object only
    binds them together, mirroring how the service always built a fresh
    ``ResultCache`` per run.
    """

    def __init__(
        self,
        disk: ResultCache,
        memory: MemoryTier | None = None,
        remote: RemoteTier | None = None,
        remote_breaker: CircuitBreaker | None = None,
    ):
        self.disk = disk
        self.memory = memory
        self.remote = remote
        self.remote_breaker = remote_breaker or CircuitBreaker()

    # -- degradation plumbing ----------------------------------------------

    def _emit_tier(self, bus: Any, status: str) -> None:
        if bus.enabled:
            bus.emit("cache.tier", tier="remote", status=status)

    def _drain_remote_breaker(self, bus: Any) -> None:
        for state, failures in self.remote_breaker.drain_transitions():
            if bus.enabled:
                bus.emit(
                    "orchestrator.breaker",
                    state=state,
                    failures=failures,
                    tier="remote",
                )

    def _remote_fault(self, bus: Any) -> None:
        _tick("remote", "error")
        self.remote_breaker.record_failure()
        self._emit_tier(bus, "error")
        self._drain_remote_breaker(bus)

    def _backfill_disk(self, entry: Mapping[str, Any]) -> None:
        """Make a remote hit durable locally (best effort).

        A failing local disk during a remote *read* must not lose the
        run — the entry is still served; the next per-run disk probe
        will surface the disk fault to the service's breaker.
        """
        try:
            self.disk.store_entry(entry)
        except OSError:
            pass

    # -- the tier walk -----------------------------------------------------

    def lookup(self, spec: ScenarioSpec, rep: int) -> dict[str, Any] | None:
        """The entry for (spec, rep) from the fastest tier that holds it.

        Disk ``OSError`` propagates (the service counts it and strikes
        its breaker, unchanged).  Remote faults degrade to a miss.
        """
        bus = get_bus()
        if self.memory is not None:
            entry = self.memory.lookup(spec, rep)
            if entry is not None:
                _tick("memory", "hit")
                return entry
            _tick("memory", "miss")

        entry = self.disk.load(spec, rep)
        if entry is not None:
            _tick("disk", "hit")
            if self.memory is not None:
                self.memory.store_entry(entry)
            return entry
        _tick("disk", "miss")

        if self.remote is None:
            return None
        if not self.remote_breaker.allow():
            _tick("remote", "degraded")
            self._emit_tier(bus, "degraded")
            return None
        try:
            entry = self.remote.lookup(spec, rep)
        except OSError:
            self._remote_fault(bus)
            return None
        self.remote_breaker.record_success()
        self._drain_remote_breaker(bus)
        if entry is None:
            _tick("remote", "miss")
            return None
        _tick("remote", "hit")
        self._backfill_disk(entry)
        if self.memory is not None:
            self.memory.store_entry(entry)
        return entry

    def lookup_many(
        self, jobs: "list[tuple[ScenarioSpec, int]]"
    ) -> dict[EntryKey, dict[str, Any]]:
        """Bulk lookup across the tiers (the prefetch path).

        Memory answers first; the remainder goes through the disk
        tier's one-scandir-per-fingerprint bulk pass; what is still
        missing is fetched from the remote tier in batched frames and
        back-filled.  Like the original bulk path, I/O errors leave
        jobs as misses — authoritative breaker/tally accounting stays
        per-run.
        """
        bus = get_bus()
        out: dict[EntryKey, dict[str, Any]] = {}
        pending = [(spec, int(rep)) for spec, rep in jobs]
        if self.memory is not None and pending:
            hits = self.memory.lookup_many(pending)
            for key, entry in hits.items():
                _tick("memory", "hit")
                out[key] = entry
            pending = [
                (spec, rep)
                for spec, rep in pending
                if (spec.fingerprint, spec.engine, rep) not in out
            ]
        if pending:
            hits = self.disk.load_many(pending)
            for key, entry in hits.items():
                _tick("disk", "hit")
                out[key] = entry
                if self.memory is not None:
                    self.memory.store_entry(entry)
            pending = [
                (spec, rep)
                for spec, rep in pending
                if (spec.fingerprint, spec.engine, rep) not in out
            ]
        if pending and self.remote is not None:
            if not self.remote_breaker.allow():
                _tick("remote", "degraded")
                self._emit_tier(bus, "degraded")
                return out
            try:
                hits = self.remote.lookup_many(pending)
            except OSError:
                self._remote_fault(bus)
                return out
            self.remote_breaker.record_success()
            self._drain_remote_breaker(bus)
            for key, entry in hits.items():
                _tick("remote", "hit")
                out[key] = entry
                self._backfill_disk(entry)
                if self.memory is not None:
                    self.memory.store_entry(entry)
        return out

    # -- stores ------------------------------------------------------------

    def store(
        self,
        spec: ScenarioSpec,
        rep: int,
        result: Any,
        events: list[dict[str, Any]],
    ) -> dict[str, Any]:
        """Write one finished run through every tier; returns the entry.

        Disk first (``OSError`` propagates — the caller's breaker
        accounting is the contract); only a durable entry is admitted
        to the memory tier or shipped to the remote one.
        """
        entry = make_entry(spec, rep, result, events)
        self.disk.store_entry(entry)
        if self.memory is not None:
            self.memory.store_entry(entry)
        if self.remote is not None:
            if self.remote_breaker.allow():
                self.remote.store_entry(entry)
            else:
                _tick("remote", "degraded")
                self._emit_tier(get_bus(), "degraded")
        return entry

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, dict[str, Any]]:
        """Per-tier occupancy + this process's probe tallies."""
        tallies = tier_stats()
        out: dict[str, dict[str, Any]] = {}
        if self.memory is not None:
            out["memory"] = {**self.memory.stats(), **tallies["memory"]}
        out["disk"] = {**self.disk.stats(), **tallies["disk"]}
        if self.remote is not None:
            out["remote"] = {**self.remote.stats(), **tallies["remote"]}
        return out

    def gc(
        self, max_bytes: int, tier: str = "disk", dry_run: bool = False
    ) -> dict[str, int]:
        """Size-bound one tier (disk by default; memory evicts LRU)."""
        if tier == "disk":
            return self.disk.gc(max_bytes, dry_run=dry_run)
        if tier == "memory":
            if self.memory is None:
                return {
                    "scanned": 0,
                    "evicted": 0,
                    "freed_bytes": 0,
                    "remaining_bytes": 0,
                    "dry_run": bool(dry_run),
                }
            return self.memory.gc(max_bytes, dry_run=dry_run)
        if tier == "remote" and self.remote is not None:
            return self.remote.gc(max_bytes, dry_run=dry_run)
        from ..errors import ConfigError

        raise ConfigError(f"unknown cache tier {tier!r}")
