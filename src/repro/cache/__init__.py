"""The tiered result-cache subsystem: hot / disk / remote behind one interface.

Results of ``(scenario, rep)`` simulations are fully content-addressed
— the key is ``(spec fingerprint, model revision, engine, rep)`` — so a
cache entry computed anywhere is valid everywhere.  This package layers
three stores of that key space behind the small :class:`CacheTier`
interface (``lookup / lookup_many / store_entry / stats / gc``):

* :class:`MemoryTier` — a bounded in-process LRU holding *decoded*
  entry payloads with the index resident (the Haystack pattern): a hot
  hit is one dict lookup, no ``scandir``, no JSON decode;
* :class:`DiskTier` — the durable on-disk store
  (:class:`ResultCache`), atomic writes, size-bounded GC, corrupt-entry
  quarantine.  This is the **tier of record**: entries are only
  admitted to faster tiers once they are durable here;
* :class:`RemoteTier` — read-through / write-behind against a ``repro
  serve`` instance over ``cache-get`` / ``cache-put`` frames, so one
  server's disk tier becomes a team's shared warm tier.

:class:`TieredCache` composes them (fast → slow): a hit in a slower
tier is promoted into the faster ones; a miss falls through and the
eventual result back-fills every tier.  Remote failures trip a
dedicated :class:`~repro.orchestrator.supervise.CircuitBreaker` and
degrade to the local tiers — a cache problem never fails a run.

The composite is deliberately *accounting-free* at the run level: the
authoritative ``service.cache`` hit/miss tally stays in
:mod:`repro.service`, one count per run, so cold and warm campaigns
keep exact tally parity no matter which tier served a hit.  Per-tier
probe tallies live here (:func:`tier_stats`) and feed ``repro cache
stats`` and the ``service.cache.tier`` counter.
"""

from __future__ import annotations

from .disk import DiskTier, ResultCache
from .memory import MemoryTier
from .remote import RemoteTier
from .tier import (
    CACHE_SCHEMA,
    CacheTier,
    entry_key,
    make_entry,
    validate_entry,
)
from .tiered import TieredCache, reset_tier_stats, tier_stats

__all__ = [
    "CACHE_SCHEMA",
    "CacheTier",
    "DiskTier",
    "MemoryTier",
    "RemoteTier",
    "ResultCache",
    "TieredCache",
    "entry_key",
    "make_entry",
    "reset_tier_stats",
    "tier_stats",
    "validate_entry",
]
