"""The cache-tier interface and the entry format every tier speaks.

A cache **entry** is a plain JSON-able dict, self-describing through
its header fields (``schema``, ``fingerprint``, ``model_revision``,
``engine``, ``rep``) with the full spec embedded, the codec-normalized
result, and the run's captured telemetry events.  Every tier stores and
returns whole entries, so promotion between tiers is a byte-faithful
copy and a fingerprint collision with a *different* spec stays
detectable no matter which tier served it.

Entries are treated as immutable once constructed: the memory tier
hands out the same dict object on every hit, and the replay path only
reads from it.
"""

from __future__ import annotations

import re
from typing import Any, Mapping, Protocol, runtime_checkable

from ..scenario import MODEL_REVISION, ScenarioSpec

__all__ = [
    "CACHE_SCHEMA",
    "CacheTier",
    "EntryKey",
    "entry_key",
    "make_entry",
    "safe_fingerprint",
    "safe_token",
    "validate_entry",
]

CACHE_SCHEMA = 1

# A lookup key: (spec fingerprint, engine, rep).  The model revision is
# a process-wide constant and rides beside the key where it matters
# (wire frames, entry headers).
EntryKey = tuple[str, str, int]

# Fingerprints and engine names appear in file paths and wire frames;
# both are validated before they touch a filesystem so a hostile peer
# cannot traverse out of the cache root.
_FINGERPRINT_RE = re.compile(r"^[0-9a-f]{8,128}$")
_TOKEN_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


def safe_fingerprint(value: Any) -> str | None:
    """``value`` as a path-safe fingerprint string, or ``None``."""
    if isinstance(value, str) and _FINGERPRINT_RE.match(value):
        return value
    return None


def safe_token(value: Any) -> str | None:
    """``value`` as a path-safe name token (engine), or ``None``."""
    if isinstance(value, str) and _TOKEN_RE.match(value):
        return value
    return None


def make_entry(
    spec: ScenarioSpec, rep: int, result: Any, events: list[dict[str, Any]]
) -> dict[str, Any]:
    """Build the canonical cache entry for one finished run.

    ``result`` is a :class:`~repro.engine.result.RunResult`; it is
    normalized through the exact JSON codec here, which is what makes a
    cold result and its later replay byte-identical.
    """
    from ..engine.result import result_to_jsonable

    return {
        "schema": CACHE_SCHEMA,
        "fingerprint": spec.fingerprint,
        "model_revision": MODEL_REVISION,
        "engine": spec.engine,
        "rep": int(rep),
        "spec": spec.to_jsonable(),
        "result": result_to_jsonable(result),
        "events": events,
    }


def entry_key(entry: Mapping[str, Any]) -> EntryKey:
    """The ``(fingerprint, engine, rep)`` key an entry stands for."""
    return (str(entry["fingerprint"]), str(entry["engine"]), int(entry["rep"]))


def validate_entry(
    entry: Any,
    *,
    fingerprint: str | None = None,
    engine: str | None = None,
    rep: int | None = None,
    model_revision: int | None = None,
) -> bool:
    """Is ``entry`` a well-formed cache entry (optionally for this key)?

    Header validation only — the embedded result is decoded lazily by
    the consumer.  Used on every tier boundary: a disk read, a wire
    frame from a remote peer, a promotion into the memory tier.
    """
    if not isinstance(entry, dict) or entry.get("schema") != CACHE_SCHEMA:
        return False
    fp = safe_fingerprint(entry.get("fingerprint"))
    eng = safe_token(entry.get("engine"))
    if fp is None or eng is None:
        return False
    if not isinstance(entry.get("rep"), int) or isinstance(entry.get("rep"), bool):
        return False
    if not isinstance(entry.get("model_revision"), int):
        return False
    if "result" not in entry:
        return False
    if fingerprint is not None and fp != fingerprint:
        return False
    if engine is not None and eng != engine:
        return False
    if rep is not None and entry["rep"] != int(rep):
        return False
    wanted_rev = MODEL_REVISION if model_revision is None else int(model_revision)
    if entry["model_revision"] != wanted_rev:
        return False
    return True


@runtime_checkable
class CacheTier(Protocol):
    """What every tier offers; see the package docstring for the roles.

    ``lookup``/``lookup_many`` return whole entries (or omit the key on
    a miss).  ``store_entry`` persists one entry.  Tiers report
    occupancy through ``stats`` and bound it through ``gc``.  I/O
    failures surface as ``OSError`` — the composite (not the tier)
    decides whether that strikes a breaker, degrades, or propagates.
    """

    name: str

    def lookup(self, spec: ScenarioSpec, rep: int) -> dict[str, Any] | None: ...

    def lookup_many(
        self, jobs: "list[tuple[ScenarioSpec, int]]"
    ) -> dict[EntryKey, dict[str, Any]]: ...

    def store_entry(self, entry: Mapping[str, Any]) -> None: ...

    def stats(self) -> dict[str, Any]: ...

    def gc(self, max_bytes: int, dry_run: bool = False) -> dict[str, int]: ...
