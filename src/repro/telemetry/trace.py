"""Deterministic distributed trace context.

A *trace* correlates everything one job — one ``(scenario fingerprint,
rep)`` pair — caused anywhere in the stack: the client that submitted
it, the server that admitted and queued it, the worker that leased and
executed it, the service/cache layer underneath, and the events that
came back in the reply.  Because a job's identity is already
content-addressed, trace ids need no randomness and no clock:

``trace_id  = sha256(f"{fingerprint}|{rep}|{attempt}")[:16]``
``span_id   = sha256(f"{trace_id}|{span name}")[:16]``

Every participant can therefore *derive* the same ids independently —
the wire protocol carries the trace id for cheap correlation, but a
server that never saw the client's frame still mints the identical id
from the job identity, and two byte-identical campaigns stamp
byte-identical ids.  That is the determinism contract: tracing adds
only derivable fields, so trace-enabled runs produce the same
``RunResult``s, record stores and replay fingerprints as trace-off
runs (``tests/server/test_tracing.py`` proves it).

The ambient context is a **thread-local** stack (server handler and
worker threads trace different jobs concurrently): enter a scope with
:func:`trace_scope`, and every event the bus emits inside it is stamped
with ``trace``/``span``/``parent`` — but only when the bus has tracing
enabled (``session(trace=True)``), so default streams are unchanged.

The stable span names (one tree per job)::

    job                  the root span: submit to final result
    ├── submit           client-side submit RPC (incl. retries/sheds)
    ├── queue            server admission to worker lease
    └── run              worker lease to terminal state
        └── cache        result-cache probe/replay/store inside the run

:class:`FlightRecorder` is the post-mortem side: a small ring of the
most recent events that the failure path can dump into a
:class:`~repro.methodology.records.FailedRunRecord`, filtered down to
the failing job's trace id.
"""

from __future__ import annotations

import hashlib
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = [
    "TRACE_ID_BYTES",
    "SPAN_NAMES",
    "trace_id_for",
    "span_id_for",
    "TraceContext",
    "root_context",
    "current_trace",
    "trace_scope",
    "FlightRecorder",
]

# Hex characters kept from the sha256 digest: 64 bits of id space, far
# beyond any campaign's job count, short enough to read in a terminal.
TRACE_ID_BYTES = 16

# The closed set of span names (documented tree above).  Closed for the
# same reason the event taxonomy is: every side derives span ids from
# these names, so an undocumented name would silently fork the tree.
SPAN_NAMES = ("job", "submit", "queue", "run", "cache")


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:TRACE_ID_BYTES]


def trace_id_for(fingerprint: str, rep: int, attempt: int = 0) -> str:
    """The deterministic trace id of one (fingerprint, rep) job.

    ``attempt`` distinguishes deliberate re-executions of the same job
    identity (a retried quarantine); ordinary client retries and
    idempotent resubmissions are the *same* attempt — they attach to
    the same server-side job, so they share its trace.
    """
    return _digest(f"{fingerprint}|{int(rep)}|{int(attempt)}")


def span_id_for(trace_id: str, name: str) -> str:
    """The deterministic span id of a named span within one trace."""
    return _digest(f"{trace_id}|{name}")


@dataclass(frozen=True)
class TraceContext:
    """One active span: the ids the bus stamps onto emitted events."""

    trace: str
    span: str
    parent: str | None = None

    def child(self, name: str) -> "TraceContext":
        """The context of a named child span of this one."""
        return TraceContext(self.trace, span_id_for(self.trace, name), self.span)


def root_context(fingerprint: str, rep: int, attempt: int = 0) -> TraceContext:
    """The root ("job") span context for one (fingerprint, rep) job."""
    trace = trace_id_for(fingerprint, rep, attempt)
    return TraceContext(trace, span_id_for(trace, "job"), None)


# Thread-local ambient stack: server handler threads and workers trace
# different jobs at the same time on one process-wide bus.
_LOCAL = threading.local()


def _stack() -> list[TraceContext]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _LOCAL.stack = stack
    return stack


def current_trace() -> TraceContext | None:
    """The innermost active trace context of this thread, or None."""
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def trace_scope(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Make ``ctx`` the ambient context for the enclosed emissions.

    ``None`` is a no-op scope, so call sites can pass an optional
    context without branching.  Scopes nest: an inner scope (e.g. the
    ``run`` span inside the ``job`` span) shadows the outer one.
    """
    if ctx is None:
        yield None
        return
    stack = _stack()
    stack.append(ctx)
    try:
        yield ctx
    finally:
        stack.pop()


class FlightRecorder:
    """The last ``capacity`` events, kept for post-mortem dumps.

    Attached as one more bus sink by :func:`repro.telemetry.bus.session`
    (handle: ``bus.flight``); when a run fails, the failure path calls
    :meth:`for_trace` to extract the failing job's recent events into
    its failure record — so a post-mortem does not need the full
    stream, or any stream at all.
    """

    def __init__(self, capacity: int = 256):
        self._buffer: deque[dict[str, Any]] = deque(maxlen=max(1, int(capacity)))

    def emit(self, event: dict[str, Any]) -> None:
        self._buffer.append(event)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self._buffer)

    def last(self, limit: int | None = None) -> list[dict[str, Any]]:
        """The most recent events, oldest first."""
        events = list(self._buffer)
        return events if limit is None else events[-int(limit):]

    def for_trace(
        self, trace_id: str | None, limit: int | None = None
    ) -> list[dict[str, Any]]:
        """Recent events stamped with ``trace_id`` (all recent when None)."""
        if trace_id is None:
            return self.last(limit)
        events = [e for e in self._buffer if e.get("trace") == trace_id]
        return events if limit is None else events[-int(limit):]
