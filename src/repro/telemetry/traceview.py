"""Span-tree reconstruction from traced event streams (``repro trace``).

One distributed job leaves events in several streams — the client's,
the server's, possibly a worker's — all stamped with the same
deterministic trace id (:mod:`repro.telemetry.trace`).  This module
merges any number of such streams, groups events by trace, derives the
per-job milestones and span durations, and renders them three ways:

* :func:`render_timeline` — a causal text timeline per job with the
  queue-wait / run / cache breakdown;
* :func:`chrome_trace` — the Chrome ``chrome://tracing`` / Perfetto
  JSON object (``{"traceEvents": [...]}``);
* :func:`check_traces` — completeness checking: every *admitted* job
  must show the full submit → admit → lease → complete chain (the CI
  trace job asserts this over a chaos-faulted campaign).

Reconstruction is purely positional: streams are merged in (stream,
line) order and milestones are picked by event type, so no wall clock
is needed — which is exactly why traced campaigns can stay
deterministic.  Machine-time durations (``queue_wait_s``,
``elapsed_s``) ride event payloads and are surfaced as annotations,
never as ordering.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..errors import TelemetryError
from .trace import span_id_for

__all__ = [
    "JobTrace",
    "load_streams",
    "collect_traces",
    "render_timeline",
    "chrome_trace",
    "check_traces",
]

# Event types that mark span edges in a job's causal chain, in causal
# order.  "seen first wins" per type: idempotent resubmissions may
# repeat job.submit, but the first one opened the trace.
_MILESTONES = (
    "job.submit",  # client: the job span opens
    "server.admit",  # server: queue span opens
    "server.lease",  # server: queue span closes, run span opens
    "trace.span",  # service: cache probe/replay/store closed
    "server.complete",  # server: run span (and the job) closes
    "run.end",  # local runner's terminal (local campaigns)
)


@dataclass
class JobTrace:
    """Everything one trace id accumulated across the merged streams."""

    trace_id: str
    job: str = ""
    rep: int | None = None
    events: list[dict[str, Any]] = field(default_factory=list)
    milestones: dict[str, dict[str, Any]] = field(default_factory=dict)

    @property
    def admitted(self) -> bool:
        return "server.admit" in self.milestones

    @property
    def status(self) -> str:
        done = self.milestones.get("server.complete") or self.milestones.get("run.end")
        if done is None:
            return "incomplete"
        return str(done.get("status", "?"))

    def duration(self, milestone: str, key: str) -> float | None:
        event = self.milestones.get(milestone)
        value = event.get(key) if event is not None else None
        return float(value) if isinstance(value, (int, float)) else None


def _read_stream(path: Path) -> list[dict[str, Any]]:
    events: list[dict[str, Any]] = []
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise TelemetryError(f"cannot read event stream {path}: {exc}") from exc
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:
            continue  # torn tail of a crashed stream: tolerate
        if isinstance(event, dict):
            events.append(event)
    return events


def load_streams(paths: Iterable[str | Path]) -> list[dict[str, Any]]:
    """Merge event streams; each event is tagged with its source stream.

    Directories expand to their ``*.jsonl`` files (sorted).  Events keep
    stream order within a stream; streams concatenate in argument order
    — the global ``_idx`` tag gives the renderers a deterministic
    total order without any wall clock.
    """
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.glob("*.jsonl")))
        else:
            files.append(path)
    if not files:
        raise TelemetryError("no event streams to load")
    merged: list[dict[str, Any]] = []
    for path in files:
        for event in _read_stream(path):
            event["_src"] = path.name
            event["_idx"] = len(merged)
            merged.append(event)
    return merged


def collect_traces(events: Iterable[Mapping[str, Any]]) -> list[JobTrace]:
    """Group stamped events by trace id, extracting per-job milestones."""
    traces: dict[str, JobTrace] = {}
    for event in events:
        trace_id = event.get("trace")
        if not isinstance(trace_id, str):
            continue
        job = traces.get(trace_id)
        if job is None:
            job = traces[trace_id] = JobTrace(trace_id)
        record = dict(event)
        job.events.append(record)
        if not job.job and isinstance(event.get("job"), str):
            job.job = str(event["job"])
        elif not job.job and isinstance(event.get("spec"), str):
            # Local campaigns have no server-side `job` field; the spec
            # key is the next-best label.
            job.job = str(event["spec"])
        if job.rep is None and isinstance(event.get("rep"), int):
            job.rep = int(event["rep"])
        etype = event.get("event")
        if etype in _MILESTONES and etype not in job.milestones:
            job.milestones[str(etype)] = record
    return sorted(traces.values(), key=lambda t: t.events[0]["_idx"] if t.events else 0)


def _fmt_s(value: float | None) -> str:
    return f"{value:.3f}s" if isinstance(value, (int, float)) else "-"


def render_timeline(traces: Iterable[JobTrace]) -> str:
    """The causal per-job timeline ``repro trace`` prints."""
    blocks: list[str] = []
    for job in traces:
        label = f"{job.job[:12] or '?'}:{job.rep if job.rep is not None else '?'}"
        queue_wait = job.duration("server.lease", "queue_wait_s")
        run_s = job.duration("server.complete", "elapsed_s")
        cache = job.milestones.get("trace.span")
        cache_status = str(cache.get("status", "?")) if cache is not None else "-"
        cache_s = job.duration("trace.span", "elapsed_s")
        lines = [
            f"trace {job.trace_id}  job {label}  status {job.status}",
            f"  breakdown   queue-wait {_fmt_s(queue_wait)}   run {_fmt_s(run_s)}"
            f"   cache {cache_status} ({_fmt_s(cache_s)})",
        ]
        for etype in _MILESTONES:
            event = job.milestones.get(etype)
            if event is None:
                continue
            src = event.get("_src", "?")
            extra = ""
            if etype == "server.lease":
                extra = f"  queue_wait_s={event.get('queue_wait_s')}"
            elif etype in ("server.complete", "run.end"):
                extra = f"  status={event.get('status')}"
            elif etype == "trace.span":
                extra = f"  {event.get('name')}={event.get('status')}"
            lines.append(f"    {etype:<16s} [{src}]{extra}")
        blocks.append("\n".join(lines))
    if not blocks:
        return "no traced jobs found (were the streams recorded with --trace?)"
    return "\n\n".join(blocks)


# Logical tick per merged event: Chrome's ``ts`` is microseconds, and a
# fixed spacing keeps the causal order readable without any wall clock.
_TICK_US = 1000


def _span_event(
    name: str,
    trace: JobTrace,
    tid: str,
    start_idx: int,
    end_idx: int,
    args: dict[str, Any],
) -> dict[str, Any]:
    return {
        "name": name,
        "ph": "X",
        "cat": "repro",
        "pid": 1,
        "tid": tid,
        "ts": start_idx * _TICK_US,
        "dur": max(1, end_idx - start_idx) * _TICK_US,
        "args": {"trace": trace.trace_id, **args},
    }


def chrome_trace(traces: Iterable[JobTrace]) -> dict[str, Any]:
    """The Chrome-trace/Perfetto JSON object for the merged streams.

    Span ``ts``/``dur`` use the deterministic merged-event index (one
    logical tick per event); real machine-time durations ride ``args``.
    Each job gets its own ``tid`` row, named by a metadata event.
    """
    out: list[dict[str, Any]] = []
    for row, job in enumerate(traces):
        tid = str(row + 1)
        label = f"{job.job[:12] or job.trace_id}:{job.rep if job.rep is not None else '?'}"
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": f"job {label}"},
            }
        )
        if not job.events:
            continue
        first = job.events[0]["_idx"]
        last = job.events[-1]["_idx"]
        out.append(
            _span_event(
                "job", job, tid, first, last, {"status": job.status, "span": span_id_for(job.trace_id, "job")}
            )
        )
        admit = job.milestones.get("server.admit")
        lease = job.milestones.get("server.lease")
        done = job.milestones.get("server.complete") or job.milestones.get("run.end")
        if admit is not None and lease is not None:
            out.append(
                _span_event(
                    "queue",
                    job,
                    tid,
                    admit["_idx"],
                    lease["_idx"],
                    {
                        "queue_wait_s": lease.get("queue_wait_s"),
                        "span": span_id_for(job.trace_id, "queue"),
                    },
                )
            )
        if lease is not None and done is not None:
            out.append(
                _span_event(
                    "run",
                    job,
                    tid,
                    lease["_idx"],
                    done["_idx"],
                    {
                        "elapsed_s": done.get("elapsed_s"),
                        "status": done.get("status"),
                        "span": span_id_for(job.trace_id, "run"),
                    },
                )
            )
        cache = job.milestones.get("trace.span")
        if cache is not None:
            out.append(
                _span_event(
                    "cache",
                    job,
                    tid,
                    cache["_idx"],
                    cache["_idx"] + 1,
                    {
                        "status": cache.get("status"),
                        "elapsed_s": cache.get("elapsed_s"),
                        "span": span_id_for(job.trace_id, "cache"),
                    },
                )
            )
    return {"traceEvents": out, "displayTimeUnit": "ms"}


# What a complete server-side span tree must contain, per admitted job.
_REQUIRED_CHAIN = ("server.admit", "server.lease", "server.complete")


def check_traces(traces: Iterable[JobTrace]) -> list[str]:
    """Problems with the reconstructed traces; empty means all complete.

    Only *admitted* jobs are held to the full chain: a job that only
    ever shed (``server.shed``) or ran locally has no server-side spans
    to demand.
    """
    problems: list[str] = []
    for job in traces:
        if not job.admitted:
            continue
        missing = [m for m in _REQUIRED_CHAIN if m not in job.milestones]
        if missing:
            problems.append(
                f"trace {job.trace_id} (job {job.job[:12]}:{job.rep}): "
                f"missing {', '.join(missing)}"
            )
    return problems
