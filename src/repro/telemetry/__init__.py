"""End-to-end observability for the repro pipeline.

One substrate replaces the previous per-feature reporting paths:

* :mod:`~repro.telemetry.events` — the typed event taxonomy and its
  versioned JSONL schema (plus validators);
* :mod:`~repro.telemetry.bus` — the process-wide, explicitly-injectable
  event bus and its sinks (ring buffer, JSONL, console);
* :mod:`~repro.telemetry.metrics` — counters, gauges and histograms
  with fixed-bucket *and* streaming-quantile (P²) views;
* :mod:`~repro.telemetry.profiling` — span-based wall-clock profiling
  of the simulation hot paths (``--profile``);
* :mod:`~repro.telemetry.trace` — deterministic distributed trace
  context (ids derived from job identity, thread-local scopes, the
  post-mortem flight recorder);
* :mod:`~repro.telemetry.traceview` — span-tree reconstruction and
  Chrome-trace export behind ``repro trace``;
* :mod:`~repro.telemetry.report` — the campaign dashboard behind
  ``repro stats`` / ``repro tail``.

Design contract: with no sinks attached and profiling disabled, every
instrumentation site reduces to a single attribute check and simulation
results are byte-identical to the uninstrumented code — the verify
suite's deterministic-replay and conformance goldens prove it.
"""

from .bus import (
    ConsoleSink,
    EventBus,
    JsonlSink,
    RingBufferSink,
    TelemetrySink,
    format_event,
    get_bus,
    session,
    set_bus,
)
from .events import (
    DEBUG_EVENTS,
    EVENT_TYPES,
    SCHEMA_VERSION,
    validate_event,
    validate_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, P2Quantile
from .profiling import SpanProfiler, SpanStats, get_profiler, profiling, set_profiler
from .report import CampaignReport, load_events
from .trace import (
    FlightRecorder,
    TraceContext,
    current_trace,
    root_context,
    span_id_for,
    trace_id_for,
    trace_scope,
)
from .traceview import (
    JobTrace,
    check_traces,
    chrome_trace,
    collect_traces,
    load_streams,
    render_timeline,
)

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "DEBUG_EVENTS",
    "validate_event",
    "validate_jsonl",
    "TelemetrySink",
    "RingBufferSink",
    "JsonlSink",
    "ConsoleSink",
    "EventBus",
    "get_bus",
    "set_bus",
    "session",
    "format_event",
    "Counter",
    "Gauge",
    "Histogram",
    "P2Quantile",
    "MetricsRegistry",
    "SpanProfiler",
    "SpanStats",
    "get_profiler",
    "set_profiler",
    "profiling",
    "CampaignReport",
    "load_events",
    "TraceContext",
    "trace_id_for",
    "span_id_for",
    "root_context",
    "current_trace",
    "trace_scope",
    "FlightRecorder",
    "JobTrace",
    "load_streams",
    "collect_traces",
    "render_timeline",
    "chrome_trace",
    "check_traces",
]
