"""Span-based wall-clock profiling of the simulation hot paths.

A *span* is a named region of code (``fluid.solve``, ``kernel.run``,
``des.solve`` ...) timed with :func:`time.perf_counter` and aggregated
by name: total wall time, call count, min/max per call.  Spans nest;
each span also tracks *self time* (wall time minus the time spent in
child spans) so the report distinguishes "the kernel loop is slow"
from "the kernel loop spends its time in the max-min solver".

Like the event bus, the profiler is process-wide but explicitly
injectable and **off by default**: every instrumentation site is a
single ``prof.enabled`` attribute check, so ``--no-profile`` runs pay
one boolean test per span and nothing else — that is what keeps the
measured overhead of ``--profile`` under the 5% budget and the
telemetry-off byte-identity guarantee intact (the profiler never reads
or writes simulation state).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

from ..errors import TelemetryError

__all__ = ["SpanStats", "SpanProfiler", "get_profiler", "set_profiler", "profiling"]


class SpanStats:
    """Aggregated statistics for one span name."""

    __slots__ = ("name", "calls", "total_s", "self_s", "min_s", "max_s")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.total_s = 0.0
        self.self_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def add(self, elapsed: float, child_time: float) -> None:
        self.calls += 1
        self.total_s += elapsed
        self.self_s += elapsed - child_time
        self.min_s = min(self.min_s, elapsed)
        self.max_s = max(self.max_s, elapsed)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "calls": self.calls,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "min_s": self.min_s if self.calls else None,
            "max_s": self.max_s if self.calls else None,
        }


class SpanProfiler:
    """Collects nested span timings when enabled; inert otherwise."""

    def __init__(self, enabled: bool = False):
        self.enabled = bool(enabled)
        self._stats: dict[str, SpanStats] = {}
        # Stack of accumulated child time per open span, for self-time.
        self._child_time: list[float] = []

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a region under ``name``; no-op when disabled."""
        if not self.enabled:
            yield
            return
        self._child_time.append(0.0)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            child_time = self._child_time.pop()
            stats = self._stats.get(name)
            if stats is None:
                stats = self._stats[name] = SpanStats(name)
            stats.add(elapsed, child_time)
            if self._child_time:
                self._child_time[-1] += elapsed

    def record(self, name: str, elapsed: float) -> None:
        """Record one pre-measured call (flat: no nesting bookkeeping).

        For hot loops where even the :meth:`span` context manager is too
        much machinery: callers time with ``perf_counter`` themselves,
        guarded by one ``prof.enabled`` check.
        """
        if not self.enabled:
            return
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = SpanStats(name)
        stats.add(elapsed, 0.0)

    def count(self, name: str, n: int = 1) -> None:
        """Record ``n`` zero-duration calls (pure call counting)."""
        if not self.enabled:
            return
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = SpanStats(name)
        stats.calls += n
        stats.min_s = min(stats.min_s, 0.0)

    def __len__(self) -> int:
        return len(self._stats)

    def stats(self) -> list[SpanStats]:
        """Spans ordered by total wall time, descending."""
        return sorted(self._stats.values(), key=lambda s: (-s.total_s, s.name))

    def clear(self) -> None:
        self._stats.clear()
        self._child_time.clear()

    def to_dict(self) -> dict[str, Any]:
        return {"spans": [s.to_dict() for s in self.stats()]}

    def render(self) -> str:
        """The ``--profile`` report: one fixed-width row per span."""
        if not self._stats:
            return "profile: no spans recorded"
        header = (
            f"  {'span':<24s} {'calls':>8s} {'total':>10s} {'self':>10s} "
            f"{'mean':>10s} {'max':>10s}"
        )
        lines = ["profile (wall clock):", header]
        for s in self.stats():
            mean = s.total_s / s.calls if s.calls else 0.0
            lines.append(
                f"  {s.name:<24s} {s.calls:>8d} {s.total_s:>9.4f}s {s.self_s:>9.4f}s "
                f"{mean * 1e3:>8.3f}ms {s.max_s * 1e3:>8.3f}ms"
            )
        return "\n".join(lines)


_PROFILER = SpanProfiler()


def get_profiler() -> SpanProfiler:
    """The current process-wide profiler (disabled unless installed)."""
    return _PROFILER


def set_profiler(profiler: SpanProfiler) -> SpanProfiler:
    """Install ``profiler`` process-wide; returns the previous one."""
    global _PROFILER
    if not isinstance(profiler, SpanProfiler):
        raise TelemetryError("set_profiler expects a SpanProfiler")
    previous = _PROFILER
    _PROFILER = profiler
    return previous


@contextmanager
def profiling(enabled: bool = True) -> Iterator[SpanProfiler]:
    """A scoped profiling session; restores the previous profiler on exit."""
    profiler = SpanProfiler(enabled=enabled)
    previous = set_profiler(profiler)
    try:
        yield profiler
    finally:
        set_profiler(previous)
