"""The structured event bus: one substrate for every emitter.

The bus is **process-wide but explicitly injectable**: library code
publishes through :func:`get_bus`, applications (the CLI, tests) attach
sinks for the duration of a :func:`session`, and nothing anywhere holds
a sink reference of its own.  With no sinks attached the bus is inert —
``bus.enabled`` is ``False`` and every instrumentation site is a single
attribute check, which is what keeps telemetry-off runs byte-identical
to (and as fast as) the uninstrumented engines.

Three sinks ship with the package:

* :class:`RingBufferSink` — the last N events in memory, for tests and
  interactive inspection;
* :class:`JsonlSink` — one schema-versioned JSON object per line,
  crash-tolerant (line-buffered append), the campaign archive format
  ``repro stats`` and ``repro tail`` consume;
* :class:`ConsoleSink` — human-readable one-liners on a stream.

Events are dicts built by :meth:`EventBus.emit` with the envelope of
:mod:`repro.telemetry.events`; sinks receive them already enveloped.
The bus also carries the session's
:class:`~repro.telemetry.metrics.MetricsRegistry` so emitters share one
metrics surface without extra plumbing.
"""

from __future__ import annotations

import json
import sys
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Protocol, TextIO

from ..errors import TelemetryError
from .events import DEBUG_EVENTS, SCHEMA_VERSION
from .metrics import MetricsRegistry
from .trace import FlightRecorder, current_trace

__all__ = [
    "TelemetrySink",
    "RingBufferSink",
    "JsonlSink",
    "ConsoleSink",
    "EventBus",
    "get_bus",
    "set_bus",
    "session",
    "format_event",
]

_LEVELS = ("info", "debug")


class TelemetrySink(Protocol):
    """Anything that can receive emitted events."""

    def emit(self, event: dict[str, Any]) -> None:  # pragma: no cover
        ...

    def close(self) -> None:  # pragma: no cover
        ...


class RingBufferSink:
    """Keeps the last ``capacity`` events in memory."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise TelemetryError("ring buffer capacity must be >= 1")
        self._buffer: deque[dict[str, Any]] = deque(maxlen=capacity)

    def emit(self, event: dict[str, Any]) -> None:
        self._buffer.append(event)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def events(self) -> list[dict[str, Any]]:
        return list(self._buffer)

    def select(self, event_type: str) -> list[dict[str, Any]]:
        return [e for e in self._buffer if e.get("event") == event_type]


class JsonlSink:
    """Appends one JSON object per line to a file, line-buffered.

    Line buffering means a crashed campaign leaves a readable stream up
    to its last complete event — the JSONL analogue of the runner's
    atomic checkpoints.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._fh: TextIO | None = self.path.open("a", buffering=1)
        except OSError as exc:
            raise TelemetryError(f"cannot open event stream {self.path}: {exc}") from exc

    def emit(self, event: dict[str, Any]) -> None:
        if self._fh is None:
            raise TelemetryError(f"event stream {self.path} is closed")
        self._fh.write(json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def format_event(event: dict[str, Any]) -> str:
    """One human-readable line per event (``repro tail``'s renderer)."""
    etype = str(event.get("event", "?"))
    t = event.get("t")
    clock = f"t={t:10.3f}s" if isinstance(t, (int, float)) else " " * 13
    payload = {
        k: v
        for k, v in event.items()
        if k not in ("schema", "seq", "event", "t", "servers", "metrics")
    }
    if etype == "run.end":
        bw = payload.pop("bw_mib_s", None)
        if isinstance(bw, (int, float)):
            payload["bw_mib_s"] = f"{bw:.1f}"
    body = " ".join(f"{k}={v}" for k, v in payload.items())
    if etype == "metrics.snapshot":
        body = f"{len(event.get('metrics', {}))} metrics"
    return f"{clock}  {etype:<16s} {body}"


class ConsoleSink:
    """Human-readable one-liners on a text stream (stderr by default)."""

    def __init__(self, stream: TextIO | None = None):
        self._stream = stream if stream is not None else sys.stderr

    def emit(self, event: dict[str, Any]) -> None:
        print(format_event(event), file=self._stream)

    def close(self) -> None:
        pass


class EventBus:
    """Dispatches enveloped events to the attached sinks."""

    def __init__(self, level: str = "info", trace: bool = False):
        if level not in _LEVELS:
            raise TelemetryError(f"unknown telemetry level {level!r} (expected {_LEVELS})")
        self.level = level
        self.metrics = MetricsRegistry()
        self._sinks: list[TelemetrySink] = []
        self._seq = 0
        # Convenience handle set by session(ring=...): the in-memory sink,
        # so callers can inspect captured events without tracking it.
        self.ring: RingBufferSink | None = None
        # Distributed tracing: when on, emit() stamps every event with
        # the ambient thread-local trace context (repro.telemetry.trace)
        # and trace-only events (job.submit, trace.span, …) are emitted.
        # Off by default so default streams stay byte-for-byte unchanged.
        self.tracing = bool(trace)
        # The post-mortem ring set by session(): last-N events for
        # failure records, independent of any user-configured sink.
        self.flight: FlightRecorder | None = None

    # -- state ----------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when at least one sink is attached (the hot-path guard)."""
        return bool(self._sinks)

    @property
    def debug(self) -> bool:
        """True when debug-level events should be emitted too."""
        return bool(self._sinks) and self.level == "debug"

    def attach(self, sink: TelemetrySink) -> TelemetrySink:
        self._sinks.append(sink)
        return sink

    def detach(self, sink: TelemetrySink) -> None:
        try:
            self._sinks.remove(sink)
        except ValueError:
            raise TelemetryError("sink is not attached to this bus") from None

    # -- emission --------------------------------------------------------------

    def emit(self, event_type: str, t: float | None = None, **fields: Any) -> None:
        """Envelope and dispatch one event to every sink.

        Debug-level event types (see
        :data:`repro.telemetry.events.DEBUG_EVENTS`) are dropped unless
        the bus runs at debug level.  With no sinks attached this is a
        no-op after one list check.

        With tracing on, the ambient thread-local trace context stamps
        ``trace``/``span``/``parent`` onto the event — but only where
        the payload does not already carry them, so cache- and
        wire-replayed events keep their originally recorded ids.
        """
        if not self._sinks:
            return
        if event_type in DEBUG_EVENTS and self.level != "debug":
            return
        event = {
            "schema": SCHEMA_VERSION,
            "seq": self._seq,
            "event": event_type,
            "t": float(t) if t is not None else None,
            **fields,
        }
        if self.tracing:
            ctx = current_trace()
            if ctx is not None:
                event.setdefault("trace", ctx.trace)
                event.setdefault("span", ctx.span)
                if ctx.parent is not None:
                    event.setdefault("parent", ctx.parent)
        self._seq = self._seq + 1
        for sink in self._sinks:
            sink.emit(event)

    def close(self) -> None:
        """Close every sink (the bus itself stays usable)."""
        for sink in self._sinks:
            sink.close()
        self._sinks.clear()


# The process-wide default bus.  Library code reads it through
# get_bus(); applications replace or populate it through session() /
# set_bus() — explicit injection, not import-time magic.
_BUS = EventBus()


def get_bus() -> EventBus:
    """The current process-wide event bus (inert unless sinks attached)."""
    return _BUS


def set_bus(bus: EventBus) -> EventBus:
    """Install ``bus`` as the process-wide bus; returns the previous one."""
    global _BUS
    previous = _BUS
    _BUS = bus
    return previous


@contextmanager
def session(
    jsonl: str | Path | None = None,
    ring: int | None = None,
    console: TextIO | None = None,
    level: str = "info",
    trace: bool = False,
    flight: int | None = None,
) -> Iterator[EventBus]:
    """A scoped telemetry session: fresh bus, sinks attached, auto-teardown.

    On exit the session emits a final ``metrics.snapshot`` event (when
    any metric was touched), closes the sinks and restores the previous
    process-wide bus — so nested sessions and tests compose.

    ``trace=True`` turns on distributed-trace stamping (and the
    trace-only events) for the session.  ``flight`` sizes the
    post-mortem :class:`~repro.telemetry.trace.FlightRecorder` attached
    alongside the other sinks (default: 256 whenever any sink is
    configured; 0 disables it).
    """
    bus = EventBus(level=level, trace=trace)
    ring_sink: RingBufferSink | None = None
    if jsonl is not None:
        bus.attach(JsonlSink(jsonl))
    if ring is not None:
        ring_sink = RingBufferSink(ring)
        bus.attach(ring_sink)
        bus.ring = ring_sink
    if console is not None:
        bus.attach(ConsoleSink(console))
    if flight is None:
        flight = 256 if bus.enabled else 0
    if flight:
        bus.flight = FlightRecorder(flight)
        bus.attach(bus.flight)
    previous = set_bus(bus)
    try:
        yield bus
    finally:
        if len(bus.metrics):
            bus.emit("metrics.snapshot", metrics=bus.metrics.snapshot())
        bus.close()
        set_bus(previous)
