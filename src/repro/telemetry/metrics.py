"""The metrics registry: counters, gauges and histograms.

Naming convention (see ``docs/OBSERVABILITY.md``): dotted lowercase
``subsystem.metric`` names with optional ``{label=value}`` dimensions,
e.g. ``runner.runs{status=ok}`` or ``engine.segments_solved{engine=fluid}``.
Labels are part of the metric identity — the same name with different
labels is a different time series, exactly as in Prometheus.

Histograms keep two complementary views of one sample stream:

* **fixed buckets** — cumulative-style counts per upper bound, which
  merge exactly across runs/processes (bucket counts are additive);
* **streaming quantiles** — the P² algorithm (Jain & Chlamtac, 1985),
  a constant-memory marker method giving good online estimates of
  p50/p90/p99 without storing samples.  P² markers cannot be merged, so
  after :meth:`Histogram.merge` the streaming view falls back to
  bucket interpolation (documented, and property-tested).

``NaN`` observations are rejected loudly: a NaN entering a histogram
would silently poison every downstream mean/quantile, which is exactly
the class of bug this subsystem exists to surface.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from ..errors import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "P2Quantile",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

# Geometric default buckets: 2^0 .. 2^40 in factor-4 steps.  Wide enough
# for MiB/s bandwidths and raw byte volumes alike.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(float(2**k) for k in range(0, 41, 2))

DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.99)


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not math.isfinite(amount) or amount < 0:
            raise TelemetryError(f"counter increment must be finite and >= 0, got {amount}")
        self.value += float(amount)


class Gauge:
    """A value that can go up and down (e.g. ``faults.active``)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        if math.isnan(value):
            raise TelemetryError("gauge value must not be NaN")
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)


class P2Quantile:
    """Streaming quantile estimation by the P² marker algorithm.

    Constant memory: five markers track the running quantile without
    storing the sample.  Below five observations the estimate is the
    exact empirical quantile of the seen samples.
    """

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise TelemetryError(f"quantile p must be in (0, 1), got {p}")
        self.p = float(p)
        self._count = 0
        self._heights: list[float] = []  # marker heights q_i
        self._positions: list[float] = []  # actual marker positions n_i
        self._desired: list[float] = []  # desired positions n'_i

    @property
    def count(self) -> int:
        return self._count

    def observe(self, value: float) -> None:
        if math.isnan(value):
            raise TelemetryError("NaN rejected by quantile estimator")
        x = float(value)
        self._count += 1
        if self._count <= 5:
            self._heights.append(x)
            self._heights.sort()
            if self._count == 5:
                p = self.p
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
            return

        q, n, nd = self._heights, self._positions, self._desired
        # Locate the cell of the new observation; clamp the extremes.
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        increments = (0.0, self.p / 2.0, self.p, (1.0 + self.p) / 2.0, 1.0)
        for i in range(5):
            nd[i] += increments[i]

        # Adjust the three interior markers toward their desired spots.
        for i in (1, 2, 3):
            d = nd[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (d <= -1.0 and n[i - 1] - n[i] < -1.0):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._heights, self._positions
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._heights, self._positions
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """The current estimate (exact below five samples)."""
        if self._count == 0:
            raise TelemetryError("quantile of an empty stream")
        if self._count < 5:
            return float(np.quantile(np.asarray(self._heights), self.p))
        return self._heights[2]


class Histogram:
    """Fixed-bucket counts plus streaming-quantile views of one stream."""

    def __init__(
        self,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise TelemetryError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise TelemetryError("bucket bounds must be strictly increasing")
        if any(not math.isfinite(b) for b in bounds):
            raise TelemetryError("bucket bounds must be finite")
        self.bounds = bounds
        # counts[i] = observations <= bounds[i]'s bin; counts[-1] = overflow.
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._p2: dict[float, P2Quantile] | None = {
            float(p): P2Quantile(p) for p in quantiles
        }

    def observe(self, value: float) -> None:
        v = float(value)
        if math.isnan(v):
            raise TelemetryError("NaN rejected by histogram")
        if math.isinf(v):
            raise TelemetryError("non-finite value rejected by histogram")
        self.count += 1
        self.sum += v
        self.min = min(self.min, v)
        self.max = max(self.max, v)
        i = int(np.searchsorted(self.bounds, v, side="left"))
        self.counts[i] += 1
        if self._p2 is not None:
            for estimator in self._p2.values():
                estimator.observe(v)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise TelemetryError("mean of an empty histogram")
        return self.sum / self.count

    def quantile(self, p: float) -> float:
        """Quantile estimate by linear interpolation inside the buckets.

        Exact at the extremes (clamped to the observed min/max) and
        merge-safe: computed purely from the additive bucket counts.
        """
        if not 0.0 <= p <= 1.0:
            raise TelemetryError(f"quantile p must be in [0, 1], got {p}")
        if self.count == 0:
            raise TelemetryError("quantile of an empty histogram")
        if self.count == 1 or self.min == self.max:
            return self.min
        rank = p * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lo = self.min if i == 0 else self.bounds[i - 1]
                hi = self.max if i == len(self.bounds) else self.bounds[i]
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi <= lo:
                    return lo
                frac = (rank - cumulative) / n
                return lo + frac * (hi - lo)
            cumulative += n
        return self.max

    def streaming_quantile(self, p: float) -> float:
        """The P² estimate for ``p``; falls back to buckets after a merge."""
        if self._p2 is not None and float(p) in self._p2:
            estimator = self._p2[float(p)]
            if estimator.count:
                return estimator.value
            raise TelemetryError("quantile of an empty stream")
        return self.quantile(p)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram in (bucket-exact; streaming view resets)."""
        if other.bounds != self.bounds:
            raise TelemetryError("cannot merge histograms with different buckets")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        # P² markers are not mergeable: drop them so streaming_quantile()
        # transparently answers from the (exactly merged) buckets.
        self._p2 = None
        return self

    def snapshot(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": [
                [b, n] for b, n in zip((*self.bounds, math.inf), self.counts) if n
            ],
        }
        # Infinite overflow bound is not JSON-representable: encode as null.
        out["buckets"] = [
            [None if math.isinf(b) else b, n] for b, n in out["buckets"]
        ]
        if self.count:
            out["quantiles"] = {
                f"p{int(p * 100)}": self.streaming_quantile(p) for p in DEFAULT_QUANTILES
            }
        return out


def _label_key(labels: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_name(name: str, label_key: tuple[tuple[str, str], ...]) -> str:
    if not label_key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in label_key)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create registry of named, labelled metrics."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], Any] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[tuple[str, Any]]:
        for (name, labels), metric in sorted(self._metrics.items()):
            yield _render_name(name, labels), metric

    def clear(self) -> None:
        self._metrics.clear()

    def _get(self, kind: type, name: str, labels: Mapping[str, Any], **kwargs: Any) -> Any:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = kind(**kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, kind):
            raise TelemetryError(
                f"metric {_render_name(*key)!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Sequence[float] | None = None, **labels: Any
    ) -> Histogram:
        if buckets is None:
            return self._get(Histogram, name, labels)
        return self._get(Histogram, name, labels, buckets=buckets)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry in (counters add, gauges take theirs)."""
        for key, metric in other._metrics.items():
            mine = self._metrics.get(key)
            if mine is None:
                self._metrics[key] = metric
            elif isinstance(mine, Counter) and isinstance(metric, Counter):
                mine.inc(metric.value)
            elif isinstance(mine, Gauge) and isinstance(metric, Gauge):
                mine.set(metric.value)
            elif isinstance(mine, Histogram) and isinstance(metric, Histogram):
                mine.merge(metric)
            else:
                raise TelemetryError(
                    f"metric {_render_name(*key)!r}: cannot merge "
                    f"{type(metric).__name__} into {type(mine).__name__}"
                )
        return self

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """A JSON-safe dump of every metric (the ``metrics.snapshot`` payload)."""
        out: dict[str, dict[str, Any]] = {}
        for rendered, metric in self:
            if isinstance(metric, Counter):
                out[rendered] = {"type": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[rendered] = {"type": "gauge", "value": metric.value}
            else:
                out[rendered] = {"type": "histogram", **metric.snapshot()}
        return out

    def render(self) -> str:
        """A fixed-width text table of the registry (dashboard panel)."""
        lines = ["  metric" + " " * 42 + "value"]
        for rendered, metric in self:
            if isinstance(metric, (Counter, Gauge)):
                value = f"{metric.value:g}"
            elif metric.count == 0:
                value = "n=0"
            else:
                value = (
                    f"n={metric.count} mean={metric.mean:.3g} "
                    f"p50={metric.streaming_quantile(0.5):.3g} "
                    f"p99={metric.streaming_quantile(0.99):.3g} "
                    f"max={metric.max:.3g}"
                )
            lines.append(f"  {rendered:<48s} {value}")
        return "\n".join(lines)
