"""The campaign dashboard: turn a JSONL event stream into panels.

``repro stats <events.jsonl>`` loads a campaign's event stream and
renders:

* per-experiment **progress** — runs by status (ok/failed/quarantined),
  retry totals, simulated wall clock;
* **bandwidth distributions** per (experiment, spec) with bi-modality
  flags from :mod:`repro.stats.bimodality` — the dashboard incarnation
  of the paper's lesson 5 ("means hide bi-modal behaviour");
* **fault activity** — triggers by kind/component;
* **per-server load timelines** (from ``run.end`` events that carry
  observed server series) via :func:`repro.figures.ascii.timeline_panel`;
* the final **metrics snapshot**, when the stream contains one.

Everything here is read-only over decoded events, so the dashboard can
be re-rendered at any time — including against the live stream of a
running campaign (``repro tail`` uses the same loader).
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..errors import AnalysisError, TelemetryError
from ..figures.ascii import render_table, timeline_panel
from ..stats.bimodality import is_bimodal

__all__ = ["load_events", "CampaignReport"]

# Minimum sample size for the two-Gaussian mixture fit (stats.bimodality).
_MIN_BIMODAL_N = 6


def load_events(path: str | Path, strict: bool = False) -> list[dict[str, Any]]:
    """Decode a JSONL event stream into a list of event dicts.

    By default a trailing undecodable line is tolerated (a live campaign
    may be mid-write); ``strict=True`` raises on any bad line.  Schema
    validation is a separate concern — see
    :func:`repro.telemetry.events.validate_jsonl`.
    """
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise TelemetryError(f"cannot read event stream {path}: {exc}") from exc
    lines = text.splitlines()
    events: list[dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            if strict or lineno < len(lines):
                raise TelemetryError(
                    f"{path}: line {lineno} is not valid JSON ({exc})"
                ) from exc
            continue  # tolerated: partial final line of a live stream
        if not isinstance(obj, dict):
            raise TelemetryError(f"{path}: line {lineno} is not a JSON object")
        events.append(obj)
    return events


def _fmt(value: float | None, spec: str = ".1f") -> str:
    return "-" if value is None else format(value, spec)


class CampaignReport:
    """Aggregates one event stream and renders the dashboard panels."""

    def __init__(self, events: Iterable[Mapping[str, Any]]):
        self.events = [dict(e) for e in events]
        self.run_ends = [e for e in self.events if e.get("event") == "run.end"]
        self.faults = [e for e in self.events if e.get("event") == "fault.trigger"]
        self.checkpoints = [e for e in self.events if e.get("event") == "checkpoint.write"]
        self.worker_ends = [e for e in self.events if e.get("event") == "worker.end"]
        self.slo_events = [e for e in self.events if e.get("event") == "server.slo"]
        snapshots = [e for e in self.events if e.get("event") == "metrics.snapshot"]
        self.metrics: dict[str, Any] = snapshots[-1]["metrics"] if snapshots else {}

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "CampaignReport":
        return cls(load_events(path))

    # -- aggregation -----------------------------------------------------------

    def progress(self) -> list[dict[str, Any]]:
        """Per-experiment run tallies, ordered by experiment id."""
        by_exp: dict[str, dict[str, Any]] = {}
        for e in self.run_ends:
            row = by_exp.setdefault(
                str(e.get("exp_id", "?")),
                {"ok": 0, "failed": 0, "quarantined": 0, "retries": 0, "wall_s": 0.0},
            )
            status = e.get("status", "failed")
            row[status] = row.get(status, 0) + 1
            row["retries"] += int(e.get("retries") or 0)
            makespan = e.get("makespan_s")
            if isinstance(makespan, (int, float)):
                row["wall_s"] += float(makespan)
        return [
            {"exp_id": exp, **row, "runs": row["ok"] + row["failed"] + row["quarantined"]}
            for exp, row in sorted(by_exp.items())
        ]

    def bandwidth_groups(self) -> dict[tuple[str, str], list[float]]:
        """Successful-run bandwidths grouped by (experiment, spec)."""
        groups: dict[tuple[str, str], list[float]] = {}
        for e in self.run_ends:
            bw = e.get("bw_mib_s")
            if e.get("status") == "ok" and isinstance(bw, (int, float)):
                key = (str(e.get("exp_id", "?")), str(e.get("spec", "?")))
                groups.setdefault(key, []).append(float(bw))
        return groups

    def bimodality_flags(self) -> list[dict[str, Any]]:
        """Bi-modality verdicts for every group with enough samples."""
        flags: list[dict[str, Any]] = []
        for (exp, spec), values in sorted(self.bandwidth_groups().items()):
            row: dict[str, Any] = {
                "exp_id": exp,
                "spec": spec,
                "n": len(values),
                "mean": sum(values) / len(values),
                "min": min(values),
                "max": max(values),
            }
            if len(values) >= _MIN_BIMODAL_N:
                try:
                    verdict = is_bimodal(values)
                except AnalysisError:
                    row.update(bimodal=None, coefficient=None, modes=None)
                else:
                    row.update(
                        bimodal=verdict.bimodal,
                        coefficient=verdict.coefficient,
                        modes=verdict.mixture.means if verdict.bimodal else None,
                    )
            else:
                row.update(bimodal=None, coefficient=None, modes=None)
            flags.append(row)
        return flags

    def fault_summary(self) -> list[tuple[str, str, int]]:
        tally: TallyCounter[tuple[str, str]] = TallyCounter(
            (str(e.get("kind", "?")), str(e.get("component", "?"))) for e in self.faults
        )
        return [(kind, comp, n) for (kind, comp), n in sorted(tally.items())]

    def worker_summary(self) -> list[dict[str, Any]]:
        """Per-worker throughput of a parallel campaign, by dense id.

        Built from ``worker.end`` events; an empty list means the
        campaign ran serially.
        """
        by_worker: dict[int, dict[str, Any]] = {}
        for e in self.worker_ends:
            row = by_worker.setdefault(
                int(e.get("worker", -1)), {"runs": 0, "ok": 0, "busy_s": 0.0}
            )
            row["runs"] += 1
            if e.get("status") == "ok":
                row["ok"] += 1
            elapsed = e.get("elapsed_s")
            if isinstance(elapsed, (int, float)):
                row["busy_s"] += float(elapsed)
        return [
            {
                "worker": worker,
                **row,
                "runs_per_s": row["runs"] / row["busy_s"] if row["busy_s"] > 0 else None,
            }
            for worker, row in sorted(by_worker.items())
        ]

    def slo_summary(self) -> dict[str, Any] | None:
        """The service's SLO state: last sample + violation tally.

        Built from ``server.slo`` events (a remote campaign's server
        emits one every few completions); None for local campaigns.
        """
        if not self.slo_events:
            return None
        last = self.slo_events[-1]
        violations = sum(1 for e in self.slo_events if e.get("ok") is False)
        return {
            "samples": len(self.slo_events),
            "violations": violations,
            "queue_wait_p99_s": last.get("queue_wait_p99_s"),
            "shed_rate": last.get("shed_rate"),
            "hit_ratio": last.get("hit_ratio"),
            "burn_rate": last.get("burn_rate"),
            "ok": last.get("ok"),
        }

    def server_series(self) -> dict[str, list[tuple[float, float]]]:
        """Observed per-server series from the last run.end carrying them."""
        for e in reversed(self.run_ends):
            servers = e.get("servers")
            if isinstance(servers, Mapping) and servers:
                return {
                    str(rid): [(float(t), float(v)) for t, v in pts]
                    for rid, pts in sorted(servers.items())
                }
        return {}

    # -- rendering -------------------------------------------------------------

    def render(self, timelines: bool = True) -> str:
        """The full dashboard as one string of stacked ASCII panels."""
        panels: list[str] = []
        total = len(self.run_ends)
        header = (
            f"campaign dashboard: {len(self.events)} events, {total} runs, "
            f"{len(self.checkpoints)} checkpoints"
        )
        panels.append(header)

        rows = self.progress()
        if rows:
            panels.append(
                render_table(
                    ["experiment", "runs", "ok", "failed", "quarantined", "retries", "sim wall"],
                    [
                        [
                            r["exp_id"],
                            r["runs"],
                            r["ok"],
                            r["failed"],
                            r["quarantined"],
                            r["retries"],
                            f"{r['wall_s']:.1f}s",
                        ]
                        for r in rows
                    ],
                    title="progress:",
                )
            )
            failed = sum(r["failed"] for r in rows)
            quarantined = sum(r["quarantined"] for r in rows)
            if total:
                panels.append(
                    f"  failure rate {failed / total:.1%} · "
                    f"quarantine rate {quarantined / total:.1%}"
                )

        flags = self.bimodality_flags()
        if flags:

            def flag_cell(row: Mapping[str, Any]) -> str:
                if row["bimodal"] is None:
                    return f"n<{_MIN_BIMODAL_N}" if row["n"] < _MIN_BIMODAL_N else "-"
                if row["bimodal"]:
                    lo, hi = row["modes"]
                    return f"BIMODAL ({lo:.0f} / {hi:.0f})"
                return "unimodal"

            panels.append(
                render_table(
                    ["experiment", "spec", "n", "mean", "min", "max", "verdict"],
                    [
                        [
                            r["exp_id"],
                            r["spec"],
                            r["n"],
                            _fmt(r["mean"]),
                            _fmt(r["min"]),
                            _fmt(r["max"]),
                            flag_cell(r),
                        ]
                        for r in flags
                    ],
                    title="bandwidth distributions (MiB/s):",
                )
            )

        workers = self.worker_summary()
        if workers:
            panels.append(
                render_table(
                    ["worker", "runs", "ok", "busy", "runs/s"],
                    [
                        [
                            w["worker"],
                            w["runs"],
                            w["ok"],
                            f"{w['busy_s']:.1f}s",
                            _fmt(w["runs_per_s"], ".2f"),
                        ]
                        for w in workers
                    ],
                    title="parallel workers (real time):",
                )
            )

        fault_rows = self.fault_summary()
        if fault_rows:
            panels.append(
                render_table(
                    ["fault kind", "component", "triggers"],
                    [[k, c, n] for k, c, n in fault_rows],
                    title="fault activity:",
                )
            )

        slo = self.slo_summary()
        if slo is not None:
            state = "OK" if slo["ok"] else "VIOLATED"
            hit = slo["hit_ratio"]
            panels.append(
                f"service SLO: {state} · burn {_fmt(slo['burn_rate'], '.2f')}x · "
                f"queue-wait p99 {_fmt(slo['queue_wait_p99_s'], '.3f')}s · "
                f"shed rate {_fmt(slo['shed_rate'], '.1%')} · "
                f"hit ratio {_fmt(hit, '.1%') if hit is not None else '-'} · "
                f"{slo['violations']}/{slo['samples']} samples violated"
            )

        if timelines:
            series = self.server_series()
            if series:
                try:
                    panels.append(
                        timeline_panel(series, "per-server load (last observed run):")
                    )
                except AnalysisError:
                    # Degenerate series (no positive span) cannot plot;
                    # say so instead of silently dropping the panel.
                    panels.append(
                        "per-server load: panel skipped — the observed series "
                        "span no positive range (constant or single-point data)"
                    )

        if self.metrics:
            metric_rows = []
            for name, m in sorted(self.metrics.items()):
                if m.get("type") in ("counter", "gauge"):
                    metric_rows.append([name, m["type"], f"{m['value']:g}"])
                else:
                    q = m.get("quantiles", {})
                    detail = (
                        f"n={m['count']} p50={_fmt(q.get('p50'), '.3g')} "
                        f"p99={_fmt(q.get('p99'), '.3g')} max={_fmt(m.get('max'), '.3g')}"
                    )
                    metric_rows.append([name, "histogram", detail])
            panels.append(
                render_table(["metric", "type", "value"], metric_rows, title="metrics:")
            )

        if len(panels) == 1:
            panels.append("  (no run.end events yet — campaign still warming up?)")
        return "\n\n".join(panels)
