"""The structured event taxonomy and its JSONL schema.

Every event is a flat JSON object sharing the same envelope:

=============  ================================================================
field          meaning
=============  ================================================================
``schema``     integer schema version (currently :data:`SCHEMA_VERSION`)
``seq``        per-stream monotone sequence number (0-based)
``event``      the event type, one of :data:`EVENT_TYPES`
``t``          *simulated* time in seconds when the event has one, else null.
               For protocol-level events (``run.*``, ``checkpoint.write``)
               this is the campaign's simulated wall clock; for engine-level
               events (``flow.*``, ``fault.*``, ``segment.solve``) it is the
               run-internal simulation time.  Real wall-clock timestamps are
               deliberately absent so event streams are deterministic and
               replayable byte for byte.
=============  ================================================================

plus the per-type payload fields listed in :data:`EVENT_TYPES`.  The
taxonomy is closed: an unknown ``event`` value fails validation, which
is how CI proves that the emitting code and this published schema never
drift apart (see ``repro tail --validate``).

Event levels: most events are ``info``; high-cardinality per-segment and
per-flow-admission events (``segment.solve``, ``flow.start``) are
``debug`` and only emitted when the bus runs at debug level, keeping the
default stream compact even for 100-repetition campaigns.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from ..errors import TelemetryError

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "DEBUG_EVENTS",
    "ENVELOPE_FIELDS",
    "validate_event",
    "validate_jsonl",
]

SCHEMA_VERSION = 1

# Envelope fields present on every event.  ``t`` is nullable.
ENVELOPE_FIELDS: dict[str, tuple[type, ...]] = {
    "schema": (int,),
    "seq": (int,),
    "event": (str,),
    "t": (int, float, type(None)),
}

# Per-type payload: field name -> accepted JSON types.  A ``type(None)``
# entry marks the field nullable; fields listed here are required.
# Optional fields live in _OPTIONAL_FIELDS below.
EVENT_TYPES: dict[str, dict[str, tuple[type, ...]]] = {
    # -- protocol-level (simulated campaign wall clock) ----------------------
    "run.start": {
        "exp_id": (str,),
        "scenario": (str,),
        "spec": (str,),
        "rep": (int,),
        "block": (int,),
    },
    "run.end": {
        "exp_id": (str,),
        "scenario": (str,),
        "spec": (str,),
        "rep": (int,),
        "block": (int,),
        "status": (str,),  # "ok" | "failed" | "quarantined"
        "bw_mib_s": (int, float, type(None)),
        "makespan_s": (int, float, type(None)),
        "retries": (int,),
        "complete": (bool,),
        "error_type": (str, type(None)),
    },
    "checkpoint.write": {
        "path": (str,),
        "records": (int,),
        "failures": (int,),
    },
    # One pair per run executed by a parallel-campaign worker, emitted by
    # the parent at merge time: the (spec, rep, seed) triple attributes
    # the run, ``elapsed_s`` is the worker's real execution time (the
    # one deliberate exception to the no-wall-clock rule: it measures
    # the machine, not the simulation, and ``t`` stays null).
    "worker.start": {
        "worker": (int,),
        "spec": (str,),
        "rep": (int,),
        "seed": (int,),
    },
    "worker.end": {
        "worker": (int,),
        "spec": (str,),
        "rep": (int,),
        "seed": (int,),
        "status": (str,),  # "ok" | "failed" | "quarantined"
        "elapsed_s": (int, float, type(None)),
    },
    # -- orchestration (durable queue, supervision, graceful degradation) ----
    # Liveness signal from a supervised worker process (debug level:
    # several per second per worker).
    "worker.heartbeat": {"pid": (int,)},
    # A (spec, rep) run handed to a worker (debug level).
    "orchestrator.dispatch": {
        "spec": (str,),
        "rep": (int,),
        "attempt": (int,),
        "worker": (int,),
    },
    # A chunk of runs shipped to one worker in a single message (debug
    # level): ``size`` runs, ``specs`` distinct spec payloads after
    # per-batch dedup.
    "orchestrator.batch": {
        "batch": (int,),
        "size": (int,),
        "specs": (int,),
    },
    # An infra fault (dead/hung/stalled worker) sent a run back to the
    # queue with a backoff delay.
    "orchestrator.requeue": {
        "spec": (str,),
        "rep": (int,),
        "attempt": (int,),
        "reason": (str,),  # "worker-died" | "timeout" | "stalled"
        "delay_s": (int, float),
    },
    # Retry budget exhausted: the run becomes a structured failure under
    # the normal on_error policy.
    "orchestrator.quarantine": {
        "spec": (str,),
        "rep": (int,),
        "attempts": (int,),
        "reason": (str,),
    },
    # A journaled lease from a dead or expired owner was reclaimed on open.
    "orchestrator.reclaim": {
        "key": (str,),
        "rep": (int,),
        "owner": (str, type(None)),
    },
    # SIGINT/SIGTERM received: dispatch stops, in-flight work drains.
    "orchestrator.drain": {
        "signal": (str,),
        "pending": (int,),
        "inflight": (int,),
    },
    # Cache-tier circuit breaker changed state.
    "orchestrator.breaker": {
        "state": (str,),  # "closed" | "open" | "half-open"
        "failures": (int,),
    },
    # A checkpoint could not be parsed; the campaign degrades to a fresh
    # store (runs re-execute) instead of raising.
    "checkpoint.corrupt": {"path": (str,), "error": (str,)},
    # Size-bounded cache eviction pass (repro cache gc).
    "cache.gc": {
        "evicted": (int,),
        "freed_bytes": (int,),
        "remaining_bytes": (int,),
    },
    # A cache tier degraded or faulted during a tiered lookup/store
    # (emitted outside the capture ring, so cached event streams never
    # carry it).  Routine hits/misses are counters, not events.
    "cache.tier": {
        "tier": (str,),  # "memory" | "disk" | "remote"
        "status": (str,),  # "error" | "degraded"
    },
    # -- networked orchestrator server ---------------------------------------
    # The server began accepting connections on its port.
    "server.start": {"port": (int,), "pid": (int,), "state_dir": (str,)},
    # A new (fingerprint, rep) job was admitted into the durable queue.
    # Emitted exactly once per unique job — duplicate resubmissions of
    # the same identity attach to the existing job instead (this is the
    # counter the idempotency contract is verified against).
    "server.admit": {
        "job": (str,),
        "rep": (int,),
        "priority": (str,),
        "session": (str,),
    },
    # Admission control refused a submit: the client got a RetryAfter.
    "server.shed": {
        "reason": (str,),  # "capacity" | "draining"
        "priority": (str,),
        "retry_after_s": (int, float),
        "pending": (int,),
    },
    # A job reached a terminal state; ``cached`` marks replays that
    # never executed (idempotent resubmission of finished work).
    "server.complete": {
        "job": (str,),
        "rep": (int,),
        "status": (str,),  # "ok" | "failed"
        "cached": (bool,),
    },
    # Client session lifecycle (leases journaled through the WAL).
    "server.session": {
        "action": (str,),  # "open" | "renew" | "close" | "expire" | "resume"
        "session": (str,),
    },
    # The server stopped admitting and is finishing leased jobs.
    "server.drain": {
        "reason": (str,),  # "SIGTERM" | "SIGINT" | "shutdown"
        "pending": (int,),
    },
    # A worker leased a queued job; ``queue_wait_s`` is the real time it
    # sat admitted-but-unleased (machine time, ``t`` stays null — the
    # same deliberate exception as ``worker.end.elapsed_s``).
    "server.lease": {
        "job": (str,),
        "rep": (int,),
        "queue_wait_s": (int, float, type(None)),
    },
    # Periodic SLO evaluation over the server's sliding window: queue
    # wait p99 vs target, shed rate vs budget, cache hit ratio vs floor,
    # and the combined burn rate (1.0 = exactly on budget).
    "server.slo": {
        "window": (int,),
        "queue_wait_p99_s": (int, float, type(None)),
        "shed_rate": (int, float),
        "hit_ratio": (int, float, type(None)),
        "burn_rate": (int, float),
        "ok": (bool,),
    },
    # -- remote client -------------------------------------------------------
    # A job entered the distributed pipeline: the client (or local
    # runner) minted its trace context and is about to submit.  Only
    # emitted when the session runs with tracing enabled.
    "job.submit": {"job": (str,), "rep": (int,), "attempt": (int,)},
    # A client op failed transiently and will be retried after a delay.
    "client.retry": {
        "op": (str,),
        "attempt": (int,),
        "delay_s": (int, float),
        "reason": (str,),
    },
    # The server stayed unreachable: the run executed locally instead.
    "client.fallback": {"job": (str,), "rep": (int,), "reason": (str,)},
    # -- chaos harness -------------------------------------------------------
    "chaos.inject": {"kind": (str,), "target": (str,)},
    "chaos.verdict": {"kind": (str,), "ok": (bool,), "detail": (str,)},
    # -- engine-level (run-internal simulation time) -------------------------
    "flow.start": {"flow_id": (str,)},
    "flow.retry": {"flow_id": (str,), "attempt": (int,)},
    "flow.abandon": {"flow_id": (str,), "attempt": (int,)},
    "fault.trigger": {
        "kind": (str,),
        "component": (str,),
        "multiplier": (int, float),
    },
    "fault.clear": {"kind": (str,), "component": (str,)},
    "segment.solve": {
        "dt": (int, float),
        "active": (int,),
        "iterations": (int,),
    },
    "invariant.check": {
        "context": (str,),
        "level": (str,),
        "segments": (int,),
        "ok": (bool,),
    },
    # -- session-level -------------------------------------------------------
    "trace.record": {"key": (str,)},
    # A span boundary marker emitted by tracing-enabled sessions:
    # ``name`` is one of the stable span names (repro.telemetry.trace),
    # ``phase`` is "begin" or "end"; optional ``elapsed_s`` (machine
    # time, ``t`` null) and ``status`` (e.g. cache "hit"/"miss") ride
    # on the "end" marker.
    "trace.span": {"name": (str,), "phase": (str,)},
    "metrics.snapshot": {"metrics": (dict,)},
}

# Events only emitted when the bus runs at debug level.
DEBUG_EVENTS = frozenset(
    {
        "flow.start",
        "segment.solve",
        "trace.record",
        "worker.heartbeat",
        "orchestrator.dispatch",
        "orchestrator.batch",
    }
)

# Optional per-type payload fields (validated when present).
_OPTIONAL_FIELDS: dict[str, dict[str, tuple[type, ...]]] = {
    "run.end": {"servers": (dict,)},
    # The batch id a dispatched run travelled in (batched dispatch).
    "orchestrator.dispatch": {"batch": (int,)},
    "invariant.check": {"detail": (str,)},
    "trace.record": {"value": (int, float, str, bool, type(None))},
    "segment.solve": {"binding": (list,)},
    # Real execution time of the job on its worker (tracing sessions
    # only; machine time, ``t`` null — the worker.end precedent).
    "server.complete": {"elapsed_s": (int, float, type(None))},
    "trace.span": {
        "elapsed_s": (int, float, type(None)),
        "status": (str,),
    },
    # Which tier's breaker transitioned (absent: the disk tier of
    # record, the pre-tiering emitter) / which tier was collected.
    "orchestrator.breaker": {"tier": (str,)},
    "cache.gc": {"tier": (str,)},
}

# Optional fields accepted on *every* event type: ``worker`` tags an
# event re-emitted from a parallel-campaign worker with its dense id;
# ``trace``/``span``/``parent`` are the deterministic distributed-trace
# ids (repro.telemetry.trace) stamped by tracing-enabled sessions —
# sha256-derived from the job identity, never random, so identical
# campaigns stamp identical ids and the schema stays diff-stable.
_COMMON_OPTIONAL: dict[str, tuple[type, ...]] = {
    "worker": (int,),
    "trace": (str,),
    "span": (str,),
    "parent": (str, type(None)),
}

_STATUS_VALUES = ("ok", "failed", "quarantined")


def _type_names(types: tuple[type, ...]) -> str:
    return "/".join("null" if t is type(None) else t.__name__ for t in types)


def validate_event(obj: Any) -> list[str]:
    """Validate one decoded event against the schema; return the problems.

    An empty list means the event is schema-valid.  Booleans are *not*
    accepted where numbers are expected (JSON distinguishes them; so do
    we).
    """
    if not isinstance(obj, Mapping):
        return [f"event must be a JSON object, got {type(obj).__name__}"]
    problems: list[str] = []

    def check(field: str, types: tuple[type, ...], required: bool) -> None:
        if field not in obj:
            if required:
                problems.append(f"missing field {field!r}")
            return
        value = obj[field]
        # bool is a subclass of int: accept it only where bool is listed.
        if isinstance(value, bool) and bool not in types:
            problems.append(f"field {field!r}: expected {_type_names(types)}, got bool")
            return
        if not isinstance(value, types):
            problems.append(
                f"field {field!r}: expected {_type_names(types)}, "
                f"got {type(value).__name__}"
            )

    for field, types in ENVELOPE_FIELDS.items():
        check(field, types, required=True)
    if problems:
        return problems

    if obj["schema"] != SCHEMA_VERSION:
        problems.append(f"unsupported schema version {obj['schema']!r}")
    etype = obj["event"]
    payload_spec = EVENT_TYPES.get(etype)
    if payload_spec is None:
        problems.append(f"unknown event type {etype!r}")
        return problems
    for field, types in payload_spec.items():
        check(field, types, required=True)
    for field, types in _OPTIONAL_FIELDS.get(etype, {}).items():
        check(field, types, required=False)
    for field, types in _COMMON_OPTIONAL.items():
        if field not in payload_spec:
            check(field, types, required=False)
    known = (
        set(ENVELOPE_FIELDS)
        | set(payload_spec)
        | set(_OPTIONAL_FIELDS.get(etype, {}))
        | set(_COMMON_OPTIONAL)
    )
    extra = sorted(set(obj) - known)
    if extra:
        problems.append(f"unknown fields for {etype!r}: {', '.join(extra)}")
    if etype in ("run.end", "worker.end") and obj.get("status") not in _STATUS_VALUES:
        problems.append(f"{etype} status must be one of {_STATUS_VALUES}")
    return problems


def validate_jsonl(path: str | Path) -> list[str]:
    """Validate every line of a JSONL event stream.

    Returns one ``"line N: problem"`` string per defect; empty means the
    whole stream is schema-valid.  An unreadable file raises
    :class:`~repro.errors.TelemetryError`.
    """
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise TelemetryError(f"cannot read event stream {path}: {exc}") from exc
    problems: list[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        for problem in validate_event(obj):
            problems.append(f"line {lineno}: {problem}")
    return problems
