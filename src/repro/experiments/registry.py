"""Experiment registry: the per-figure index of DESIGN.md as code."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import ExperimentError
from ..methodology.plan import ExperimentSpec
from .common import ExperimentOutput

__all__ = ["ExperimentInfo", "EXPERIMENTS", "register", "get_experiment", "list_experiments"]


@dataclass(frozen=True)
class ExperimentInfo:
    """One reproducible artefact of the paper."""

    exp_id: str
    title: str
    paper_ref: str
    run: Callable[..., ExperimentOutput]
    default_repetitions: int = 100
    specs: Callable[[], list[ExperimentSpec]] | None = field(default=None, compare=False)

    def sweep_size(self) -> int | None:
        """Compiled sweep size (specs x default repetitions), if declarative."""
        if self.specs is None:
            return None
        return len(self.specs()) * self.default_repetitions


EXPERIMENTS: dict[str, ExperimentInfo] = {}


def register(info: ExperimentInfo) -> ExperimentInfo:
    if info.exp_id in EXPERIMENTS:
        raise ExperimentError(f"duplicate experiment id {info.exp_id!r}")
    EXPERIMENTS[info.exp_id] = info
    return info


def get_experiment(exp_id: str) -> ExperimentInfo:
    _ensure_loaded()
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


def list_experiments() -> list[ExperimentInfo]:
    _ensure_loaded()
    return [EXPERIMENTS[k] for k in sorted(EXPERIMENTS)]


def _ensure_loaded() -> None:
    """Import every experiment module exactly once (self-registration)."""
    from . import (  # noqa: F401
        exp_datasize,
        exp_nodes,
        exp_ppn,
        exp_stripecount,
        exp_linkmodel,
        exp_timeline,
        exp_nodes_stripes,
        exp_concurrent,
        exp_sharing,
        exp_choosers,
        exp_read,
        exp_patterns,
        exp_scaleout,
        exp_metadata,
        exp_chunksize,
        exp_interference,
        exp_lessons,
        exp_faults,
    )
