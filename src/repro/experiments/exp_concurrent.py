"""Figure 12 — concurrent applications sharing the storage targets.

Scenario 2 (storage-bound, where sharing would hurt if it could): 2, 3
or 4 identical applications on disjoint 8-node sets, each writing
32 GiB with stripe count 2, 4 or 8.  For every configuration the
paper compares:

* the applications' *individual* bandwidths (stacked bars) against a
  single-application baseline with the same parameters (8 nodes, same
  stripe count), and
* their Equation-1 *aggregate* against a single application scaled to
  the sum of the resources (8 x m nodes, min(8, k x m) targets).

The finding (Lesson 7): the aggregate matches — or slightly exceeds —
the scaled single application even when all targets are shared, so the
individual slow-down is bandwidth *sharing*, not target contention.
"""

from __future__ import annotations

import numpy as np

from ..figures.ascii import bar_panel, render_table
from ..methodology.plan import ExperimentSpec
from .common import ExperimentOutput, run_specs, sweep
from .registry import ExperimentInfo, register

EXP_ID = "fig12"
TITLE = "Concurrent applications: individual and aggregate bandwidth"
PAPER_REF = "Figure 12 (a: 2 apps, b: 3 apps, c: 4 apps)"

APP_COUNTS = (2, 3, 4)
STRIPE_COUNTS = (2, 4, 8)
NODES_PER_APP = 8
PPN = 8


def specs() -> list[ExperimentSpec]:
    out = []
    for k in STRIPE_COUNTS:
        # Same-parameters baseline: one application, 8 nodes, stripe k.
        out += sweep(
            EXP_ID,
            scenario="scenario2",
            num_apps=1,
            stripe_count=k,
            num_nodes=NODES_PER_APP,
            ppn=PPN,
            total_gib=32,
        )
        for m in APP_COUNTS:
            # Scaled baseline: one application with m x nodes and
            # min(8, k x m) targets.
            out += sweep(
                EXP_ID,
                scenario="scenario2",
                num_apps=1,
                stripe_count=min(8, k * m),
                num_nodes=NODES_PER_APP * m,
                ppn=PPN,
                total_gib=32,
                scaled_baseline_for=f"{m}x{k}",
            )
            # The concurrent run itself (each app writes 32 GiB).
            out += sweep(
                EXP_ID,
                scenario="scenario2",
                num_apps=m,
                stripe_count=k,
                num_nodes=NODES_PER_APP,
                nodes_per_app=NODES_PER_APP,
                ppn=PPN,
                total_gib=32,
            )
    return out


def render(records) -> str:
    parts = []
    for m in APP_COUNTS:
        bars = {}
        rows = []
        for k in STRIPE_COUNTS:
            single = records.filter(num_apps=1, stripe_count=k, num_nodes=NODES_PER_APP).filter(
                predicate=lambda r: "scaled_baseline_for" not in r.factors
            )
            scaled = records.filter(predicate=lambda r, m=m, k=k: r.factors.get("scaled_baseline_for") == f"{m}x{k}")
            concurrent = records.filter(num_apps=m, stripe_count=k)
            if len(concurrent) == 0:
                continue
            per_app_means = []
            for i in range(m):
                vals = [r.apps[i]["bw_mib_s"] for r in concurrent]
                per_app_means.append((f"app{i}", float(np.mean(vals))))
            bars[f"k={k} concurrent"] = per_app_means
            single_mean = float(single.bandwidths().mean()) if len(single) else float("nan")
            scaled_mean = float(scaled.bandwidths().mean()) if len(scaled) else float("nan")
            bars[f"k={k} single"] = [("single", single_mean)]
            bars[f"k={k} scaled"] = [("single", scaled_mean)]
            agg = float(concurrent.aggregates().mean())
            indiv = float(np.mean([s for _, s in per_app_means]))
            rows.append(
                [
                    k,
                    f"{indiv:.0f}",
                    f"{single_mean:.0f}",
                    f"{(indiv / single_mean - 1) * 100:+.0f}%",
                    f"{agg:.0f}",
                    f"{scaled_mean:.0f}",
                    f"{(agg / scaled_mean - 1) * 100:+.0f}%",
                ]
            )
        parts.append(
            bar_panel(bars, f"Fig 12 ({m} concurrent apps): stacked individual bandwidths")
        )
        parts.append(
            render_table(
                [
                    "stripe",
                    "mean indiv",
                    "single base",
                    "indiv vs base",
                    "aggregate (Eq.1)",
                    "scaled base",
                    "agg vs scaled",
                ],
                rows,
                f"Fig 12 summary ({m} apps)",
            )
        )
    return "\n\n".join(parts)


def run(repetitions: int = 100, seed: int = 0, progress=None) -> ExperimentOutput:
    records = run_specs(specs(), repetitions=repetitions, seed=seed, progress=progress)
    return ExperimentOutput(
        exp_id=EXP_ID,
        title=TITLE,
        records=records,
        figure=render(records),
        notes=(
            "Aggregate should track the scaled single-app baseline (sharing does not "
            "degrade global performance); individual bandwidth drops as 1/m-ish "
            "(bandwidth sharing, up to ~20% extra at stripe 2 without any target sharing)."
        ),
    )


register(ExperimentInfo(EXP_ID, TITLE, PAPER_REF, run, specs=specs))
