"""The paper's experiments, one module per figure.

Every module exposes the same surface:

* ``EXP_ID`` / ``TITLE`` / ``PAPER_REF`` constants,
* ``run(repetitions=..., seed=...) -> ExperimentOutput`` executing the
  experiment under the Section III-C protocol and rendering its figure,

and registers itself in :mod:`repro.experiments.registry`, which the
CLI and the benchmark harness consume.

Default repetition counts are the paper's 100; tests and benchmarks
pass reduced counts.
"""

from .common import ExperimentOutput, StandardExecutor, protocol_options, run_specs
from .registry import EXPERIMENTS, ExperimentInfo, get_experiment, list_experiments

__all__ = [
    "ExperimentOutput",
    "StandardExecutor",
    "run_specs",
    "protocol_options",
    "EXPERIMENTS",
    "ExperimentInfo",
    "get_experiment",
    "list_experiments",
]
