"""Extension — larger file system deployments (future work).

"Future work directions include testing their validity in larger scale
systems, especially with larger file system deployments" (Section VI).
This experiment scales the deployment from 2 to 8 storage hosts (4
targets each, same per-host hardware; the system-wide ramp base scales
with the host count — a documented assumption) and asks whether the
paper's recommendations survive:

* does "use the maximum stripe count" still win as the target pool
  grows to 32?
* does the balanced chooser still dominate round-robin at partial
  stripe counts?
* does the node count needed for peak keep growing with deployment
  size (the Lesson 1/6 generalisation)?
"""

from __future__ import annotations

from dataclasses import replace

from ..beegfs.filesystem import BeeGFSDeploymentSpec
from ..beegfs.meta import DirectoryConfig
from ..calibration.plafrim import Calibration, scenario2
from ..figures.ascii import render_table
from ..methodology.plan import ExperimentSpec
from ..methodology.records import RecordStore
from ..scenario import ScenarioSpec
from ..service import BuiltScenario, register_builder
from ..stats.summary import describe
from ..topology.builders import build_platform, plafrim_spec
from ..workload.generator import single_application
from .common import ExperimentOutput, run_specs, sweep
from .registry import ExperimentInfo, register

EXP_ID = "scaleout"
TITLE = "Deployment scale-out: 2 to 8 storage hosts"
PAPER_REF = "Section VI (future work: larger deployments)"

NUM_HOSTS = (2, 4, 8)
NUM_NODES = 32
PPN = 8


def scaled_deployment(num_hosts: int, stripe_count: int, chooser: str) -> BeeGFSDeploymentSpec:
    """A PlaFRIM-style deployment with ``num_hosts`` x 4 targets."""
    servers = tuple(
        (f"storage{i + 1}", tuple(100 * (i + 1) + t for t in range(1, 5)))
        for i in range(num_hosts)
    )
    # The interleaved ordering generalises PlaFRIM's: first target of
    # each host, then the remaining targets host-major.
    ordering = [servers[0][1][0]]
    for host, tids in servers[1:]:
        ordering.extend(tids)
    ordering.extend(servers[0][1][1:])
    return BeeGFSDeploymentSpec(
        servers=servers,
        default_config=DirectoryConfig(stripe_count=stripe_count),
        default_chooser=chooser,
        target_ordering=tuple(ordering),
        keep_data=False,
    )


def scaled_calibration(num_hosts: int) -> Calibration:
    """Scenario 2 with the system ramp scaled to the host count."""
    base = scenario2()
    scale = num_hosts / 2.0
    return base.with_overrides(
        name=f"scenario2-{num_hosts}hosts",
        san=replace(base.san, base_mib_s=base.san.base_mib_s * scale),
    )


def _build_scaleout(scenario: ScenarioSpec) -> BuiltScenario:
    """Service builder for the scaled deployments (bespoke platform)."""
    from ..engine.des_runner import DESEngine
    from ..engine.fluid_runner import FluidEngine

    hosts = int(scenario.factor("num_hosts"))
    calib = scaled_calibration(hosts)
    platform_spec = replace(
        plafrim_spec(calib.network, NUM_NODES), num_storage_hosts=hosts
    )
    topology = build_platform(platform_spec)
    deployment = scaled_deployment(
        hosts, int(scenario.factor("stripe_count")), str(scenario.factor("chooser"))
    )
    engine_cls = {"fluid": FluidEngine, "des": DESEngine}[scenario.engine]
    engine = engine_cls(
        calib, topology, deployment, seed=scenario.seed, options=scenario.options
    )
    return BuiltScenario(
        engine=engine,
        topology=topology,
        make_apps=lambda: [single_application(topology, NUM_NODES, ppn=PPN)],
    )


register_builder("scaleout", _build_scaleout)


def specs() -> list[ExperimentSpec]:
    out: list[ExperimentSpec] = []
    for hosts in NUM_HOSTS:
        max_stripe = 4 * hosts
        out += sweep(
            EXP_ID,
            scenario="scenario2",
            num_hosts=hosts,
            stripe_count=tuple(sorted({1, 4, max_stripe // 2, max_stripe})),
            chooser=("roundrobin", "balanced"),
        )
    return out


def render(records: RecordStore) -> str:
    parts = []
    for hosts in NUM_HOSTS:
        sub = records.filter(num_hosts=hosts)
        if len(sub) == 0:
            continue
        rows = []
        for k in sorted(sub.factor_values("stripe_count")):
            rr = describe(sub.filter(stripe_count=k, chooser="roundrobin").bandwidths())
            bal = describe(sub.filter(stripe_count=k, chooser="balanced").bandwidths())
            rows.append([k, f"{rr.mean:.0f}+-{rr.std:.0f}", f"{bal.mean:.0f}+-{bal.std:.0f}"])
        parts.append(
            render_table(
                ["stripe", "roundrobin MiB/s", "balanced MiB/s"],
                rows,
                f"{hosts} storage hosts ({4 * hosts} targets), {NUM_NODES} nodes x {PPN} ppn",
            )
        )
    return "\n\n".join(parts)


def run(repetitions: int = 40, seed: int = 0, progress=None) -> ExperimentOutput:
    records = run_specs(
        specs(), repetitions=repetitions, seed=seed, builder="scaleout", progress=progress
    )
    return ExperimentOutput(
        exp_id=EXP_ID,
        title=TITLE,
        records=records,
        figure=render(records),
        notes="The maximum stripe count should win at every deployment size; "
        "balanced >= round-robin at partial counts; with 32 fixed nodes the "
        "biggest deployment is increasingly node-starved (Lesson 1 at scale).",
    )


register(ExperimentInfo(EXP_ID, TITLE, PAPER_REF, run, default_repetitions=40, specs=specs))
