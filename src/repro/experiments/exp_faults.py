"""Extension — I/O performance under storage target failures.

The paper measures allocation on a healthy system; production BeeGFS
deployments lose targets.  This experiment injects faults into the
calibrated scenario-1 model and asks the paper's question again under
degraded conditions:

* **Timeline** — a mid-run outage of target 201 (storage2's first
  target).  The client's chunk requests to it time out, back off and
  retry; per-server ingest throughput shows storage2 dropping while
  the outage lasts and the run stretching accordingly.
* **Degraded allocation** — target 201 permanently offline.  With 7
  surviving targets a stripe-4 allocation can no longer rely on the
  round-robin order being balanced; the ``failover`` chooser
  re-balances across the surviving servers.  We compare the (min, max)
  placement distributions and the achieved bandwidth.

Expected outcome: the mid-run outage stretches the makespan (chunk
requests to 201 retry until it recovers; max-min sharing lets the
surviving targets absorb part of the loss, so the stretch is shorter
than the outage) with no data lost; under the permanent failure
``failover`` keeps every placement at (2, 2) while round-robin's
rotations over the 7 survivors include unbalanced draws — up to
(0, 4), all targets on one server.
"""

from __future__ import annotations

from ..engine.base import EngineOptions
from ..faults import FaultSchedule, target_outage
from ..figures.ascii import render_table, timeline_panel
from ..methodology.plan import ExperimentSpec
from ..methodology.records import RecordStore, RunRecord
from ..scenario.compile import compile_scenario
from ..service import get_service
from ..stats.summary import describe
from .common import ExperimentOutput, run_specs, sweep
from .registry import ExperimentInfo, register

EXP_ID = "faults"
TITLE = "Fault injection: mid-run target outage and degraded allocation"
PAPER_REF = "extension of Section V (robustness; not in the paper)"

FAILED_TARGET = 201
OUTAGE_START_S = 5.0
OUTAGE_DURATION_S = 5.0
CHOOSERS = ("roundrobin", "failover")


def timeline_schedule() -> FaultSchedule:
    """Target 201 down for 5 s in the middle of the write."""
    return FaultSchedule([target_outage(FAILED_TARGET, OUTAGE_START_S, OUTAGE_DURATION_S)])


def degraded_schedule() -> FaultSchedule:
    """Target 201 permanently offline (from before the run starts)."""
    return FaultSchedule([target_outage(FAILED_TARGET, 0.0)])


def specs() -> list[ExperimentSpec]:
    return sweep(
        EXP_ID,
        scenario="scenario1",
        chooser=CHOOSERS,
        stripe_count=4,
        num_nodes=8,
        ppn=8,
        total_gib=32,
    )


def _run_timeline(seed: int) -> tuple[str, RecordStore]:
    records = RecordStore()
    panels = []
    outcomes = {}
    service = get_service()
    for label, schedule in (("healthy", None), ("outage", timeline_schedule())):
        options = EngineOptions(
            noise_enabled=False, observe_servers=True, fault_schedule=schedule
        )
        # Pin a balanced placement that includes the failing target, so
        # the outage demonstrably hits the striped file.
        spec = compile_scenario(
            ExperimentSpec(
                EXP_ID,
                "scenario1",
                {
                    "chooser": "fixed:101,201,102,202",
                    "stripe_count": 4,
                    "num_nodes": 8,
                    "ppn": 8,
                },
            ),
            seed=seed,
            options=options,
            max_nodes=8,
        )
        result = service.run(spec, 0)
        outcomes[label] = result
        records.append(
            RunRecord.from_run_result(
                result, EXP_ID, "scenario1", 0, {"stage": "timeline", "condition": label}
            )
        )
        if label == "outage":
            series = {
                rid.replace("ingest:", ""): list(zip(ts.times, ts.values))
                for rid, ts in result.resource_series.items()
            }
            panels.append(
                timeline_panel(
                    series,
                    f"Target {FAILED_TARGET} offline during "
                    f"[{OUTAGE_START_S:.0f}, {OUTAGE_START_S + OUTAGE_DURATION_S:.0f}) s: "
                    f"per-server throughput (run took {result.single.duration:.1f}s)",
                )
            )
    healthy, outage = outcomes["healthy"], outcomes["outage"]
    stretch = outage.makespan - healthy.makespan
    figure = "\n\n".join(panels) + (
        f"\n\nhealthy run: {healthy.makespan:.1f}s; with outage: {outage.makespan:.1f}s "
        f"(+{stretch:.1f}s for a {OUTAGE_DURATION_S:.0f}s outage), "
        f"{outage.retries} chunk-request timeouts, "
        f"{'no data lost' if outage.complete else f'{outage.abandoned_flows} flows abandoned'}."
    )
    return figure, records


def _render_degraded(records: RecordStore) -> str:
    rows = []
    for chooser in CHOOSERS:
        group = records.filter(chooser=chooser)
        if len(group) == 0:
            continue
        s = describe(group.bandwidths())
        placements = group.group_by_placement()
        dist = ", ".join(
            f"({min(p)},{max(p)}): {len(g) / len(group) * 100:.0f}%"
            for p, g in sorted(placements.items())
        )
        rows.append([chooser, f"{s.mean:.0f}+-{s.std:.0f}", dist])
    return render_table(
        ["chooser", "MiB/s", "(min,max) placements"],
        rows,
        f"Degraded allocation with target {FAILED_TARGET} permanently offline "
        "(7 surviving targets, stripe 4)",
    )


def run(repetitions: int = 30, seed: int = 0, progress=None) -> ExperimentOutput:
    timeline_figure, records = _run_timeline(seed)
    degraded = run_specs(
        specs(),
        repetitions=repetitions,
        seed=seed,
        options=EngineOptions(fault_schedule=degraded_schedule()),
        progress=progress,
    )
    records.extend(degraded)
    figure = timeline_figure + "\n\n" + _render_degraded(degraded)
    return ExperimentOutput(
        exp_id=EXP_ID,
        title=TITLE,
        records=records,
        figure=figure,
        notes="The outage should stretch the run (retries, no data loss); "
        "failover should keep placements at (2,2) and dominate round-robin "
        "on the degraded system in both mean and variance.",
    )


register(ExperimentInfo(EXP_ID, TITLE, PAPER_REF, run, default_repetitions=30, specs=specs))
