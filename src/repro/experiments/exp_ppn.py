"""Figure 5 — node scaling with 8 vs 16 processes per node.

Doubling the processes per node does *not* substitute for more nodes:
the node-scaling curves stay nearly identical, with a slight
degradation at 16 ppn in scenario 2 (intra-node contention, Lesson 3).
"""

from __future__ import annotations

from ..figures.ascii import render_table, series_panel
from ..methodology.plan import ExperimentSpec
from .common import ExperimentOutput, run_specs, sweep
from .registry import ExperimentInfo, register

EXP_ID = "fig5"
TITLE = "Node scaling at 8 vs 16 processes per node"
PAPER_REF = "Figure 5 (a: scenario 1, b: scenario 2)"

NODES = {"scenario1": (1, 2, 4, 8), "scenario2": (1, 2, 4, 8, 16, 32)}
PPNS = (8, 16)


def specs(scenarios: tuple[str, ...] = ("scenario1", "scenario2")) -> list[ExperimentSpec]:
    return sweep(
        EXP_ID,
        scenario=scenarios,
        ppn=PPNS,
        num_nodes=NODES,
        total_gib=32,
        stripe_count=4,
    )


def render(records) -> str:
    parts = []
    for scenario in ("scenario1", "scenario2"):
        sub = records.filter(scenario=scenario)
        if len(sub) == 0:
            continue
        series = {}
        rows = []
        for ppn in PPNS:
            pts = []
            for n, group in sorted(sub.filter(ppn=ppn).group_by_factor("num_nodes").items()):
                values = group.bandwidths()
                pts.append((float(n), list(values)))
            series[f"{ppn} ppn"] = pts
        for n in sorted(sub.factor_values("num_nodes")):
            mean8 = float(sub.filter(ppn=8, num_nodes=n).bandwidths().mean())
            mean16 = float(sub.filter(ppn=16, num_nodes=n).bandwidths().mean())
            rows.append([n, f"{mean8:.0f}", f"{mean16:.0f}", f"{(mean16 / mean8 - 1) * 100:+.1f}%"])
        parts.append(
            series_panel(series, f"Fig 5 ({scenario}): node scaling by ppn", xlabel="compute nodes")
        )
        parts.append(
            render_table(["nodes", "8 ppn", "16 ppn", "delta"], rows, f"Fig 5 summary ({scenario})")
        )
    return "\n\n".join(parts)


def run(repetitions: int = 100, seed: int = 0, scenarios=("scenario1", "scenario2"), progress=None) -> ExperimentOutput:
    records = run_specs(specs(tuple(scenarios)), repetitions=repetitions, seed=seed, progress=progress)
    return ExperimentOutput(
        exp_id=EXP_ID,
        title=TITLE,
        records=records,
        figure=render(records),
        notes="Curves should coincide within a few percent; 16 ppn slightly lower (Lesson 3).",
    )


register(ExperimentInfo(EXP_ID, TITLE, PAPER_REF, run, specs=specs))
