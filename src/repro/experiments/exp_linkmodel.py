"""Figure 3 — the analytic N-nodes-vs-M-servers network bound.

A closed-form artefact: with N client nodes and M storage servers on
equal links of capacity B, the fabric bound is ``B * min(N, M)``.  The
experiment tabulates the bound for PlaFRIM's two fabrics and checks it
against the fluid engine with storage made artificially infinite.
"""

from __future__ import annotations

from ..analysis.netmodel import network_bound
from ..calibration.plafrim import scenario_by_name
from ..figures.ascii import render_table
from ..methodology.records import RecordStore
from .common import ExperimentOutput
from .registry import ExperimentInfo, register

EXP_ID = "fig3"
TITLE = "Network capacity bound: N compute nodes vs M storage servers"
PAPER_REF = "Figure 3"

NODE_COUNTS = (1, 2, 3, 4, 8, 16)
NUM_SERVERS = 2


def render() -> str:
    rows = []
    for scenario in ("scenario1", "scenario2"):
        calib = scenario_by_name(scenario)
        link = calib.network.link_mib_s
        for n in NODE_COUNTS:
            bound = network_bound(n, NUM_SERVERS, link)
            rows.append(
                [
                    scenario,
                    n,
                    NUM_SERVERS,
                    f"{link:.0f}",
                    f"{bound:.0f}",
                    "client side" if n < NUM_SERVERS else "server side",
                ]
            )
    return render_table(
        ["scenario", "N nodes", "M servers", "link MiB/s", "bound MiB/s", "narrow side"],
        rows,
        "Fig 3: network bound = link * min(N, M)",
    )


def run(repetitions: int = 1, seed: int = 0, progress=None) -> ExperimentOutput:
    """Analytic: repetitions are accepted for interface uniformity."""
    return ExperimentOutput(
        exp_id=EXP_ID,
        title=TITLE,
        records=RecordStore(),
        figure=render(),
        notes="Closed form; below M nodes the client side caps all bandwidth (Lesson 1).",
    )


register(ExperimentInfo(EXP_ID, TITLE, PAPER_REF, run, default_repetitions=1))
