"""Extension — read performance (the paper's first future-work item).

"Although extending our conclusions to read performance will be the
subject of future work, based on the results by Chowdhury et al., we
expect the observed behaviors to be the same" (Section III-B).  This
experiment runs the stripe-count sweep with IOR read phases (``-r``)
and checks that expectation: the same placement/balance structure in
scenario 1 and the same near-linear growth in scenario 2, at slightly
higher absolute rates (no RAID-6 parity penalty — a documented
extrapolation, see ``Calibration.read_storage_factor``).
"""

from __future__ import annotations

from ..figures.ascii import render_table
from ..methodology.plan import ExperimentSpec
from ..stats.summary import describe
from .common import ExperimentOutput, run_specs, sweep
from .registry import ExperimentInfo, register

EXP_ID = "read"
TITLE = "Read-phase stripe count sweep (future-work extension)"
PAPER_REF = "Section III-B / VI (future work: read performance)"

STRIPE_COUNTS = (1, 2, 4, 6, 8)
NODES = {"scenario1": 8, "scenario2": 32}


def specs(scenarios: tuple[str, ...] = ("scenario1", "scenario2")) -> list[ExperimentSpec]:
    return sweep(
        EXP_ID,
        scenario=scenarios,
        operation=("write", "read"),
        stripe_count=STRIPE_COUNTS,
        num_nodes=NODES,
        ppn=8,
        total_gib=32,
    )


def render(records) -> str:
    parts = []
    for scenario in ("scenario1", "scenario2"):
        sub = records.filter(scenario=scenario)
        if len(sub) == 0:
            continue
        rows = []
        for k in STRIPE_COUNTS:
            w = describe(sub.filter(stripe_count=k, operation="write").bandwidths())
            r = describe(sub.filter(stripe_count=k, operation="read").bandwidths())
            rows.append(
                [k, f"{w.mean:.0f}+-{w.std:.0f}", f"{r.mean:.0f}+-{r.std:.0f}",
                 f"{(r.mean / w.mean - 1) * 100:+.0f}%"]
            )
        parts.append(
            render_table(
                ["stripe", "write MiB/s", "read MiB/s", "read vs write"],
                rows,
                f"Read vs write stripe sweep ({scenario})",
            )
        )
    return "\n\n".join(parts)


def run(repetitions: int = 100, seed: int = 0, scenarios=("scenario1", "scenario2"), progress=None) -> ExperimentOutput:
    records = run_specs(specs(tuple(scenarios)), repetitions=repetitions, seed=seed, progress=progress)
    return ExperimentOutput(
        exp_id=EXP_ID,
        title=TITLE,
        records=records,
        figure=render(records),
        notes="Expected: identical shapes to the write study; reads slightly "
        "faster where storage-bound, identical where network-bound.",
    )


register(ExperimentInfo(EXP_ID, TITLE, PAPER_REF, run, specs=specs))
