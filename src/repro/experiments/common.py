"""Shared experiment machinery.

:class:`StandardExecutor` turns an :class:`ExperimentSpec` plus a
repetition index into one engine run.  It understands the factor names
the paper's experiments sweep:

==================  =========================================================
factor              meaning (default)
==================  =========================================================
``num_nodes``       compute nodes of the application (8)
``ppn``             processes per node (8)
``total_gib``       total data volume in GiB (32)
``stripe_count``    per-directory stripe count (4)
``chooser``         target chooser name (deployment default: round-robin)
``transfer_mib``    IOR transfer size in MiB (1)
``pattern``         access pattern name (``n1-contiguous``)
``operation``       ``write`` (default) or ``read``
``num_apps``        concurrent applications on disjoint node sets (1)
``nodes_per_app``   nodes of each concurrent application (``num_nodes``)
==================  =========================================================

Engines (and their platform topologies) are cached per configuration
key so a 100-repetition protocol pays construction once.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

from ..calibration.plafrim import Calibration, scenario_by_name
from ..engine.base import EngineOptions, ValidationLevel
from ..engine.fluid_runner import FluidEngine
from ..engine.result import RunResult
from ..errors import ExperimentError
from ..methodology.plan import ExperimentPlan, ExperimentSpec
from ..methodology.protocol import ProtocolConfig
from ..methodology.parallel import ParallelProtocolRunner
from ..methodology.records import RecordStore
from ..methodology.runner import ProtocolRunner
from ..telemetry.profiling import get_profiler
from ..topology.graph import Topology
from ..units import GiB, MiB
from ..workload.application import Application
from ..workload.generator import concurrent_applications, single_application
from ..workload.patterns import AccessPattern

__all__ = [
    "ExperimentOutput",
    "StandardExecutor",
    "run_specs",
    "protocol_options",
    "AppsBuilder",
]

AppsBuilder = Callable[[Topology, Mapping[str, Any]], list[Application]]


@dataclass
class ExperimentOutput:
    """What running one experiment produces."""

    exp_id: str
    title: str
    records: RecordStore
    figure: str
    notes: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"{self.exp_id}: {self.title}\n{self.figure}"


def _pattern_from_name(name: str) -> AccessPattern:
    for pattern in AccessPattern:
        if pattern.value == name:
            return pattern
    raise ExperimentError(f"unknown access pattern {name!r}")


def default_apps_builder(topology: Topology, factors: Mapping[str, Any]) -> list[Application]:
    """Build the applications a factor dict describes (see module doc)."""
    num_nodes = int(factors.get("num_nodes", 8))
    ppn = int(factors.get("ppn", 8))
    total_bytes = int(float(factors.get("total_gib", 32)) * GiB)
    transfer = int(float(factors.get("transfer_mib", 1)) * MiB)
    pattern = _pattern_from_name(str(factors.get("pattern", "n1-contiguous")))
    operation = str(factors.get("operation", "write"))
    num_apps = int(factors.get("num_apps", 1))
    if num_apps == 1:
        return [
            single_application(
                topology,
                num_nodes,
                ppn=ppn,
                total_bytes=total_bytes,
                transfer_size=transfer,
                pattern=pattern,
                operation=operation,
            )
        ]
    nodes_per_app = int(factors.get("nodes_per_app", num_nodes))
    return concurrent_applications(
        topology,
        num_apps,
        nodes_per_app=nodes_per_app,
        ppn=ppn,
        total_bytes_each=total_bytes,
        transfer_size=transfer,
        pattern=pattern,
    )


@dataclass
class StandardExecutor:
    """Executor for :class:`~repro.methodology.runner.ProtocolRunner`."""

    seed: int = 0
    options: EngineOptions = field(default_factory=EngineOptions)
    engine_cls: type = FluidEngine
    max_nodes: int = 32
    apps_builder: AppsBuilder = field(default=None)  # type: ignore[assignment]
    _calibrations: dict[str, Calibration] = field(default_factory=dict, repr=False)
    _topologies: dict[str, Topology] = field(default_factory=dict, repr=False)
    _engines: dict[str, Any] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.apps_builder is None:
            self.apps_builder = default_apps_builder

    def calibration(self, scenario: str) -> Calibration:
        if scenario not in self._calibrations:
            self._calibrations[scenario] = scenario_by_name(scenario)
        return self._calibrations[scenario]

    def topology(self, scenario: str) -> Topology:
        if scenario not in self._topologies:
            self._topologies[scenario] = self.calibration(scenario).platform(self.max_nodes)
        return self._topologies[scenario]

    def engine(self, spec: ExperimentSpec):
        key = spec.key
        if key not in self._engines:
            with get_profiler().span("engine.build"):
                calibration = self.calibration(spec.scenario)
                deployment_kwargs: dict[str, Any] = {
                    "stripe_count": int(spec.factors.get("stripe_count", 4)),
                }
                if spec.factors.get("chooser"):
                    deployment_kwargs["chooser"] = str(spec.factors["chooser"])
                if spec.factors.get("chunk_kib"):
                    deployment_kwargs["chunk_size"] = int(spec.factors["chunk_kib"]) * 1024
                self._engines[key] = self.engine_cls(
                    calibration,
                    self.topology(spec.scenario),
                    calibration.deployment(**deployment_kwargs),
                    seed=self.seed,
                    options=self.options,
                )
        return self._engines[key]

    def __call__(self, spec: ExperimentSpec, rep: int) -> RunResult:
        engine = self.engine(spec)
        apps = self.apps_builder(self.topology(spec.scenario), spec.factors)
        return engine.run(apps, rep=rep)


# Campaign-resilience knobs for every run_specs() call in the active
# context.  The CLI sets these via protocol_options() so experiment
# modules need no per-module plumbing for --on-error / --checkpoint.
_RUNNER_OVERRIDES: dict[str, Any] = {}


@contextmanager
def protocol_options(
    on_error: str | None = None,
    checkpoint: str | Path | None = None,
    resume: bool | None = None,
    checkpoint_every: int | None = None,
    validation: str | ValidationLevel | None = None,
    on_violation: str | None = None,
    workers: int | None = None,
) -> Iterator[None]:
    """Override the runner policy of every ``run_specs`` call inside.

    Only the arguments given (non-``None``) are overridden; nesting
    restores the previous overrides on exit.
    """
    previous = dict(_RUNNER_OVERRIDES)
    for name, value in (
        ("on_error", on_error),
        ("checkpoint", checkpoint),
        ("resume", resume),
        ("checkpoint_every", checkpoint_every),
        ("validation", validation),
        ("on_violation", on_violation),
        ("workers", workers),
    ):
        if value is not None:
            _RUNNER_OVERRIDES[name] = value
    try:
        yield
    finally:
        _RUNNER_OVERRIDES.clear()
        _RUNNER_OVERRIDES.update(previous)


def run_specs(
    specs: Sequence[ExperimentSpec],
    repetitions: int = 100,
    seed: int = 0,
    options: EngineOptions = EngineOptions(),
    apps_builder: AppsBuilder | None = None,
    max_nodes: int = 32,
    progress: Callable[[str], None] | None = None,
    on_error: str = "fail",
    checkpoint: str | Path | None = None,
    resume: bool = False,
    checkpoint_every: int = 10,
    validation: str | ValidationLevel | None = None,
    on_violation: str = "skip",
    workers: int | None = None,
) -> RecordStore:
    """Run a sweep under the paper's protocol and return the records.

    ``on_error``/``checkpoint``/``resume``/``checkpoint_every`` configure
    the :class:`~repro.methodology.runner.ProtocolRunner`'s resilience;
    ``validation`` overrides the engine's invariant-checking level and
    ``on_violation`` decides whether a tripped invariant quarantines the
    run (``"skip"``, default) or aborts the campaign (``"fail"``).
    ``workers`` > 1 executes runs in that many worker processes (results
    are byte-identical to the serial runner's).  An enclosing
    :func:`protocol_options` context overrides them all.
    """
    on_error = _RUNNER_OVERRIDES.get("on_error", on_error)
    checkpoint = _RUNNER_OVERRIDES.get("checkpoint", checkpoint)
    resume = _RUNNER_OVERRIDES.get("resume", resume)
    checkpoint_every = _RUNNER_OVERRIDES.get("checkpoint_every", checkpoint_every)
    validation = _RUNNER_OVERRIDES.get("validation", validation)
    on_violation = _RUNNER_OVERRIDES.get("on_violation", on_violation)
    workers = _RUNNER_OVERRIDES.get("workers", workers)
    if validation is not None:
        options = replace(options, validation=ValidationLevel.parse(validation))
    protocol = ProtocolConfig(
        repetitions=repetitions,
        block_size=min(10, max(1, repetitions)),
        min_wait_s=60.0 if repetitions >= 20 else 0.0,
        max_wait_s=1800.0 if repetitions >= 20 else 0.0,
    )
    plan = ExperimentPlan.build(specs, protocol, seed=seed)
    executor = StandardExecutor(
        seed=seed,
        options=options,
        max_nodes=max_nodes,
        apps_builder=apps_builder if apps_builder is not None else default_apps_builder,
    )
    if workers is not None and workers > 1:
        runner: ProtocolRunner = ParallelProtocolRunner(
            executor,
            n_workers=workers,
            on_error=on_error,
            checkpoint_path=checkpoint,
            checkpoint_every=checkpoint_every,
            on_violation=on_violation,
            seed=seed,
        )
    else:
        runner = ProtocolRunner(
            executor,
            on_error=on_error,
            checkpoint_path=checkpoint,
            checkpoint_every=checkpoint_every,
            on_violation=on_violation,
        )
    if resume and checkpoint is not None:
        return runner.resume(plan, progress=progress)
    return runner.run(plan, progress=progress)
