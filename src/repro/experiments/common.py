"""Shared experiment machinery: sweep tables and the campaign entry point.

Experiment modules declare *what* to simulate as a :func:`sweep` table —
a factor grid over one or more calibration scenarios — and hand the
resulting specs to :func:`run_specs`, which lowers every spec through
:func:`repro.scenario.compile.compile_scenario` and executes the
campaign through the process-wide
:class:`~repro.service.SimulationService` (content-addressed result
cache included).  The factor vocabulary itself is documented on
:func:`repro.scenario.compile.default_apps_builder`.

:class:`StandardExecutor` remains for callers that need a bespoke
``apps_builder`` (timeline figures with pinned placements) or direct
engine access; it executes engines directly and never touches the
cache.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

from ..calibration.plafrim import Calibration, scenario_by_name
from ..engine.base import EngineOptions, ValidationLevel
from ..engine.fluid_runner import FluidEngine
from ..engine.result import RunResult
from ..errors import ExperimentError
from ..methodology.plan import ExperimentPlan, ExperimentSpec
from ..methodology.protocol import ProtocolConfig
from ..methodology.parallel import ParallelProtocolRunner
from ..methodology.records import RecordStore
from ..methodology.runner import ProtocolRunner
from ..scenario.compile import compile_scenario, default_apps_builder
from ..service import ServiceExecutor
from ..telemetry.profiling import get_profiler
from ..topology.graph import Topology
from ..workload.application import Application

__all__ = [
    "ExperimentOutput",
    "StandardExecutor",
    "sweep",
    "run_specs",
    "protocol_options",
    "default_apps_builder",
    "AppsBuilder",
]

AppsBuilder = Callable[[Topology, Mapping[str, Any]], list[Application]]


@dataclass
class ExperimentOutput:
    """What running one experiment produces."""

    exp_id: str
    title: str
    records: RecordStore
    figure: str
    notes: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"{self.exp_id}: {self.title}\n{self.figure}"


def sweep(
    exp_id: str,
    *,
    scenario: str | Sequence[str],
    **axes: Any,
) -> list[ExperimentSpec]:
    """A declarative factor sweep: the full crossing of the given axes.

    Each keyword argument is one factor.  Its value is interpreted as:

    * a **list or tuple** — the levels to sweep;
    * a **dict** — per-scenario levels (value again scalar or list),
      for sweeps whose range depends on the platform (e.g. node counts
      up to each scenario's size);
    * anything else — a **fixed** level, recorded in every spec's
      factor dict.

    Scenarios iterate outermost, then the axes left to right (leftmost
    outermost), so a table reads in the order its campaign runs.
    """
    scenarios = (scenario,) if isinstance(scenario, str) else tuple(scenario)
    if not scenarios:
        raise ExperimentError(f"{exp_id}: sweep needs at least one scenario")
    specs: list[ExperimentSpec] = []
    for scen in scenarios:
        levels: list[list[tuple[str, Any]]] = []
        for name, value in axes.items():
            if isinstance(value, Mapping):
                if scen not in value:
                    raise ExperimentError(
                        f"{exp_id}: axis {name!r} has no levels for scenario {scen!r}"
                    )
                value = value[scen]
            if isinstance(value, (list, tuple)):
                levels.append([(name, v) for v in value])
            else:
                levels.append([(name, value)])
        for combo in itertools.product(*levels):
            specs.append(ExperimentSpec(exp_id=exp_id, scenario=scen, factors=dict(combo)))
    return specs


@dataclass
class StandardExecutor:
    """A direct-engine executor (no service, no cache).

    Used where the run needs something the IR cannot express — a custom
    ``apps_builder`` with pinned placements — and by benchmarks that
    must always execute.  Engines (and their platform topologies) are
    cached per configuration key so a 100-repetition protocol pays
    construction once.
    """

    seed: int = 0
    options: EngineOptions = field(default_factory=EngineOptions)
    engine_cls: type = FluidEngine
    max_nodes: int = 32
    apps_builder: AppsBuilder = field(default=None)  # type: ignore[assignment]
    _calibrations: dict[str, Calibration] = field(default_factory=dict, repr=False)
    _topologies: dict[str, Topology] = field(default_factory=dict, repr=False)
    _engines: dict[str, Any] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.apps_builder is None:
            self.apps_builder = default_apps_builder

    def calibration(self, scenario: str) -> Calibration:
        if scenario not in self._calibrations:
            self._calibrations[scenario] = scenario_by_name(scenario)
        return self._calibrations[scenario]

    def topology(self, scenario: str) -> Topology:
        if scenario not in self._topologies:
            self._topologies[scenario] = self.calibration(scenario).platform(self.max_nodes)
        return self._topologies[scenario]

    def engine(self, spec: ExperimentSpec):
        key = spec.key
        if key not in self._engines:
            with get_profiler().span("engine.build"):
                calibration = self.calibration(spec.scenario)
                deployment_kwargs: dict[str, Any] = {
                    "stripe_count": int(spec.factors.get("stripe_count", 4)),
                }
                if spec.factors.get("chooser"):
                    deployment_kwargs["chooser"] = str(spec.factors["chooser"])
                if spec.factors.get("chunk_kib"):
                    deployment_kwargs["chunk_size"] = int(spec.factors["chunk_kib"]) * 1024
                self._engines[key] = self.engine_cls(
                    calibration,
                    self.topology(spec.scenario),
                    calibration.deployment(**deployment_kwargs),
                    seed=self.seed,
                    options=self.options,
                )
        return self._engines[key]

    def __call__(self, spec: ExperimentSpec, rep: int) -> RunResult:
        engine = self.engine(spec)
        apps = self.apps_builder(self.topology(spec.scenario), spec.factors)
        return engine.run(apps, rep=rep)


# Campaign-resilience knobs for every run_specs() call in the active
# context.  The CLI sets these via protocol_options() so experiment
# modules need no per-module plumbing for --on-error / --checkpoint.
_RUNNER_OVERRIDES: dict[str, Any] = {}


@contextmanager
def protocol_options(
    on_error: str | None = None,
    checkpoint: str | Path | None = None,
    resume: bool | None = None,
    checkpoint_every: int | None = None,
    validation: str | ValidationLevel | None = None,
    on_violation: str | None = None,
    workers: int | None = None,
    cache: bool | None = None,
    cache_dir: str | Path | None = None,
    cache_remote: str | None = None,
) -> Iterator[None]:
    """Override the runner policy of every ``run_specs`` call inside.

    Only the arguments given (non-``None``) are overridden; nesting
    restores the previous overrides on exit.
    """
    previous = dict(_RUNNER_OVERRIDES)
    for name, value in (
        ("on_error", on_error),
        ("checkpoint", checkpoint),
        ("resume", resume),
        ("checkpoint_every", checkpoint_every),
        ("validation", validation),
        ("on_violation", on_violation),
        ("workers", workers),
        ("cache", cache),
        ("cache_dir", cache_dir),
        ("cache_remote", cache_remote),
    ):
        if value is not None:
            _RUNNER_OVERRIDES[name] = value
    try:
        yield
    finally:
        _RUNNER_OVERRIDES.clear()
        _RUNNER_OVERRIDES.update(previous)


def run_specs(
    specs: Sequence[ExperimentSpec],
    repetitions: int = 100,
    seed: int = 0,
    options: EngineOptions = EngineOptions(),
    apps_builder: AppsBuilder | None = None,
    max_nodes: int = 32,
    builder: str = "standard",
    progress: Callable[[str], None] | None = None,
    on_error: str = "fail",
    checkpoint: str | Path | None = None,
    resume: bool = False,
    checkpoint_every: int = 10,
    validation: str | ValidationLevel | None = None,
    on_violation: str = "skip",
    workers: int | None = None,
    cache: bool = True,
    cache_dir: str | Path | None = None,
    cache_remote: str | None = None,
    stats_out: dict[str, Any] | None = None,
) -> RecordStore:
    """Run a sweep under the paper's protocol and return the records.

    Every spec is lowered through ``compile_scenario`` (with the given
    ``builder``) and executed through the simulation service, so
    previously-simulated (configuration, rep) pairs replay from the
    content-addressed cache; ``cache=False`` (or a ``--no-cache``
    campaign) forces execution, and runs with ``validation`` enabled
    always execute.  A custom ``apps_builder`` cannot be fingerprinted,
    so those campaigns fall back to a direct (uncached) executor.

    ``on_error``/``checkpoint``/``resume``/``checkpoint_every`` configure
    the :class:`~repro.methodology.runner.ProtocolRunner`'s resilience;
    ``validation`` overrides the engine's invariant-checking level and
    ``on_violation`` decides whether a tripped invariant quarantines the
    run (``"skip"``, default) or aborts the campaign (``"fail"``).
    ``workers`` > 1 executes runs in that many worker processes (results
    are byte-identical to the serial runner's).  An enclosing
    :func:`protocol_options` context overrides them all.
    """
    on_error = _RUNNER_OVERRIDES.get("on_error", on_error)
    checkpoint = _RUNNER_OVERRIDES.get("checkpoint", checkpoint)
    resume = _RUNNER_OVERRIDES.get("resume", resume)
    checkpoint_every = _RUNNER_OVERRIDES.get("checkpoint_every", checkpoint_every)
    validation = _RUNNER_OVERRIDES.get("validation", validation)
    on_violation = _RUNNER_OVERRIDES.get("on_violation", on_violation)
    workers = _RUNNER_OVERRIDES.get("workers", workers)
    cache = _RUNNER_OVERRIDES.get("cache", cache)
    cache_dir = _RUNNER_OVERRIDES.get("cache_dir", cache_dir)
    cache_remote = _RUNNER_OVERRIDES.get("cache_remote", cache_remote)
    if validation is not None:
        options = replace(options, validation=ValidationLevel.parse(validation))
    protocol = ProtocolConfig(
        repetitions=repetitions,
        block_size=min(10, max(1, repetitions)),
        min_wait_s=60.0 if repetitions >= 20 else 0.0,
        max_wait_s=1800.0 if repetitions >= 20 else 0.0,
    )
    plan = ExperimentPlan.build(specs, protocol, seed=seed)
    executor: Any
    if apps_builder is not None:
        executor = StandardExecutor(
            seed=seed,
            options=options,
            max_nodes=max_nodes,
            apps_builder=apps_builder,
        )
    else:
        scenarios = {
            spec.key: compile_scenario(
                spec, seed=seed, options=options, max_nodes=max_nodes, builder=builder
            )
            for spec in specs
        }
        executor = ServiceExecutor(
            scenarios=scenarios,
            cache=bool(cache),
            cache_dir=None if cache_dir is None else str(cache_dir),
            cache_remote=None if cache_remote is None else str(cache_remote),
            seed=seed,
        )
    if workers is not None and workers > 1:
        runner: ProtocolRunner = ParallelProtocolRunner(
            executor,
            n_workers=workers,
            on_error=on_error,
            checkpoint_path=checkpoint,
            checkpoint_every=checkpoint_every,
            on_violation=on_violation,
            seed=seed,
        )
    else:
        runner = ProtocolRunner(
            executor,
            on_error=on_error,
            checkpoint_path=checkpoint,
            checkpoint_every=checkpoint_every,
            on_violation=on_violation,
        )
    try:
        if resume and checkpoint is not None:
            return runner.resume(plan, progress=progress)
        return runner.run(plan, progress=progress)
    finally:
        # Orchestration accounting for callers that want it (bench, ops
        # tooling): supervision counters always, batched-dispatch
        # transfer stats when the parallel runner produced them.
        if stats_out is not None:
            stats_out["supervision"] = dict(runner.supervision_stats)
            transfer = getattr(runner, "transfer_stats", None)
            if transfer:
                stats_out["transfer"] = dict(transfer)
