"""Figure 4 — evolution of bandwidth with the number of compute nodes.

8 processes per node, stripe count 4, 32 GiB total.  Scenario 1
(network-bound) climbs from ~880 MiB/s at one node to a plateau around
four nodes; scenario 2 (storage-bound) climbs from ~1630 MiB/s and
needs about sixteen nodes — Lessons 1 and 2.
"""

from __future__ import annotations

from ..figures.ascii import render_table, series_panel
from ..methodology.plan import ExperimentSpec
from ..stats.summary import describe
from .common import ExperimentOutput, run_specs, sweep
from .registry import ExperimentInfo, register

EXP_ID = "fig4"
TITLE = "I/O bandwidth vs number of compute nodes"
PAPER_REF = "Figure 4 (a: scenario 1, b: scenario 2)"

NODES = {"scenario1": (1, 2, 3, 4, 5, 6, 7, 8), "scenario2": (1, 2, 4, 8, 16, 32)}
PPN = 8


def specs(scenarios: tuple[str, ...] = ("scenario1", "scenario2"), ppn: int = PPN) -> list[ExperimentSpec]:
    return sweep(
        EXP_ID,
        scenario=scenarios,
        num_nodes=NODES,
        ppn=ppn,
        total_gib=32,
        stripe_count=4,
    )


def plateau_nodes(records, scenario: str, threshold: float = 0.95) -> int:
    """Smallest node count reaching ``threshold`` of the peak mean."""
    means = {
        int(n): float(g.bandwidths().mean())
        for n, g in records.filter(scenario=scenario).group_by_factor("num_nodes").items()
    }
    peak = max(means.values())
    return min(n for n, m in means.items() if m >= threshold * peak)


def render(records) -> str:
    parts = []
    for scenario in ("scenario1", "scenario2"):
        sub = records.filter(scenario=scenario)
        if len(sub) == 0:
            continue
        pts, rows = [], []
        for n, group in sorted(sub.group_by_factor("num_nodes").items()):
            values = group.bandwidths()
            pts.append((float(n), list(values)))
            s = describe(values)
            rows.append([n, f"{s.mean:.0f}", f"{s.std:.0f}"])
        parts.append(
            series_panel(
                {"bandwidth": pts},
                f"Fig 4 ({scenario}): bandwidth vs compute nodes (8 ppn, stripe 4)",
                xlabel="compute nodes",
            )
        )
        single = float(sub.filter(num_nodes=min(NODES[scenario])).bandwidths().mean())
        peak = max(float(g.bandwidths().mean()) for g in sub.group_by_factor("num_nodes").values())
        rows.append(["gain", f"{(peak / single - 1) * 100:.0f}%", ""])
        parts.append(render_table(["nodes", "mean", "std"], rows, f"Fig 4 summary ({scenario})"))
        parts.append(f"plateau (95% of peak) reached at {plateau_nodes(records, scenario)} nodes")
    return "\n\n".join(parts)


def run(repetitions: int = 100, seed: int = 0, scenarios=("scenario1", "scenario2"), progress=None) -> ExperimentOutput:
    records = run_specs(specs(tuple(scenarios)), repetitions=repetitions, seed=seed, progress=progress)
    return ExperimentOutput(
        exp_id=EXP_ID,
        title=TITLE,
        records=records,
        figure=render(records),
        notes="Paper anchors: ~880->~1460 MiB/s (s1, plateau at 4 nodes); "
        "~1630->~6100 MiB/s (s2, plateau at 16 nodes).",
    )


register(ExperimentInfo(EXP_ID, TITLE, PAPER_REF, run, specs=specs))
