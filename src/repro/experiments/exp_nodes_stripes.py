"""Figure 11 — node scaling for several stripe counts (scenario 2).

The reason the stripe count study uses 32 nodes: more storage targets
offer a higher peak, but reaching it demands more compute nodes (the
per-target concurrency has to build up).  Mean bandwidth per (stripe
count, node count), scenario 2.
"""

from __future__ import annotations

from ..figures.ascii import render_table, series_panel
from ..methodology.plan import ExperimentSpec
from .common import ExperimentOutput, run_specs, sweep
from .registry import ExperimentInfo, register

EXP_ID = "fig11"
TITLE = "Node scaling by stripe count (scenario 2)"
PAPER_REF = "Figure 11"

STRIPE_COUNTS = (1, 2, 4, 8)
NODE_COUNTS = (1, 2, 4, 8, 16, 32)
PPN = 8


def specs() -> list[ExperimentSpec]:
    return sweep(
        EXP_ID,
        scenario="scenario2",
        stripe_count=STRIPE_COUNTS,
        num_nodes=NODE_COUNTS,
        ppn=PPN,
        total_gib=32,
    )


def plateau_table(records) -> list[list[object]]:
    rows = []
    for k, group in sorted(records.group_by_factor("stripe_count").items()):
        means = {
            int(n): float(g.bandwidths().mean())
            for n, g in group.group_by_factor("num_nodes").items()
        }
        peak = max(means.values())
        plateau = min(n for n, m in means.items() if m >= 0.95 * peak)
        rows.append([k, f"{peak:.0f}", plateau])
    return rows


def render(records) -> str:
    series = {}
    for k, group in sorted(records.group_by_factor("stripe_count").items()):
        pts = []
        for n, g in sorted(group.group_by_factor("num_nodes").items()):
            pts.append((float(n), [float(g.bandwidths().mean())]))
        series[f"stripe {k}"] = pts
    panel = series_panel(
        series,
        "Fig 11: mean bandwidth vs compute nodes, by stripe count (scenario 2)",
        xlabel="compute nodes",
    )
    table = render_table(
        ["stripe count", "peak mean MiB/s", "nodes to reach 95% of peak"],
        plateau_table(records),
        "Fig 11: plateau positions grow with the stripe count (Lesson 6)",
    )
    return panel + "\n\n" + table


def run(repetitions: int = 100, seed: int = 0, progress=None) -> ExperimentOutput:
    records = run_specs(specs(), repetitions=repetitions, seed=seed, progress=progress)
    return ExperimentOutput(
        exp_id=EXP_ID,
        title=TITLE,
        records=records,
        figure=render(records),
        notes="Higher stripe counts reach higher peaks but need more nodes to get there.",
    )


register(ExperimentInfo(EXP_ID, TITLE, PAPER_REF, run, specs=specs))
