"""Extension — N-1 shared file vs N-N file-per-process (future work).

The paper's conclusion names "other application access patterns, such
as the file-per-process (N-N) strategy" as future work.  The key
structural difference: with N-N every process gets its *own* file and
its own chooser decision, so a stateful round-robin chooser spreads
consecutive files across consecutive target windows — with hundreds of
files **every** target ends up loaded evenly regardless of the
per-file stripe count.  Prediction (and finding): N-N write bandwidth
is nearly independent of the stripe count, and matches N-1's best case
— small stripe counts lose nothing because placement imbalance
averages out across files.
"""

from __future__ import annotations

from ..figures.ascii import render_table
from ..methodology.plan import ExperimentSpec
from ..stats.summary import describe
from .common import ExperimentOutput, run_specs, sweep
from .registry import ExperimentInfo, register

EXP_ID = "patterns"
TITLE = "N-1 shared file vs N-N file-per-process"
PAPER_REF = "Section VI (future work: access patterns)"

STRIPE_COUNTS = (1, 2, 4, 8)
NODES = {"scenario1": 8, "scenario2": 32}
PATTERNS = ("n1-contiguous", "file-per-process")


def specs(scenarios: tuple[str, ...] = ("scenario1", "scenario2")) -> list[ExperimentSpec]:
    return sweep(
        EXP_ID,
        scenario=scenarios,
        pattern=PATTERNS,
        stripe_count=STRIPE_COUNTS,
        num_nodes=NODES,
        ppn=8,
        total_gib=32,
    )


def render(records) -> str:
    parts = []
    for scenario in ("scenario1", "scenario2"):
        sub = records.filter(scenario=scenario)
        if len(sub) == 0:
            continue
        rows = []
        for k in STRIPE_COUNTS:
            n1 = describe(sub.filter(stripe_count=k, pattern="n1-contiguous").bandwidths())
            nn = describe(sub.filter(stripe_count=k, pattern="file-per-process").bandwidths())
            # Distinct targets the N-N run actually touched.
            nn_targets = sorted(
                {
                    len(r.apps[0]["targets"])
                    for r in sub.filter(stripe_count=k, pattern="file-per-process")
                }
            )
            rows.append(
                [
                    k,
                    f"{n1.mean:.0f}+-{n1.std:.0f}",
                    f"{nn.mean:.0f}+-{nn.std:.0f}",
                    f"{(nn.mean / n1.mean - 1) * 100:+.0f}%",
                    "/".join(str(t) for t in nn_targets),
                ]
            )
        parts.append(
            render_table(
                ["stripe", "N-1 MiB/s", "N-N MiB/s", "N-N vs N-1", "targets used by N-N"],
                rows,
                f"Access-pattern study ({scenario})",
            )
        )
    return "\n\n".join(parts)


def run(repetitions: int = 100, seed: int = 0, scenarios=("scenario1", "scenario2"), progress=None) -> ExperimentOutput:
    records = run_specs(specs(tuple(scenarios)), repetitions=repetitions, seed=seed, progress=progress)
    return ExperimentOutput(
        exp_id=EXP_ID,
        title=TITLE,
        records=records,
        figure=render(records),
        notes="N-N spreads consecutive files over all targets, so its bandwidth "
        "should be insensitive to the per-file stripe count and match N-1's "
        "best case at every count.",
    )


register(ExperimentInfo(EXP_ID, TITLE, PAPER_REF, run, specs=specs))
