"""Extension — metadata-intensity interference (Section IV-D's caveat).

Lesson 7 ends with a careful caveat: I/O interference *does* exist, but
comes from other parts of the stack — the first cited root cause being
metadata intensity (Yang et al., NSDI'19).  This experiment measures
that channel directly: a small "victim" job opening its files while an
mdtest-style create storm of growing size hammers the same metadata
servers.  The victim's open phase stretches with the storm — and the
impact on a *paper-style* job (32 GiB, one shared file) stays
negligible, exactly why Section III-B's N-1 choice insulated the
paper's measurements from this channel.
"""

from __future__ import annotations

from ..calibration.plafrim import scenario2
from ..engine.meta_engine import MDSPerformanceSpec, MetadataEngine
from ..figures.ascii import render_table
from ..methodology.records import RecordStore
from ..workload.mdtest import MDTestConfig, MDTestPhase, MetadataOp
from .common import ExperimentOutput
from .registry import ExperimentInfo, register

EXP_ID = "interference"
TITLE = "Metadata-intensity interference on a victim job's opens"
PAPER_REF = "extension of Section IV-D (interference root causes)"

VICTIM_OPENS = 64  # a 8-node x 8-ppn job opening one shared file
STORM_PROCS = (0, 16, 64, 256)
STORM_FILES = 300


def run(repetitions: int = 5, seed: int = 0, progress=None) -> ExperimentOutput:
    deployment = scenario2().deployment()
    spec = MDSPerformanceSpec()
    rows = []
    baseline = None
    for storm in STORM_PROCS:
        victim_seconds = []
        for rep in range(repetitions):
            engine = MetadataEngine(deployment, spec, seed=seed + rep)
            # The storm starts first; the victim arrives once the MDS
            # queues are deep (20 ms in), as a real job would.
            groups = [
                (
                    "victim",
                    MDTestConfig(1, directory_mode=MDTestPhase.UNIQUE_DIRS),
                    VICTIM_OPENS,
                    0.02,
                )
            ]
            if storm:
                groups.append(
                    (
                        "storm",
                        MDTestConfig(STORM_FILES, directory_mode=MDTestPhase.SHARED_DIR),
                        storm,
                    )
                )
            finished = engine.run_concurrent(groups, op=MetadataOp.CREATE, rep=rep)
            victim_seconds.append(finished["victim"])
        mean_s = sum(victim_seconds) / len(victim_seconds)
        if baseline is None:
            baseline = mean_s
        # Cost added to a paper-style run (32 GiB at ~6 GiB/s ~ 5.5 s).
        run_cost = (mean_s - baseline) / 5.5 * 100
        rows.append(
            [
                storm,
                f"{mean_s * 1000:.1f}",
                f"x{mean_s / baseline:.1f}",
                f"{run_cost:+.1f}%",
            ]
        )
        if progress is not None:
            progress(f"storm {storm} procs done")
    table = render_table(
        ["storm procs", "victim opens (ms)", "slowdown", "cost to a 32 GiB run"],
        rows,
        f"Victim: {VICTIM_OPENS} opens; storm: {STORM_FILES} creates/proc in a shared dir:",
    )
    figure = table + (
        "\n\n=> metadata storms stretch a victim's open phase severalfold, "
        "but a bandwidth-style job (one shared file, 32 GiB) loses almost "
        "nothing — interference flows through the metadata path, not the "
        "storage targets (Lesson 7's caveat, quantified)."
    )
    return ExperimentOutput(
        exp_id=EXP_ID,
        title=TITLE,
        records=RecordStore(),
        figure=figure,
        notes="Victim open latency grows with storm size; bandwidth jobs with "
        "few opens are insulated — the paper's N-1 design choice.",
    )


register(ExperimentInfo(EXP_ID, TITLE, PAPER_REF, run, default_repetitions=5))
