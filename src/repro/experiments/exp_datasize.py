"""Figure 2 — impact of the total data size on write bandwidth.

The paper's first experiment: 32 processes on 4 nodes, stripe count 4,
total size swept until bandwidth stabilises (it does between 16 and
32 GiB, fixing 32 GiB for every other experiment).  Small sizes show
both lower bandwidth (latency- and startup-dominated) and much higher
variability (short runs cannot average over system-state epochs).
"""

from __future__ import annotations

from ..figures.ascii import render_table, series_panel
from ..methodology.plan import ExperimentSpec
from ..stats.summary import describe
from .common import ExperimentOutput, run_specs, sweep
from .registry import ExperimentInfo, register

EXP_ID = "fig2"
TITLE = "Impact of the data size on I/O bandwidth"
PAPER_REF = "Figure 2 (a: scenario 1, b: scenario 2)"

SIZES_GIB = (1, 2, 4, 8, 16, 32, 64)
NUM_NODES = 4
PPN = 8


def specs(scenarios: tuple[str, ...] = ("scenario1", "scenario2")) -> list[ExperimentSpec]:
    return sweep(
        EXP_ID,
        scenario=scenarios,
        total_gib=SIZES_GIB,
        num_nodes=NUM_NODES,
        ppn=PPN,
        stripe_count=4,
    )


def render(records) -> str:
    parts = []
    for scenario in ("scenario1", "scenario2"):
        sub = records.filter(scenario=scenario)
        if len(sub) == 0:
            continue
        pts = []
        rows = []
        for size, group in sorted(sub.group_by_factor("total_gib").items()):
            values = group.bandwidths()
            pts.append((float(size), list(values)))
            s = describe(values)
            rows.append(
                [size, f"{s.mean:.0f}", f"{s.std:.0f}", f"{s.minimum:.0f}", f"{s.maximum:.0f}", f"{s.spread:.0f}"]
            )
        label = "network-bound" if scenario == "scenario1" else "storage-bound"
        parts.append(
            series_panel(
                {"bandwidth": pts},
                f"Fig 2 ({scenario}: {label}): bandwidth vs total data size",
                xlabel="total size (GiB)",
            )
        )
        parts.append(
            render_table(
                ["GiB", "mean", "std", "min", "max", "spread"],
                rows,
                f"Fig 2 summary ({scenario}) - spread is the max-min 'shadow'",
            )
        )
    return "\n\n".join(parts)


def run(repetitions: int = 100, seed: int = 0, scenarios=("scenario1", "scenario2"), progress=None) -> ExperimentOutput:
    records = run_specs(specs(tuple(scenarios)), repetitions=repetitions, seed=seed, progress=progress)
    return ExperimentOutput(
        exp_id=EXP_ID,
        title=TITLE,
        records=records,
        figure=render(records),
        notes="Bandwidth should stabilise between 16 and 32 GiB; spread shrinks with size.",
    )


register(ExperimentInfo(EXP_ID, TITLE, PAPER_REF, run, specs=specs))
