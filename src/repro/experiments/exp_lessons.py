"""The lessons-learned audit: every in-text claim, checked end to end.

Runs (reduced-repetition) versions of the experiments the lessons rest
on — Figures 4, 5, 6, 11 and 13 — and evaluates the programmatic
verdicts of :mod:`repro.analysis.lessons`, printing paper-vs-measured
for each claim.
"""

from __future__ import annotations

from ..analysis.lessons import evaluate_lessons
from ..calibration.plafrim import scenario1
from ..engine.base import EngineOptions
from ..figures.ascii import render_table
from ..methodology.records import RecordStore
from .common import ExperimentOutput, run_specs
from .registry import ExperimentInfo, register
from . import exp_nodes, exp_nodes_stripes, exp_ppn, exp_sharing, exp_stripecount

EXP_ID = "lessons"
TITLE = "Lessons 1-7: programmatic verdicts on every in-text claim"
PAPER_REF = "Sections IV-A to IV-D (lesson boxes)"


def gather_stores(repetitions: int, seed: int, progress=None) -> dict[str, RecordStore]:
    """Run the experiments the lessons need, at the given repetitions."""
    fig4 = run_specs(exp_nodes.specs(), repetitions=repetitions, seed=seed, progress=progress)
    fig5 = run_specs(
        exp_ppn.specs(scenarios=("scenario2",)), repetitions=repetitions, seed=seed, progress=progress
    )
    fig6 = run_specs(exp_stripecount.specs(), repetitions=repetitions, seed=seed, progress=progress)
    fig11 = run_specs(exp_nodes_stripes.specs(), repetitions=repetitions, seed=seed, progress=progress)
    fig13 = run_specs(
        exp_sharing.specs(),
        repetitions=repetitions,
        seed=seed,
        options=EngineOptions(interleaved_creations=(0, 1, 2)),
        progress=progress,
    )
    shared, distinct = exp_sharing.split_groups(fig13)
    return {
        "fig4_s1": fig4.filter(scenario="scenario1"),
        "fig4_s2": fig4.filter(scenario="scenario2"),
        "fig5": fig5,
        "fig6_s1": fig6.filter(scenario="scenario1"),
        "fig6_s2": fig6.filter(scenario="scenario2"),
        "fig11": fig11,
        "fig13_shared": shared,
        "fig13_distinct": distinct,
    }


def run(repetitions: int = 40, seed: int = 0, progress=None) -> ExperimentOutput:
    stores = gather_stores(repetitions, seed, progress)
    verdicts = evaluate_lessons(stores, per_server_mib_s=scenario1().per_server_network_mib_s)
    rows = []
    all_records = RecordStore()
    for store in stores.values():
        all_records.extend(store)
    for v in verdicts:
        observed = ", ".join(f"{k}={val:.3g}" for k, val in v.observed.items())
        rows.append([v.lesson if v.lesson else "reco", "PASS" if v.passed else "FAIL", v.claim, observed])
    figure = render_table(["lesson", "verdict", "claim", "observed"], rows, "Lessons audit")
    return ExperimentOutput(
        exp_id=EXP_ID,
        title=TITLE,
        records=all_records,
        figure=figure,
        notes="All lessons should PASS; observed values sit next to the paper's claims.",
    )


register(ExperimentInfo(EXP_ID, TITLE, PAPER_REF, run, default_repetitions=40))
