"""Figures 6, 8 and 10 — the stripe count study, the paper's core.

One hundred repetitions per stripe count (1-8), 8 nodes in scenario 1
and 32 in scenario 2, 8 ppn, 32 GiB.  The same records yield:

* Figure 6 — bandwidth per stripe count, every individual run plotted
  (the bi-modal clouds of scenario 1, the noisy near-linear growth of
  scenario 2);
* Figure 8 — scenario 1 boxplots regrouped by (min, max) placement:
  performance follows the balance, not the count;
* Figure 10 — scenario 2 boxplots by placement: the count dominates,
  but balanced placements still win at equal count ((3,3) vs (2,4)).
"""

from __future__ import annotations

from ..figures.ascii import box_panel, render_table, series_panel
from ..methodology.plan import ExperimentSpec
from ..stats.bimodality import is_bimodal
from ..stats.boxplot import boxplot_stats
from ..stats.summary import describe
from .common import ExperimentOutput, run_specs, sweep
from .registry import ExperimentInfo, register

EXP_ID = "fig6"
TITLE = "I/O bandwidth vs stripe count, and by OST placement"
PAPER_REF = "Figures 6, 8 and 10"

STRIPE_COUNTS = (1, 2, 3, 4, 5, 6, 7, 8)
NODES = {"scenario1": 8, "scenario2": 32}
PPN = 8


def specs(scenarios: tuple[str, ...] = ("scenario1", "scenario2")) -> list[ExperimentSpec]:
    return sweep(
        EXP_ID,
        scenario=scenarios,
        stripe_count=STRIPE_COUNTS,
        num_nodes=NODES,
        ppn=PPN,
        total_gib=32,
    )


def placement_boxes(records, scenario: str):
    """Boxplot stats keyed by (min, max) placement string (Figs 8/10)."""
    sub = records.filter(scenario=scenario)
    return {
        f"({lo},{hi})": boxplot_stats(group.bandwidths())
        for (lo, hi), group in sorted(sub.group_by_placement().items())
    }


def render(records) -> str:
    parts = []
    fig_by_scenario = {"scenario1": "Fig 8", "scenario2": "Fig 10"}
    for scenario in ("scenario1", "scenario2"):
        sub = records.filter(scenario=scenario)
        if len(sub) == 0:
            continue
        pts, rows = [], []
        for k, group in sorted(sub.group_by_factor("stripe_count").items()):
            values = group.bandwidths()
            pts.append((float(k), list(values)))
            s = describe(values)
            modes = "bimodal" if len(values) >= 10 and is_bimodal(values).bimodal else "unimodal"
            placements = sorted({r.placement for r in group})
            rows.append(
                [
                    k,
                    f"{s.mean:.0f}",
                    f"{s.std:.0f}",
                    modes,
                    " ".join(f"({lo},{hi})" for lo, hi in placements),
                ]
            )
        parts.append(
            series_panel(
                {"runs": pts},
                f"Fig 6 ({scenario}): bandwidth vs stripe count "
                f"({NODES[scenario]} nodes x {PPN} ppn, every run plotted)",
                xlabel="stripe count",
            )
        )
        parts.append(
            render_table(
                ["stripe", "mean", "std", "modality", "observed placements"],
                rows,
                f"Fig 6 summary ({scenario})",
            )
        )
        parts.append(
            box_panel(
                placement_boxes(records, scenario),
                f"{fig_by_scenario[scenario]} ({scenario}): bandwidth by (min,max) placement",
            )
        )
    return "\n\n".join(parts)


def run(repetitions: int = 100, seed: int = 0, scenarios=("scenario1", "scenario2"), progress=None) -> ExperimentOutput:
    records = run_specs(specs(tuple(scenarios)), repetitions=repetitions, seed=seed, progress=progress)
    return ExperimentOutput(
        exp_id=EXP_ID,
        title=TITLE,
        records=records,
        figure=render(records),
        notes=(
            "Scenario 1: peak only at stripe counts 2, 6, 8; bi-modal at 2/3/5/6; "
            "(1,3) of count 4 ~49% below (3,3). Scenario 2: near-linear growth "
            "~1764 -> ~8064 MiB/s; balanced placements ~10% above unbalanced."
        ),
    )


register(ExperimentInfo(EXP_ID, TITLE, PAPER_REF, run, specs=specs))
