"""Extension — metadata performance and the shared-directory bottleneck.

The paper minimises metadata load on purpose (Section III-B) and names
metadata intensity as an interference root cause (Section IV-D).  This
experiment measures the metadata side the way the community does
(mdtest): create/stat/unlink rates as the process count grows, in a
shared directory versus unique per-process directories.

Structural finding (BeeGFS semantics, not tuning): a directory's
entries live on one MDS, so a shared-directory workload saturates a
single server while unique directories spread round-robin over both —
roughly doubling create throughput on PlaFRIM's two-MDS deployment.
This is also why the paper's N-1 strategy (one create total) makes
metadata negligible while naive N-N small-file workloads do not.
"""

from __future__ import annotations

from ..engine.meta_engine import MDSPerformanceSpec, MetadataEngine
from ..figures.ascii import render_table
from ..methodology.records import RecordStore
from ..workload.mdtest import MDTestConfig, MDTestPhase, MetadataOp
from .common import ExperimentOutput
from .registry import ExperimentInfo, register

EXP_ID = "metadata"
TITLE = "mdtest: shared vs unique directories on the two MDSes"
PAPER_REF = "extension of Sections II / III-B / IV-D (metadata path)"

PROC_COUNTS = (1, 4, 16, 64)
FILES_PER_PROC = 200


def run(repetitions: int = 5, seed: int = 0, progress=None) -> ExperimentOutput:
    from ..calibration.plafrim import scenario2

    deployment = scenario2().deployment()
    spec = MDSPerformanceSpec()
    rows = []
    summary: dict[tuple[str, int], float] = {}
    for mode in (MDTestPhase.SHARED_DIR, MDTestPhase.UNIQUE_DIRS):
        for nprocs in PROC_COUNTS:
            rates = []
            share = 0.0
            for rep in range(repetitions):
                engine = MetadataEngine(deployment, spec, seed=seed + rep)
                result = engine.run(MDTestConfig(FILES_PER_PROC, directory_mode=mode), nprocs, rep=rep)
                rates.append(result.rate(MetadataOp.CREATE))
                share = result.busiest_mds_share()
            mean_rate = sum(rates) / len(rates)
            summary[(mode.value, nprocs)] = mean_rate
            rows.append(
                [
                    mode.value,
                    nprocs,
                    f"{mean_rate:.0f}",
                    f"{share * 100:.0f}%",
                ]
            )
            if progress is not None:
                progress(f"{mode.value} x {nprocs} procs done")
    table = render_table(
        ["directory mode", "procs", "creates/s", "busiest MDS share"],
        rows,
        f"mdtest create rates ({FILES_PER_PROC} files/proc, "
        f"{spec.workers} workers/MDS, single-MDS peak "
        f"{spec.peak_rate(MetadataOp.CREATE):.0f} creates/s):",
    )
    peak_shared = max(v for (m, _), v in summary.items() if m == "shared-dir")
    peak_unique = max(v for (m, _), v in summary.items() if m == "unique-dirs")
    figure = table + (
        f"\n\nunique-dirs peak / shared-dir peak = x{peak_unique / peak_shared:.2f} "
        "(two MDSes vs one: the shared directory pins every dentry to a single "
        "server)\n=> why the paper's N-1 strategy keeps metadata out of the "
        "picture, and why small-file N-N workloads interfere via the MDS."
    )
    return ExperimentOutput(
        exp_id=EXP_ID,
        title=TITLE,
        records=RecordStore(),
        figure=figure,
        notes="Shared dir saturates at one MDS's service rate; unique dirs "
        "scale to the MDS count.",
    )


register(ExperimentInfo(EXP_ID, TITLE, PAPER_REF, run, default_repetitions=5))
