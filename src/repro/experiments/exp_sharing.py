"""Figure 13 — two stripe-4 applications: all targets shared vs none.

With stripe count 4, PlaFRIM's round-robin chooser only ever produces
the two disjoint windows (101,201,202,203) and (204,102,103,104), so
two concurrent applications either collide on *all four* targets or on
*none*.  In the paper the production system's background file
creations made the two cases occur roughly 1/3 / 2/3 of the time; the
engine reproduces that with interleaved third-party creations.

The analysis is the paper's exactly: KS normality per group, then a
Welch two-sample t-test on individual application bandwidth —
p = 0.9031 in the paper, i.e. no significant difference (Lesson 7).
"""

from __future__ import annotations

import numpy as np

from ..engine.base import EngineOptions
from ..figures.ascii import box_panel, render_table
from ..methodology.plan import ExperimentSpec
from ..methodology.records import RecordStore
from ..stats.boxplot import boxplot_stats
from ..stats.tests import ks_normality, welch_ttest
from .common import ExperimentOutput, run_specs, sweep
from .registry import ExperimentInfo, register

EXP_ID = "fig13"
TITLE = "Two concurrent stripe-4 apps: shared vs distinct OSTs"
PAPER_REF = "Figure 13"

NODES_PER_APP = 8
PPN = 8


def specs() -> list[ExperimentSpec]:
    return sweep(
        EXP_ID,
        scenario="scenario2",
        num_apps=2,
        stripe_count=4,
        num_nodes=NODES_PER_APP,
        nodes_per_app=NODES_PER_APP,
        ppn=PPN,
        total_gib=32,
    )


def split_groups(records: RecordStore) -> tuple[RecordStore, RecordStore]:
    """(all four targets shared, no targets shared)."""
    shared = records.filter(predicate=lambda r: r.shared_target_count() == 4)
    distinct = records.filter(predicate=lambda r: r.shared_target_count() == 0)
    return shared, distinct


def app_bandwidths(store: RecordStore) -> np.ndarray:
    """Every application's bandwidth (two per run) — for the boxplots."""
    return np.array([app["bw_mib_s"] for r in store for app in r.apps])


def run_mean_bandwidths(store: RecordStore) -> np.ndarray:
    """Mean app bandwidth per run — the independent unit for the t-test.

    The two applications of one run share that run's system state, so
    treating them as independent samples would overstate the evidence;
    the Welch test therefore compares per-run means.
    """
    return np.array([float(np.mean([app["bw_mib_s"] for app in r.apps])) for r in store])


def render(records: RecordStore) -> str:
    shared, distinct = split_groups(records)
    other = len(records) - len(shared) - len(distinct)
    a, b = app_bandwidths(shared), app_bandwidths(distinct)
    panel = box_panel(
        {"all shared": boxplot_stats(a), "all distinct": boxplot_stats(b)},
        "Fig 13: individual app bandwidth, 2 apps x 4 OSTs each",
    )
    welch = welch_ttest(run_mean_bandwidths(shared), run_mean_bandwidths(distinct))
    rows = [
        ["runs: all shared", len(shared), f"{np.mean(a):.0f}", f"{np.std(a, ddof=1):.0f}"],
        ["runs: all distinct", len(distinct), f"{np.mean(b):.0f}", f"{np.std(b, ddof=1):.0f}"],
        ["runs: partial overlap", other, "-", "-"],
        ["KS normality p (shared)", "-", f"{ks_normality(a).pvalue:.3f}", "-"],
        ["KS normality p (distinct)", "-", f"{ks_normality(b).pvalue:.3f}", "-"],
        ["Welch t-test p", "-", f"{welch.pvalue:.4f}", welch.detail],
    ]
    verdict = (
        "means NOT significantly different (cannot reject equality)"
        if not welch.rejects_at(0.05)
        else "means significantly different"
    )
    return panel + "\n\n" + render_table(["quantity", "n", "value", "detail"], rows) + f"\n\n=> {verdict}"


def run(repetitions: int = 100, seed: int = 0, progress=None) -> ExperimentOutput:
    options = EngineOptions(interleaved_creations=(0, 1, 2))
    records = run_specs(specs(), repetitions=repetitions, seed=seed, options=options)
    return ExperimentOutput(
        exp_id=EXP_ID,
        title=TITLE,
        records=records,
        figure=render(records),
        notes="Paper: Welch p = 0.9031; sharing all four OSTs is indistinguishable "
        "from sharing none (Lesson 7). ~1/3 of runs share all targets.",
    )


register(ExperimentInfo(EXP_ID, TITLE, PAPER_REF, run, specs=specs))
