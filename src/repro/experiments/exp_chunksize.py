"""Extension — the stripe *size* (chunk size) dimension.

The paper fixes the other striping parameter at PlaFRIM's 512 KiB and
chooses 1 MiB transfers "aligned to stripe size and large enough ...
to require more than one OST to be accessed for each request"
(Section III-B).  This experiment sweeps the chunk size for the 1 MiB
transfer workload and shows what that alignment choice buys: the
number of chunks a blocking transfer spans (``transfer / chunk``) sets
the client's outstanding-request concurrency, so larger chunks starve
the storage ramp at low node counts while tiny chunks gain nothing
once the per-node RPC slots are full.
"""

from __future__ import annotations

from ..figures.ascii import render_table
from ..methodology.plan import ExperimentSpec
from ..stats.summary import describe
from .common import ExperimentOutput, run_specs, sweep
from .registry import ExperimentInfo, register

EXP_ID = "chunksize"
TITLE = "Chunk (stripe) size sweep at 1 MiB transfers"
PAPER_REF = "extension of Section III-B (stripe size / transfer alignment)"

CHUNK_KIB = (128, 256, 512, 1024, 2048)
NODE_COUNTS = (2, 8, 32)


def specs() -> list[ExperimentSpec]:
    return sweep(
        EXP_ID,
        scenario="scenario2",
        chunk_kib=CHUNK_KIB,
        num_nodes=NODE_COUNTS,
        ppn=8,
        stripe_count=8,
        total_gib=32,
    )


def render(records) -> str:
    rows = []
    for chunk in CHUNK_KIB:
        row: list[object] = [f"{chunk} KiB", 1024 // chunk if chunk <= 1024 else f"1/{chunk // 1024}"]
        for n in NODE_COUNTS:
            group = records.filter(chunk_kib=chunk, num_nodes=n)
            s = describe(group.bandwidths())
            row.append(f"{s.mean:.0f}")
        rows.append(row)
    return render_table(
        ["chunk size", "chunks/transfer", *(f"{n} nodes" for n in NODE_COUNTS)],
        rows,
        "Mean MiB/s, scenario 2, stripe count 8, 1 MiB transfers:",
    )


def run(repetitions: int = 40, seed: int = 0, progress=None) -> ExperimentOutput:
    records = run_specs(specs(), repetitions=repetitions, seed=seed, progress=progress)
    return ExperimentOutput(
        exp_id=EXP_ID,
        title=TITLE,
        records=records,
        figure=render(records),
        notes="Chunks at or below half the transfer size are equivalent (the "
        "per-node RPC slots already cap the concurrency they add), but chunks "
        ">= the transfer size leave each process with a single outstanding "
        "request and cost ~20% even at 32 nodes — the alignment the paper's "
        "Section III-B insists on ('large enough to require more than one OST "
        "to be accessed for each request') is exactly this boundary.",
    )


register(ExperimentInfo(EXP_ID, TITLE, PAPER_REF, run, default_repetitions=40, specs=specs))
