"""Figure 9 — per-server bandwidth timelines for (0,2) vs (1,1).

The paper's illustration of why balance matters when the network is
the bottleneck: writing 32 GiB over two targets on the *same* server
keeps one link saturated for the whole run, while one target per
server halves the time by filling both links.  We regenerate it from
the engine's observed per-server ingest throughput, using the fixed
chooser to pin each placement.  The two runs lower through
``compile_scenario`` like every other entry point, so they are served
from the result cache on repeat campaigns.
"""

from __future__ import annotations

from ..engine.base import EngineOptions
from ..figures.ascii import timeline_panel
from ..methodology.plan import ExperimentSpec
from ..methodology.records import RecordStore, RunRecord
from ..scenario.compile import compile_scenario
from ..service import get_service
from .common import ExperimentOutput
from .registry import ExperimentInfo, register

EXP_ID = "fig9"
TITLE = "Per-server bandwidth timeline: (0,2) vs (1,1) placements"
PAPER_REF = "Figure 9"

# Two targets on storage2 -> (0, 2); one per server -> (1, 1).
PLACEMENTS = {"(0,2)": "fixed:202,203", "(1,1)": "fixed:101,201"}


def run(repetitions: int = 1, seed: int = 0, progress=None) -> ExperimentOutput:
    panels = []
    records = RecordStore()
    options = EngineOptions(noise_enabled=False, observe_servers=True)
    service = get_service()
    for label, chooser in PLACEMENTS.items():
        spec = compile_scenario(
            ExperimentSpec(
                EXP_ID,
                "scenario1",
                {"chooser": chooser, "stripe_count": 2, "num_nodes": 8, "ppn": 8},
            ),
            seed=seed,
            options=options,
            max_nodes=8,
        )
        result = service.run(spec, 0)
        series = {
            rid.replace("ingest:", ""): list(zip(ts.times, ts.values))
            for rid, ts in result.resource_series.items()
        }
        panels.append(
            timeline_panel(
                series,
                f"Fig 9 {label}: per-server throughput over time "
                f"(run took {result.single.duration:.1f}s)",
            )
        )
        records.append(
            RunRecord.from_run_result(
                result, EXP_ID, "scenario1", 0, {"placement": label, "stripe_count": 2}
            )
        )
    bw = {r.factors["placement"]: r.bw_mib_s for r in records}
    ratio = bw["(1,1)"] / bw["(0,2)"]
    figure = "\n\n".join(panels) + (
        f"\n\n(1,1) achieves {bw['(1,1)']:.0f} MiB/s vs {bw['(0,2)']:.0f} MiB/s "
        f"for (0,2): {ratio:.2f}x — both links vs one."
    )
    return ExperimentOutput(
        exp_id=EXP_ID,
        title=TITLE,
        records=records,
        figure=figure,
        notes="Balanced placement should be ~2x the single-server placement.",
    )


register(ExperimentInfo(EXP_ID, TITLE, PAPER_REF, run, default_repetitions=1))
