"""Extension — the target-allocation policy study the paper motivates.

Section IV-C's Lesson 4 ends with a policy recommendation ("a
selection heuristic that picks the same number of targets in the
storage servers would be the best choice") and the conclusion names
"future work on storage target allocation and stripe count tuning".
This experiment runs that comparison: round-robin (PlaFRIM), random
(BeeGFS default), balanced (the recommended policy) and
capacity-weighted, across stripe counts, in both scenarios.

Expected outcome: *balanced* matches the best case of every stripe
count and removes the placement lottery entirely; *random* has the
best expected value among non-balanced policies for count 4 but keeps
the worst case as likely as the best (as the paper argues); and at
stripe count 8 every policy coincides — the basis for the "use all
targets" default recommendation.
"""

from __future__ import annotations

from ..figures.ascii import render_table
from ..methodology.plan import ExperimentSpec
from ..stats.summary import describe
from .common import ExperimentOutput, run_specs, sweep
from .registry import ExperimentInfo, register

EXP_ID = "choosers"
TITLE = "Allocation-policy study: round-robin vs random vs balanced vs capacity"
PAPER_REF = "extension of Section IV-C (Lesson 4, future work)"

CHOOSERS = ("roundrobin", "random", "balanced", "capacity")
STRIPE_COUNTS = (2, 4, 6, 8)
NODES = {"scenario1": 8, "scenario2": 32}


def specs(scenarios: tuple[str, ...] = ("scenario1", "scenario2")) -> list[ExperimentSpec]:
    return sweep(
        EXP_ID,
        scenario=scenarios,
        chooser=CHOOSERS,
        stripe_count=STRIPE_COUNTS,
        num_nodes=NODES,
        ppn=8,
        total_gib=32,
    )


def render(records) -> str:
    parts = []
    for scenario in ("scenario1", "scenario2"):
        sub = records.filter(scenario=scenario)
        if len(sub) == 0:
            continue
        rows = []
        for k in STRIPE_COUNTS:
            row: list[object] = [k]
            for chooser in CHOOSERS:
                group = sub.filter(chooser=chooser, stripe_count=k)
                if len(group) == 0:
                    row.append("-")
                    continue
                s = describe(group.bandwidths())
                balanced_frac = sum(
                    1 for r in group if min(r.placement) == max(r.placement)
                ) / len(group)
                row.append(f"{s.mean:.0f}+-{s.std:.0f} ({balanced_frac * 100:.0f}% bal)")
            rows.append(row)
        parts.append(
            render_table(
                ["stripe", *CHOOSERS],
                rows,
                f"Allocation policies ({scenario}): mean+-std MiB/s (and % balanced placements)",
            )
        )
    return "\n\n".join(parts)


def run(repetitions: int = 100, seed: int = 0, scenarios=("scenario1", "scenario2"), progress=None) -> ExperimentOutput:
    records = run_specs(specs(tuple(scenarios)), repetitions=repetitions, seed=seed, progress=progress)
    return ExperimentOutput(
        exp_id=EXP_ID,
        title=TITLE,
        records=records,
        figure=render(records),
        notes="Balanced should dominate at every stripe count in scenario 1; "
        "all policies coincide at stripe count 8.",
    )


register(ExperimentInfo(EXP_ID, TITLE, PAPER_REF, run, specs=specs))
