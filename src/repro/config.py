"""Configuration serialization: calibrations and deployments as JSON.

The methodology's portability claim ("a methodology that can be applied
in other systems") needs the model parameters to travel: this module
round-trips :class:`~repro.calibration.plafrim.Calibration` and
:class:`~repro.beegfs.filesystem.BeeGFSDeploymentSpec` through plain
JSON, so a user can describe *their* cluster in a file and run every
experiment and the advisor against it.

Example file (see ``save_calibration`` for the full schema)::

    {
      "calibration": { "name": "mycluster", ... },
      "deployment": { "servers": [["storage1", [101, 102]], ...], ... }
    }
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any

from .beegfs.filesystem import BeeGFSDeploymentSpec
from .beegfs.meta import DirectoryConfig
from .calibration.plafrim import Calibration
from .errors import ConfigError
from .storage.client_model import ClientServiceSpec
from .storage.san import SanRampSpec
from .storage.server import ServerIngestSpec, StoragePoolSpec
from .storage.target import TargetServiceSpec
from .storage.variability import NoiseSpec
from .topology.builders import NetworkSpec

__all__ = [
    "calibration_to_dict",
    "calibration_from_dict",
    "deployment_to_dict",
    "deployment_from_dict",
    "save_system",
    "load_system",
]


def calibration_to_dict(calibration: Calibration) -> dict[str, Any]:
    """A plain-JSON representation of a calibration."""
    out = {
        "name": calibration.name,
        "description": calibration.description,
        "network": asdict(calibration.network),
        "client": asdict(calibration.client),
        "ingest": asdict(calibration.ingest),
        "target": asdict(calibration.target),
        "pool": asdict(calibration.pool),
        "san": asdict(calibration.san),
        "request_rtt_s": calibration.request_rtt_s,
        "metadata_overhead_s": calibration.metadata_overhead_s,
        "metadata_sigma": calibration.metadata_sigma,
        "storage_noise": asdict(calibration.storage_noise),
        "network_noise": (
            asdict(calibration.network_noise) if calibration.network_noise is not None else None
        ),
        "read_storage_factor": calibration.read_storage_factor,
    }
    return out


def _require(data: dict[str, Any], key: str, what: str) -> Any:
    try:
        return data[key]
    except KeyError:
        raise ConfigError(f"{what}: missing required key {key!r}") from None


def _tupled(data: dict[str, Any], *keys: str) -> dict[str, Any]:
    out = dict(data)
    for key in keys:
        if key in out and out[key] is not None:
            out[key] = tuple(out[key])
    return out


def calibration_from_dict(data: dict[str, Any]) -> Calibration:
    """Inverse of :func:`calibration_to_dict` (validating)."""
    try:
        network_noise = data.get("network_noise")
        return Calibration(
            name=_require(data, "name", "calibration"),
            description=data.get("description", ""),
            network=NetworkSpec(**_require(data, "network", "calibration")),
            client=ClientServiceSpec(**_require(data, "client", "calibration")),
            ingest=ServerIngestSpec(**_require(data, "ingest", "calibration")),
            target=TargetServiceSpec(**_require(data, "target", "calibration")),
            pool=StoragePoolSpec(**_tupled(_require(data, "pool", "calibration"), "scaling")),
            san=SanRampSpec(**_require(data, "san", "calibration")),
            request_rtt_s=float(_require(data, "request_rtt_s", "calibration")),
            metadata_overhead_s=float(_require(data, "metadata_overhead_s", "calibration")),
            metadata_sigma=float(data.get("metadata_sigma", 0.4)),
            storage_noise=NoiseSpec(
                **_tupled(_require(data, "storage_noise", "calibration"), "scope_prefixes")
            ),
            network_noise=(
                NoiseSpec(**_tupled(network_noise, "scope_prefixes"))
                if network_noise is not None
                else None
            ),
            read_storage_factor=float(data.get("read_storage_factor", 1.12)),
        )
    except TypeError as err:
        raise ConfigError(f"invalid calibration document: {err}") from err


def deployment_to_dict(deployment: BeeGFSDeploymentSpec) -> dict[str, Any]:
    """A plain-JSON representation of a deployment."""
    return {
        "servers": [[host, list(tids)] for host, tids in deployment.servers],
        "target_capacity_bytes": deployment.target_capacity_bytes,
        "default_config": asdict(deployment.default_config),
        "default_chooser": deployment.default_chooser,
        "target_ordering": (
            list(deployment.target_ordering) if deployment.target_ordering is not None else None
        ),
        "mdt_capacity_bytes": deployment.mdt_capacity_bytes,
        "keep_data": deployment.keep_data,
    }


def deployment_from_dict(data: dict[str, Any]) -> BeeGFSDeploymentSpec:
    """Inverse of :func:`deployment_to_dict` (validating)."""
    try:
        servers = tuple(
            (host, tuple(int(t) for t in tids))
            for host, tids in _require(data, "servers", "deployment")
        )
        ordering = data.get("target_ordering")
        return BeeGFSDeploymentSpec(
            servers=servers,
            target_capacity_bytes=int(data.get("target_capacity_bytes", 16 * 1024**4)),
            default_config=DirectoryConfig(**data.get("default_config", {})),
            default_chooser=data.get("default_chooser", "roundrobin"),
            target_ordering=tuple(int(t) for t in ordering) if ordering is not None else None,
            mdt_capacity_bytes=int(data.get("mdt_capacity_bytes", int(1.6 * 1024**4))),
            keep_data=bool(data.get("keep_data", False)),
        )
    except TypeError as err:
        raise ConfigError(f"invalid deployment document: {err}") from err


def save_system(
    path: str | Path,
    calibration: Calibration,
    deployment: BeeGFSDeploymentSpec | None = None,
) -> None:
    """Write a system description (calibration + optional deployment)."""
    document: dict[str, Any] = {"calibration": calibration_to_dict(calibration)}
    if deployment is not None:
        document["deployment"] = deployment_to_dict(deployment)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def load_system(path: str | Path) -> tuple[Calibration, BeeGFSDeploymentSpec | None]:
    """Read a system description written by :func:`save_system`."""
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as err:
        raise ConfigError(f"cannot read system file {path}: {err}") from err
    if "calibration" not in document:
        raise ConfigError(f"{path}: missing 'calibration' section")
    calibration = calibration_from_dict(document["calibration"])
    deployment = (
        deployment_from_dict(document["deployment"]) if "deployment" in document else None
    )
    return calibration, deployment
