"""Object Storage Server (OSS) host models: ingest service and backplane.

Two per-host effects matter beyond the raw NIC line rate:

* **Ingest service** — the OSS worker pool and its transport stack only
  saturate the NIC when enough client streams are active, so the
  effective ingest capacity ramps with concurrency just like a target:
  ``link * protocol_efficiency * (1 - exp(-depth / depth_constant))``.
  This is what delays scenario 1's plateau to ~4 nodes (Figure 4a) even
  though two balanced links could, in principle, be filled by two.
* **Storage pool** — the host's RAID controllers, HBA lanes and memory
  bandwidth are shared by its OSTs, so the aggregate storage rate grows
  *sub-linearly* with the number of simultaneously active targets:
  ``S(m) = m * per_target_rate * scaling[m]`` with scaling < 1 for
  m > 1.  The PlaFRIM calibration (1764, 3400, 4700, 5900 MiB/s for
  1-4 active targets) reproduces Figure 6b's sub-linear growth and the
  ~10% advantage of (3,3) over (2,4) placements (Figure 10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import StorageError
from ..netsim.fluid import ResourceContext
from .target import TargetServiceSpec

__all__ = [
    "ServerIngestSpec",
    "ServerIngestModel",
    "StoragePoolSpec",
    "StoragePoolModel",
    "StorageHostSpec",
]


@dataclass(frozen=True)
class ServerIngestSpec:
    """Parameters of one OSS host's network-ingest service."""

    link_mib_s: float
    protocol_efficiency: float = 0.92
    depth_constant: float = 5.0

    def __post_init__(self) -> None:
        if self.link_mib_s <= 0:
            raise StorageError("server link rate must be positive")
        if not 0 < self.protocol_efficiency <= 1:
            raise StorageError("protocol efficiency must be in (0, 1]")
        if self.depth_constant <= 0:
            raise StorageError("ingest depth constant must be positive")

    @property
    def effective_link_mib_s(self) -> float:
        """Ingest rate at full concurrency."""
        return self.link_mib_s * self.protocol_efficiency

    def rate_at_depth(self, depth: float) -> float:
        if depth <= 0:
            return 0.0
        return self.effective_link_mib_s * (1.0 - math.exp(-depth / self.depth_constant))


@dataclass(frozen=True)
class ServerIngestModel:
    """Capacity provider for one OSS host's ingest resource."""

    host: str
    spec: ServerIngestSpec

    # Population-and-noise only (no ctx.time): foldable by the engine.
    noise_scaled = True

    def capacity(self, ctx: ResourceContext) -> float:
        return self.spec.rate_at_depth(ctx.depth) * ctx.noise

    @property
    def resource_id(self) -> str:
        return f"ingest:{self.host}"


@dataclass(frozen=True)
class StoragePoolSpec:
    """Aggregate storage rate of one host vs number of active targets.

    ``scaling[m-1]`` is the per-target efficiency with ``m`` targets
    simultaneously busy; beyond the table it decays geometrically by
    ``tail_decay`` per extra target.
    """

    per_target_mib_s: float = 1764.0
    scaling: tuple[float, ...] = (1.0, 0.964, 0.888, 0.836)
    tail_decay: float = 0.95

    def __post_init__(self) -> None:
        if self.per_target_mib_s <= 0:
            raise StorageError("per-target pool rate must be positive")
        if not self.scaling or any(not 0 < s <= 1 for s in self.scaling):
            raise StorageError("scaling factors must be in (0, 1]")
        if not 0 < self.tail_decay <= 1:
            raise StorageError("tail decay must be in (0, 1]")

    def efficiency(self, active_targets: int) -> float:
        """Per-target efficiency at the given number of active targets."""
        if active_targets < 1:
            raise StorageError("need at least one active target")
        if active_targets <= len(self.scaling):
            return self.scaling[active_targets - 1]
        extra = active_targets - len(self.scaling)
        return self.scaling[-1] * self.tail_decay**extra

    def aggregate_mib_s(self, active_targets: int) -> float:
        """Total host storage rate with ``m`` targets active."""
        if active_targets == 0:
            return 0.0
        return active_targets * self.per_target_mib_s * self.efficiency(active_targets)


@dataclass(frozen=True)
class StoragePoolModel:
    """Capacity provider for one host's shared storage pool.

    Declares ``distinct_tag = "target"`` so the engines feed it the
    number of distinct targets among its active flows.
    """

    host: str
    spec: StoragePoolSpec

    distinct_tag = "target"
    # Population-and-noise only (no ctx.time): foldable by the engine.
    noise_scaled = True

    def capacity(self, ctx: ResourceContext) -> float:
        if ctx.nflows == 0:
            return 0.0
        return self.spec.aggregate_mib_s(max(ctx.distinct, 1)) * ctx.noise

    @property
    def resource_id(self) -> str:
        return f"pool:{self.host}"


@dataclass(frozen=True)
class StorageHostSpec:
    """Everything the engine needs to model one storage host (OSS).

    ``target_ids`` are BeeGFS-style numeric target ids; on PlaFRIM the
    first host owns targets 101-104 and the second 201-204 (the ids the
    paper quotes when describing the round-robin allocations).
    """

    host: str
    target_ids: tuple[int, ...]
    target_spec: TargetServiceSpec
    ingest_spec: ServerIngestSpec
    pool_spec: StoragePoolSpec = field(default_factory=StoragePoolSpec)
    per_target_specs: dict[int, TargetServiceSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.target_ids:
            raise StorageError(f"storage host {self.host!r} has no targets")
        if len(set(self.target_ids)) != len(self.target_ids):
            raise StorageError(f"storage host {self.host!r}: duplicate target ids")
        unknown = set(self.per_target_specs) - set(self.target_ids)
        if unknown:
            raise StorageError(f"per-target specs for unknown targets {sorted(unknown)}")

    def spec_for(self, target_id: int) -> TargetServiceSpec:
        """Service spec of one target (honours per-target overrides)."""
        if target_id not in self.target_ids:
            raise StorageError(f"target {target_id} is not on host {self.host!r}")
        return self.per_target_specs.get(target_id, self.target_spec)

    @property
    def peak_storage_mib_s(self) -> float:
        """Aggregate storage-side peak with every target busy."""
        return self.pool_spec.aggregate_mib_s(len(self.target_ids))

    @property
    def pool_resource_id(self) -> str:
        return f"pool:{self.host}"
