"""Physical storage devices and RAID arrays.

PlaFRIM's OSTs are RAID-6 arrays of twelve Toshiba AL15SEB18EOY 1.8 TB
10k-RPM HDDs; its MDTs are RAID-1 pairs of Samsung MZILT1T6HAJQ0D3
SSDs (paper, Section III-A).  These classes turn such descriptions into
peak streaming-write rates that feed the target service model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from ..errors import StorageError
from ..units import TiB

__all__ = ["HDDSpec", "SSDSpec", "RAIDArray", "TOSHIBA_AL15SEB18EOY", "SAMSUNG_MZILT1T6HAJQ"]


@dataclass(frozen=True)
class HDDSpec:
    """A hard disk drive: streaming rate plus the facts the paper lists."""

    model: str
    capacity_bytes: int
    rpm: int
    sustained_write_mib_s: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise StorageError(f"{self.model}: capacity must be positive")
        if self.rpm <= 0:
            raise StorageError(f"{self.model}: rpm must be positive")
        if self.sustained_write_mib_s <= 0:
            raise StorageError(f"{self.model}: write rate must be positive")


@dataclass(frozen=True)
class SSDSpec:
    """A solid-state drive (metadata targets)."""

    model: str
    capacity_bytes: int
    sustained_write_mib_s: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise StorageError(f"{self.model}: capacity must be positive")
        if self.sustained_write_mib_s <= 0:
            raise StorageError(f"{self.model}: write rate must be positive")


# The drives of the PlaFRIM deployment.  Rates are the vendor-sheet
# sustained transfer rates; the RAID controller efficiency below absorbs
# everything between sheet numbers and the achieved array throughput.
TOSHIBA_AL15SEB18EOY = HDDSpec(
    model="Toshiba AL15SEB18EOY",
    capacity_bytes=int(1.8 * TiB),
    rpm=10_000,
    sustained_write_mib_s=210.0,
)

SAMSUNG_MZILT1T6HAJQ = SSDSpec(
    model="Samsung MZILT1T6HAJQ0D3",
    capacity_bytes=int(1.6 * TiB),
    sustained_write_mib_s=900.0,
)

RAIDLevel = Literal["raid0", "raid1", "raid5", "raid6", "raid10"]

_PARITY_DEVICES: dict[str, int] = {"raid0": 0, "raid5": 1, "raid6": 2}


@dataclass(frozen=True)
class RAIDArray:
    """A RAID array of identical devices behind one controller.

    ``controller_efficiency`` is the fraction of the ideal striped rate
    the controller actually delivers for large sequential writes
    (parity computation, chunk alignment, command overhead).  With the
    PlaFRIM calibration (12 drives, RAID-6, efficiency 0.84) an OST
    peaks at ~1764 MiB/s, the stripe-count-1 mean of Figure 6b.
    """

    level: RAIDLevel
    devices: int
    device: HDDSpec | SSDSpec
    controller_efficiency: float = 0.84

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise StorageError("RAID array needs at least one device")
        if not 0 < self.controller_efficiency <= 1:
            raise StorageError("controller efficiency must be in (0, 1]")
        if self.level in ("raid5",) and self.devices < 3:
            raise StorageError("RAID-5 needs >= 3 devices")
        if self.level == "raid6" and self.devices < 4:
            raise StorageError("RAID-6 needs >= 4 devices")
        if self.level in ("raid1", "raid10") and self.devices % 2 != 0:
            raise StorageError(f"{self.level} needs an even device count")

    @property
    def data_devices(self) -> int:
        """Devices contributing write bandwidth (excludes parity/mirrors)."""
        if self.level == "raid1":
            return 1
        if self.level == "raid10":
            return self.devices // 2
        return self.devices - _PARITY_DEVICES[self.level]

    @property
    def usable_capacity_bytes(self) -> int:
        return self.data_devices * self.device.capacity_bytes

    @property
    def streaming_write_mib_s(self) -> float:
        """Peak large-sequential write rate of the array."""
        return self.data_devices * self.device.sustained_write_mib_s * self.controller_efficiency


def plafrim_ost_array() -> RAIDArray:
    """The RAID-6 x12-HDD array behind each PlaFRIM OST."""
    return RAIDArray(level="raid6", devices=12, device=TOSHIBA_AL15SEB18EOY)


def plafrim_mdt_array() -> RAIDArray:
    """The RAID-1 SSD pair behind each PlaFRIM MDT."""
    return RAIDArray(level="raid1", devices=2, device=SAMSUNG_MZILT1T6HAJQ, controller_efficiency=0.95)
