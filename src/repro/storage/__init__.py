"""Storage hardware models.

Bottom-up: physical devices (HDD/SSD specs, RAID arrays) determine the
peak streaming rate of a storage target; a target's *achieved* rate
additionally depends on how many requests are outstanding against it
(the concurrency/queue-depth effect at the heart of the paper's
Lessons 1, 2 and 6); a storage host (OSS machine) adds a bounded
backplane and a network-ingest service with its own concurrency ramp.
Multiplicative noise models reproduce the production-system variability
the paper's protocol is designed around.
"""

from .device import HDDSpec, RAIDArray, SSDSpec
from .target import StorageTargetModel, TargetServiceSpec
from .server import (
    ServerIngestModel,
    ServerIngestSpec,
    StorageHostSpec,
    StoragePoolModel,
    StoragePoolSpec,
)
from .san import SanModel, SanRampSpec
from .client_model import ClientServiceSpec, RetryPolicy
from .variability import CompositeNoise, NoiseSpec, SharedStateNoise, StochasticNoise

__all__ = [
    "HDDSpec",
    "SSDSpec",
    "RAIDArray",
    "TargetServiceSpec",
    "StorageTargetModel",
    "ServerIngestSpec",
    "ServerIngestModel",
    "StorageHostSpec",
    "StoragePoolSpec",
    "StoragePoolModel",
    "SanRampSpec",
    "SanModel",
    "ClientServiceSpec",
    "RetryPolicy",
    "NoiseSpec",
    "StochasticNoise",
    "SharedStateNoise",
    "CompositeNoise",
]
