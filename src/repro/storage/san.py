"""The system-wide storage-stack ceiling and its concurrency ramp.

Several of the paper's observations point at one *global* limit of the
storage stack (independent of which targets are used) that only full
client-side concurrency can saturate:

* the eight-target aggregate tops out near 8 GiB/s (Figure 6b) even
  though the per-server pools could deliver more;
* the node count needed to reach a stripe count's plateau grows with
  the stripe count (Figure 11) in a way a *per-target* queue model
  cannot explain together with Figure 13;
* two applications sharing all four OSTs perform exactly like two
  applications on disjoint sets (Figure 13, Welch p = 0.90) — at equal
  total concurrency the system delivers the same bandwidth no matter
  how many distinct targets are active, as long as no per-server pool
  is saturated.

We model it as a capacity ramp over the **total number of outstanding
chunk requests** ``d`` across the whole system:

    cap(d) = base * [ a * (1 - exp(-d / d_fast))
                      + (1 - a) * (1 - exp(-d / d_slow)) ]

The fast component (small ``d_fast``) represents per-connection
pipelining that a handful of processes already exploits; the slow
component (large ``d_slow``) is the deep parallelism only dozens of
nodes provide.  With the PlaFRIM calibration (base 9800, a = 0.25,
d_fast = 10, d_slow = 280) the stripe-count plateaus land at ~2, ~3,
~14 and ~32 nodes for counts 1, 2, 4 and 8 — the paper's Figure 11.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import StorageError
from ..netsim.fluid import ResourceContext

__all__ = ["SanRampSpec", "SanModel", "SAN_RESOURCE_ID"]

SAN_RESOURCE_ID = "san:storage"


@dataclass(frozen=True)
class SanRampSpec:
    """Parameters of the global storage-stack ramp."""

    base_mib_s: float = 9800.0
    fast_fraction: float = 0.25
    depth_fast: float = 10.0
    depth_slow: float = 280.0

    def __post_init__(self) -> None:
        if self.base_mib_s <= 0:
            raise StorageError("SAN base capacity must be positive")
        if not 0 <= self.fast_fraction <= 1:
            raise StorageError("fast fraction must be in [0, 1]")
        if self.depth_fast <= 0 or self.depth_slow <= 0:
            raise StorageError("ramp depth constants must be positive")

    def ramp(self, depth: float) -> float:
        """Saturation fraction at total outstanding-request depth ``d``."""
        if depth <= 0:
            return 0.0
        a = self.fast_fraction
        return a * (1.0 - math.exp(-depth / self.depth_fast)) + (1.0 - a) * (
            1.0 - math.exp(-depth / self.depth_slow)
        )

    def capacity_at(self, depth: float) -> float:
        return self.base_mib_s * self.ramp(depth)

    def depth_for_capacity(self, mib_s: float) -> float:
        """Smallest depth whose capacity reaches ``mib_s`` (bisection).

        Used to predict plateau positions: the node count at which a
        stripe count's storage-side ceiling gets saturated.
        """
        if not 0 < mib_s < self.base_mib_s:
            raise StorageError(f"capacity {mib_s} outside (0, {self.base_mib_s})")
        lo, hi = 0.0, 1.0
        while self.capacity_at(hi) < mib_s:
            hi *= 2.0
            if hi > 1e9:  # pragma: no cover - spec validation prevents this
                raise StorageError("ramp never reaches requested capacity")
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if self.capacity_at(mid) < mib_s:
                lo = mid
            else:
                hi = mid
        return hi


@dataclass(frozen=True)
class SanModel:
    """Capacity provider for the global storage resource."""

    spec: SanRampSpec

    # Population-and-noise only (no ctx.time): foldable by the engine.
    noise_scaled = True

    def capacity(self, ctx: ResourceContext) -> float:
        return self.spec.capacity_at(ctx.depth) * ctx.noise

    @property
    def resource_id(self) -> str:
        return SAN_RESOURCE_ID
