"""Object Storage Target (OST) service model.

A storage array only reaches its peak streaming rate when enough
requests are outstanding against it: command queues must stay full
across all spindles.  We model the achieved service rate as a concave
saturating function of the concurrency (*depth*):

    rate(depth) = peak * (1 - exp(-depth / depth_constant))

With the PlaFRIM calibration (``depth_constant = 6``) an OST delivers
~74% of peak at depth 8 and ~99% at depth 32.  Because an N-1 write
over ``k`` targets spreads its ``P`` processes as depth ``P / k`` per
target, this single curve produces the paper's observations that the
node count needed to reach the bandwidth plateau grows with the stripe
count (Figure 11, Lesson 6) and that single-node runs hide the effect
of the stripe count entirely (Lesson 1, the Chowdhury et al. critique).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import StorageError
from ..netsim.fluid import ResourceContext
from .device import RAIDArray

__all__ = ["TargetServiceSpec", "StorageTargetModel"]


@dataclass(frozen=True)
class TargetServiceSpec:
    """Parameters of one OST's service curve."""

    peak_mib_s: float
    depth_constant: float = 6.0

    def __post_init__(self) -> None:
        if self.peak_mib_s <= 0:
            raise StorageError("target peak rate must be positive")
        if self.depth_constant <= 0:
            raise StorageError("depth constant must be positive")

    @classmethod
    def from_array(cls, array: RAIDArray, depth_constant: float = 6.0) -> "TargetServiceSpec":
        """Derive the service spec from the backing RAID array."""
        return cls(peak_mib_s=array.streaming_write_mib_s, depth_constant=depth_constant)

    def rate_at_depth(self, depth: float) -> float:
        """Achieved service rate at the given request concurrency."""
        if depth <= 0:
            return 0.0
        return self.peak_mib_s * (1.0 - math.exp(-depth / self.depth_constant))

    def depth_for_fraction(self, fraction: float) -> float:
        """Concurrency needed to achieve ``fraction`` of the peak rate."""
        if not 0 < fraction < 1:
            raise StorageError("fraction must be in (0, 1)")
        return -self.depth_constant * math.log(1.0 - fraction)


@dataclass(frozen=True)
class StorageTargetModel:
    """Capacity provider for one OST (plugs into the fluid engine).

    The context's ``depth`` is the summed depth weight of the active
    flows through this target, and ``noise`` the epoch's multiplicative
    variability — storage devices are where the paper locates the high
    variance of scenario 2 (Section IV-C2, citing Cao et al.).
    """

    target_id: str
    spec: TargetServiceSpec

    # Depends only on the active population (depth) and noise — lets
    # the fluid engine fold it into the per-population base vector.
    noise_scaled = True

    def capacity(self, ctx: ResourceContext) -> float:
        return self.spec.rate_at_depth(ctx.depth) * ctx.noise

    @property
    def resource_id(self) -> str:
        return f"ost:{self.target_id}"
