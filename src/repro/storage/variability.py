"""Stochastic capacity variability.

The paper goes to great lengths (Section III-C) to *cover* the natural
variability of a production system — caching states, transient events,
other users — rather than suppress it, and several results depend on
it: the large spread of scenario 2 (std 139.8 -> 787.9 MiB/s from 1 to
8 targets), the wide whiskers of small data sizes (Figure 2), and the
need to look at all 100 points rather than means (Lesson 5).

:class:`StochasticNoise` composes three mean-one multiplicative parts:

* a **run-level** draw per resource (the state the system happens to be
  in for this run: cache pressure, placement of other users' data);
* an **epoch-level** draw per resource, resampled every
  ``epoch_length_s`` of simulated time (short-term fluctuation; long
  runs average over more epochs, which is exactly why Figure 2 shows
  variability shrinking as the data size grows);
* rare **transient events** that cut a resource's capacity sharply for
  one epoch (the "transient events in the machine" of Section III-C).

All draws are mean-adjusted lognormals, so the noise perturbs but does
not bias the calibrated capacities.  A model instance caches run-level
draws internally: build a fresh instance per simulated run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import StorageError

__all__ = ["NoiseSpec", "StochasticNoise", "SharedStateNoise", "CompositeNoise"]


@dataclass(frozen=True)
class NoiseSpec:
    """Parameters of the three-part noise model.

    ``scope_prefixes`` restricts the noise to matching resource ids
    (e.g. ``("pool:", "san:")`` for storage-side variability);
    everything else gets multiplier 1.0.
    """

    sigma_run: float = 0.08
    sigma_epoch: float = 0.05
    epoch_length_s: float = 4.0
    transient_prob: float = 0.01
    transient_severity: float = 0.5
    scope_prefixes: tuple[str, ...] = ("pool:", "san:")

    def __post_init__(self) -> None:
        if self.sigma_run < 0 or self.sigma_epoch < 0:
            raise StorageError("noise sigmas must be non-negative")
        if self.epoch_length_s <= 0:
            raise StorageError("epoch length must be positive")
        if not 0 <= self.transient_prob <= 1:
            raise StorageError("transient probability must be in [0, 1]")
        if not 0 < self.transient_severity <= 1:
            raise StorageError("transient severity must be in (0, 1]")

    @property
    def quiet(self) -> bool:
        """True when every multiplier is deterministically 1."""
        return self.sigma_run == 0 and self.sigma_epoch == 0 and self.transient_prob == 0


def _mean_one_lognormal(rng: np.random.Generator, sigma: float) -> float:
    """A lognormal draw with mean exactly 1 (mu = -sigma^2 / 2)."""
    if sigma == 0:
        return 1.0
    return float(np.exp(rng.normal(-0.5 * sigma * sigma, sigma)))


@dataclass
class StochasticNoise:
    """Noise model implementing the fluid engine's ``NoiseModel`` protocol.

    Instances are single-run: the run-level component is drawn lazily
    per resource and cached for the lifetime of the instance.
    """

    spec: NoiseSpec = field(default_factory=NoiseSpec)
    _run_level: dict[str, float] = field(default_factory=dict, repr=False)
    _scope_cache: dict[str, bool] = field(default_factory=dict, repr=False)

    @property
    def epoch_length_s(self) -> float:
        return self.spec.epoch_length_s if not self.spec.quiet else math.inf

    def in_scope(self, resource_id: str) -> bool:
        hit = self._scope_cache.get(resource_id)
        if hit is None:
            hit = any(resource_id.startswith(p) for p in self.spec.scope_prefixes)
            self._scope_cache[resource_id] = hit
        return hit

    def multiplier(self, resource_id: str, epoch: int, rng: np.random.Generator) -> float:
        if self.spec.quiet or not self.in_scope(resource_id):
            return 1.0
        if resource_id not in self._run_level:
            self._run_level[resource_id] = _mean_one_lognormal(rng, self.spec.sigma_run)
        value = self._run_level[resource_id] * _mean_one_lognormal(rng, self.spec.sigma_epoch)
        if self.spec.transient_prob > 0 and rng.random() < self.spec.transient_prob:
            value *= self.spec.transient_severity
        return value


@dataclass
class SharedStateNoise:
    """One multiplier for *all* in-scope resources (correlated noise).

    Models a system-wide storage state: cache pressure, background
    traffic and controller load affect the whole stack together, so
    the pools, targets and the SAN move in lockstep.  This matters for
    Figure 13: with correlated noise the shared-vs-distinct comparison
    is exactly ratio-preserving, as the paper observed (p = 0.90) —
    independent per-resource noise would penalise whichever case sits
    closer to a pool ceiling.

    Like :class:`StochasticNoise`, instances are single-run: the
    run-level draw and each epoch's draw are cached.
    """

    spec: NoiseSpec = field(default_factory=NoiseSpec)
    _run_level: float | None = field(default=None, repr=False)
    _epoch_cache: dict[int, float] = field(default_factory=dict, repr=False)
    _scope_cache: dict[str, bool] = field(default_factory=dict, repr=False)

    @property
    def epoch_length_s(self) -> float:
        return self.spec.epoch_length_s if not self.spec.quiet else math.inf

    def in_scope(self, resource_id: str) -> bool:
        hit = self._scope_cache.get(resource_id)
        if hit is None:
            hit = any(resource_id.startswith(p) for p in self.spec.scope_prefixes)
            self._scope_cache[resource_id] = hit
        return hit

    def multiplier(self, resource_id: str, epoch: int, rng: np.random.Generator) -> float:
        if self.spec.quiet or not self.in_scope(resource_id):
            return 1.0
        if self._run_level is None:
            self._run_level = _mean_one_lognormal(rng, self.spec.sigma_run)
        if epoch not in self._epoch_cache:
            value = _mean_one_lognormal(rng, self.spec.sigma_epoch)
            if self.spec.transient_prob > 0 and rng.random() < self.spec.transient_prob:
                value *= self.spec.transient_severity
            self._epoch_cache[epoch] = value
        return self._run_level * self._epoch_cache[epoch]


@dataclass
class CompositeNoise:
    """The product of several noise models with compatible epochs.

    Used to combine, e.g., storage-device noise with a milder network
    noise in one simulation.  Every member must either be epoch-free
    (infinite epoch length) or share the same finite epoch length, so
    the composite resamples all members consistently.
    """

    models: "tuple[StochasticNoise | SharedStateNoise, ...]"

    def __post_init__(self) -> None:
        if not self.models:
            raise StorageError("composite noise needs at least one model")
        finite = {m.epoch_length_s for m in self.models if math.isfinite(m.epoch_length_s)}
        if len(finite) > 1:
            raise StorageError(f"incompatible epoch lengths {sorted(finite)}")

    @property
    def epoch_length_s(self) -> float:
        return min(m.epoch_length_s for m in self.models)

    def multiplier(self, resource_id: str, epoch: int, rng: np.random.Generator) -> float:
        value = 1.0
        for model in self.models:
            value *= model.multiplier(resource_id, epoch, rng)
        return value
