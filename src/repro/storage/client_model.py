"""BeeGFS client-side service capacity.

The paper's Lesson 3: the number of processes per node and the number
of nodes have *independent* effects — doubling the processes on each
node does not substitute for more nodes, because each node's BeeGFS
client (a kernel module funnelling every process's traffic) has its own
service ceiling, and processes additionally contend for the NIC,
memory bus and client worker threads (Section IV-B, citing Dorier et
al. on intra-node contention).

We model each compute node as one capacitated resource whose value
depends on the process count placed on the node:

    cap(ppn) = base / (1 + contention * max(0, ppn - knee))

so up to ``knee`` processes share the full client capacity and beyond
it the ceiling *decreases slightly* — matching Figure 5's "very
similar, with a slight degradation" at 16 processes per node.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StorageError

__all__ = ["ClientServiceSpec", "RetryPolicy"]


@dataclass(frozen=True)
class ClientServiceSpec:
    """Per-compute-node client throughput ceiling.

    ``max_inflight_requests`` is the number of chunk requests one
    node's client keeps on the wire at once (BeeGFS bounds per-node
    server connections/RPC slots).  It is why extra processes per node
    do not create extra *storage-side* parallelism — the paper's
    Lesson 3 — while extra nodes do.
    """

    base_mib_s: float
    contention_per_proc: float = 0.003
    knee_procs: int = 8
    max_inflight_requests: int = 16

    def __post_init__(self) -> None:
        if self.base_mib_s <= 0:
            raise StorageError("client base capacity must be positive")
        if self.contention_per_proc < 0:
            raise StorageError("negative contention coefficient")
        if self.knee_procs < 1:
            raise StorageError("knee must be >= 1 process")
        if self.max_inflight_requests < 1:
            raise StorageError("need at least one in-flight request slot")

    def node_capacity(self, ppn: int) -> float:
        """Client throughput ceiling of one node running ``ppn`` processes."""
        if ppn < 1:
            raise StorageError(f"ppn must be >= 1, got {ppn}")
        excess = max(0, ppn - self.knee_procs)
        return self.base_mib_s / (1.0 + self.contention_per_proc * excess)

    @staticmethod
    def resource_id(node: str) -> str:
        return f"client:{node}"


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side chunk-request robustness knobs (simulated time).

    A BeeGFS client whose chunk request makes no progress (the target or
    its server is unreachable) times out after ``timeout_s``, backs off
    ``backoff_base_s * backoff_factor**(attempt-1)`` seconds (capped at
    ``backoff_max_s``) and retries, up to ``max_retries`` times.  When
    the retries are exhausted the request is abandoned and the run
    degrades gracefully to a partial result instead of hanging — the
    engines record every timeout/retry/abandon in the run's fault trace.

    The defaults ride out outages of roughly a minute: timeouts plus
    backoffs sum to ~100 s of simulated patience before giving up.
    """

    timeout_s: float = 1.0
    max_retries: int = 8
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise StorageError("request timeout must be positive")
        if self.max_retries < 0:
            raise StorageError("negative retry count")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise StorageError("negative backoff")
        if self.backoff_factor < 1.0:
            raise StorageError("backoff factor must be >= 1")

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise StorageError(f"attempt must be >= 1, got {attempt}")
        return min(self.backoff_max_s, self.backoff_base_s * self.backoff_factor ** (attempt - 1))
