"""BeeGFS client-side service capacity.

The paper's Lesson 3: the number of processes per node and the number
of nodes have *independent* effects — doubling the processes on each
node does not substitute for more nodes, because each node's BeeGFS
client (a kernel module funnelling every process's traffic) has its own
service ceiling, and processes additionally contend for the NIC,
memory bus and client worker threads (Section IV-B, citing Dorier et
al. on intra-node contention).

We model each compute node as one capacitated resource whose value
depends on the process count placed on the node:

    cap(ppn) = base / (1 + contention * max(0, ppn - knee))

so up to ``knee`` processes share the full client capacity and beyond
it the ceiling *decreases slightly* — matching Figure 5's "very
similar, with a slight degradation" at 16 processes per node.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StorageError

__all__ = ["ClientServiceSpec"]


@dataclass(frozen=True)
class ClientServiceSpec:
    """Per-compute-node client throughput ceiling.

    ``max_inflight_requests`` is the number of chunk requests one
    node's client keeps on the wire at once (BeeGFS bounds per-node
    server connections/RPC slots).  It is why extra processes per node
    do not create extra *storage-side* parallelism — the paper's
    Lesson 3 — while extra nodes do.
    """

    base_mib_s: float
    contention_per_proc: float = 0.003
    knee_procs: int = 8
    max_inflight_requests: int = 16

    def __post_init__(self) -> None:
        if self.base_mib_s <= 0:
            raise StorageError("client base capacity must be positive")
        if self.contention_per_proc < 0:
            raise StorageError("negative contention coefficient")
        if self.knee_procs < 1:
            raise StorageError("knee must be >= 1 process")
        if self.max_inflight_requests < 1:
            raise StorageError("need at least one in-flight request slot")

    def node_capacity(self, ppn: int) -> float:
        """Client throughput ceiling of one node running ``ppn`` processes."""
        if ppn < 1:
            raise StorageError(f"ppn must be >= 1, got {ppn}")
        excess = max(0, ppn - self.knee_procs)
        return self.base_mib_s / (1.0 + self.contention_per_proc * excess)

    @staticmethod
    def resource_id(node: str) -> str:
        return f"client:{node}"
