"""Bi-modality detection.

Scenario 1's stripe counts 2, 3, 5 and 6 produce *bi-modal* bandwidth
distributions because the round-robin chooser lands on different
(min, max) placements in different runs (Section IV-C1).  Two
detectors are provided:

* the **bimodality coefficient** ``BC = (skew^2 + 1) / kurtosis`` —
  values above the uniform-distribution benchmark (5/9 ~ 0.555)
  suggest more than one mode;
* a **two-component Gaussian mixture** fitted by EM, compared against
  a single Gaussian by BIC, with a separation requirement between the
  fitted means (Ashman's D > 2 is the classic "clearly separated"
  threshold).

:func:`is_bimodal` combines them: the mixture must win the BIC
comparison *and* be well separated with non-trivial weights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from ..errors import AnalysisError

__all__ = ["bimodality_coefficient", "fit_two_gaussians", "BimodalityReport", "is_bimodal"]

BC_UNIFORM_BENCHMARK = 5.0 / 9.0


def bimodality_coefficient(values: object) -> float:
    """Sarle's bimodality coefficient with small-sample correction."""
    arr = np.asarray(values, dtype=float).ravel()
    n = arr.size
    if n < 4:
        raise AnalysisError(f"bimodality coefficient needs >= 4 samples, got {n}")
    if np.allclose(arr, arr[0]):
        return 0.0
    skew = float(sps.skew(arr, bias=False))
    kurt = float(sps.kurtosis(arr, bias=False))  # excess kurtosis
    denom = kurt + 3.0 * (n - 1) ** 2 / ((n - 2) * (n - 3))
    if denom <= 0:
        return 1.0
    return (skew**2 + 1.0) / denom


@dataclass(frozen=True)
class GaussianMixture2:
    """A fitted two-component 1-D Gaussian mixture."""

    weights: tuple[float, float]
    means: tuple[float, float]
    stds: tuple[float, float]
    log_likelihood: float
    converged: bool

    @property
    def ashman_d(self) -> float:
        """Ashman's D: separation of the two means in pooled-sigma units."""
        m1, m2 = self.means
        s1, s2 = self.stds
        return float(np.sqrt(2.0) * abs(m1 - m2) / np.sqrt(s1**2 + s2**2))

    @property
    def minor_weight(self) -> float:
        return min(self.weights)

    def bic(self, n: int) -> float:
        # 5 free parameters: 2 means, 2 stds, 1 weight.
        return 5.0 * np.log(n) - 2.0 * self.log_likelihood


def _single_gaussian_bic(arr: np.ndarray) -> float:
    mu, sigma = float(arr.mean()), float(arr.std())
    sigma = max(sigma, 1e-12)
    loglik = float(np.sum(sps.norm.logpdf(arr, mu, sigma)))
    return 2.0 * np.log(arr.size) - 2.0 * loglik


def fit_two_gaussians(values: object, max_iter: int = 200, tol: float = 1e-8) -> GaussianMixture2:
    """EM fit of a two-component Gaussian mixture (deterministic init).

    Initialisation splits the sorted sample at the median, which is
    robust for the well-separated mixtures we care about.
    """
    arr = np.sort(np.asarray(values, dtype=float).ravel())
    n = arr.size
    if n < 6:
        raise AnalysisError(f"mixture fit needs >= 6 samples, got {n}")
    spread = float(arr.std())
    if spread == 0:
        return GaussianMixture2((0.5, 0.5), (arr[0], arr[0]), (1e-12, 1e-12), np.inf, True)

    half = n // 2
    mu = np.array([arr[:half].mean(), arr[half:].mean()])
    sigma = np.array([max(arr[:half].std(), spread / 10), max(arr[half:].std(), spread / 10)])
    w = np.array([0.5, 0.5])
    floor = max(spread * 1e-3, 1e-12)

    loglik = -np.inf
    converged = False
    for _ in range(max_iter):
        # E step.
        comp = np.stack([w[k] * sps.norm.pdf(arr, mu[k], sigma[k]) for k in range(2)])
        total = comp.sum(axis=0)
        total = np.maximum(total, 1e-300)
        resp = comp / total
        new_loglik = float(np.sum(np.log(total)))
        # M step.
        nk = resp.sum(axis=1)
        nk = np.maximum(nk, 1e-12)
        w = nk / n
        mu = (resp @ arr) / nk
        for k in range(2):
            var = float(resp[k] @ (arr - mu[k]) ** 2) / nk[k]
            sigma[k] = max(np.sqrt(var), floor)
        if abs(new_loglik - loglik) < tol * (1 + abs(new_loglik)):
            loglik = new_loglik
            converged = True
            break
        loglik = new_loglik

    order = np.argsort(mu)
    return GaussianMixture2(
        weights=(float(w[order[0]]), float(w[order[1]])),
        means=(float(mu[order[0]]), float(mu[order[1]])),
        stds=(float(sigma[order[0]]), float(sigma[order[1]])),
        log_likelihood=loglik,
        converged=converged,
    )


@dataclass(frozen=True)
class BimodalityReport:
    """Combined evidence for/against bi-modality of one sample."""

    n: int
    coefficient: float
    mixture: GaussianMixture2
    bic_single: float
    bic_mixture: float

    @property
    def mixture_preferred(self) -> bool:
        return self.bic_mixture < self.bic_single

    @property
    def bimodal(self) -> bool:
        """Conservative verdict: BIC prefers the mixture, the modes are
        separated (Ashman's D > 2) and neither mode is negligible."""
        return (
            self.mixture_preferred
            and self.mixture.ashman_d > 2.0
            and self.mixture.minor_weight > 0.1
        )


def is_bimodal(values: object) -> BimodalityReport:
    """Run both detectors and return the combined report."""
    arr = np.asarray(values, dtype=float).ravel()
    mixture = fit_two_gaussians(arr)
    return BimodalityReport(
        n=int(arr.size),
        coefficient=bimodality_coefficient(arr),
        mixture=mixture,
        bic_single=_single_gaussian_bic(arr),
        bic_mixture=mixture.bic(arr.size),
    )
