"""Bootstrap confidence intervals.

Used for the paper's ratio-of-means claims, e.g. "the (3,3) allocation
increases bandwidth by more than 49% over (1,3)" and the estimated
"up to 40%" gain of changing PlaFRIM's default stripe count.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import AnalysisError

__all__ = ["bootstrap_ci", "bootstrap_ratio_ci"]


def _check(values: object, what: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size < 2:
        raise AnalysisError(f"{what}: need >= 2 samples, got {arr.size}")
    if np.any(~np.isfinite(arr)):
        raise AnalysisError(f"{what}: non-finite values")
    return arr


def bootstrap_ci(
    values: object,
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: np.random.Generator | None = None,
) -> tuple[float, float, float]:
    """(estimate, low, high): percentile bootstrap CI of a statistic."""
    if not 0 < confidence < 1:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    arr = _check(values, "bootstrap")
    rng = rng if rng is not None else np.random.default_rng(0)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    resampled = np.array([statistic(arr[row]) for row in idx])
    alpha = (1 - confidence) / 2
    low, high = np.percentile(resampled, [100 * alpha, 100 * (1 - alpha)])
    return (float(statistic(arr)), float(low), float(high))


def bootstrap_ratio_ci(
    numerator: object,
    denominator: object,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: np.random.Generator | None = None,
) -> tuple[float, float, float]:
    """(ratio, low, high): bootstrap CI of mean(numerator)/mean(denominator).

    The two samples are resampled independently — they come from
    independent runs.
    """
    num = _check(numerator, "bootstrap ratio (numerator)")
    den = _check(denominator, "bootstrap ratio (denominator)")
    if den.mean() == 0:
        raise AnalysisError("denominator has zero mean")
    rng = rng if rng is not None else np.random.default_rng(0)
    num_means = np.array(
        [num[rng.integers(0, num.size, num.size)].mean() for _ in range(n_resamples)]
    )
    den_means = np.array(
        [den[rng.integers(0, den.size, den.size)].mean() for _ in range(n_resamples)]
    )
    ratios = num_means / den_means
    alpha = (1 - confidence) / 2
    low, high = np.percentile(ratios, [100 * alpha, 100 * (1 - alpha)])
    return (float(num.mean() / den.mean()), float(low), float(high))
