"""Boxplot statistics (Tukey): the data behind Figures 8, 10 and 13."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..errors import AnalysisError

__all__ = ["BoxplotStats", "boxplot_stats", "grouped_boxplots"]


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary with 1.5-IQR whiskers and outliers."""

    n: int
    q1: float
    median: float
    q3: float
    whisker_low: float
    whisker_high: float
    outliers: tuple[float, ...]
    mean: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def boxplot_stats(values: object, whisker: float = 1.5) -> BoxplotStats:
    """Tukey boxplot statistics of one sample.

    Whiskers extend to the most extreme data point within
    ``whisker * IQR`` of the box; everything beyond is an outlier.
    """
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise AnalysisError("boxplot of an empty sample")
    if np.any(~np.isfinite(arr)):
        raise AnalysisError("sample contains non-finite values")
    if whisker < 0:
        raise AnalysisError("whisker factor must be non-negative")
    q1, median, q3 = np.percentile(arr, [25, 50, 75])
    iqr = q3 - q1
    lo_fence = q1 - whisker * iqr
    hi_fence = q3 + whisker * iqr
    inside = arr[(arr >= lo_fence) & (arr <= hi_fence)]
    outliers = arr[(arr < lo_fence) | (arr > hi_fence)]
    return BoxplotStats(
        n=int(arr.size),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        # Whiskers reach the most extreme in-fence point but never
        # retreat inside the box (interpolated quartiles can exceed
        # every in-fence sample on small discrete data).
        whisker_low=float(min(inside.min(), q1)) if inside.size else float(q1),
        whisker_high=float(max(inside.max(), q3)) if inside.size else float(q3),
        outliers=tuple(float(x) for x in np.sort(outliers)),
        mean=float(arr.mean()),
    )


def grouped_boxplots(groups: Mapping[Any, object], whisker: float = 1.5) -> dict[Any, BoxplotStats]:
    """Boxplot statistics per group, keys preserved and sorted."""
    if not groups:
        raise AnalysisError("no groups to summarise")
    return {key: boxplot_stats(vals, whisker) for key, vals in sorted(groups.items(), key=lambda kv: str(kv[0]))}
