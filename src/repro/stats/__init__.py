"""Statistics used by the paper's analysis.

* descriptive summaries and confidence intervals (Lesson 5's "look at
  all the points, not only the mean"),
* boxplot statistics (Figures 8, 10, 13),
* bi-modality detection (the scenario-1 allocation mixtures),
* Welch's t-test and Kolmogorov-Smirnov normality checks (the
  shared-vs-distinct OST comparison of Section IV-D),
* bootstrap confidence intervals for ratio-of-means claims.
"""

from .summary import Summary, describe, mean_ci
from .boxplot import BoxplotStats, boxplot_stats, grouped_boxplots
from .bimodality import BimodalityReport, bimodality_coefficient, fit_two_gaussians, is_bimodal
from .tests import TestResult, ks_normality, welch_ttest
from .bootstrap import bootstrap_ci, bootstrap_ratio_ci

__all__ = [
    "Summary",
    "describe",
    "mean_ci",
    "BoxplotStats",
    "boxplot_stats",
    "grouped_boxplots",
    "BimodalityReport",
    "bimodality_coefficient",
    "fit_two_gaussians",
    "is_bimodal",
    "TestResult",
    "welch_ttest",
    "ks_normality",
    "bootstrap_ci",
    "bootstrap_ratio_ci",
]
