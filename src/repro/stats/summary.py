"""Descriptive summaries and confidence intervals."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from ..errors import AnalysisError

__all__ = ["Summary", "describe", "mean_ci"]


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics of one sample."""

    n: int
    mean: float
    std: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @property
    def cv(self) -> float:
        """Coefficient of variation (std / mean)."""
        if self.mean == 0:
            raise AnalysisError("CV of a zero-mean sample")
        return self.std / abs(self.mean)

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    @property
    def spread(self) -> float:
        """Max minus min — the 'shadow' of the paper's Figure 2."""
        return self.maximum - self.minimum

    def as_dict(self) -> dict[str, float]:
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
        }


def _clean(values: object) -> np.ndarray:
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise AnalysisError("empty sample")
    if np.any(~np.isfinite(arr)):
        raise AnalysisError("sample contains non-finite values")
    return arr


def describe(values: object) -> Summary:
    """Descriptive summary (std is the sample standard deviation)."""
    arr = _clean(values)
    q1, median, q3 = np.percentile(arr, [25, 50, 75])
    # Clamp against 1-ulp float dust so mean respects [min, max] exactly.
    mean = float(min(max(arr.mean(), arr.min()), arr.max()))
    return Summary(
        n=int(arr.size),
        mean=mean,
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(arr.max()),
    )


def mean_ci(values: object, confidence: float = 0.95) -> tuple[float, float, float]:
    """(mean, low, high): Student-t confidence interval of the mean."""
    if not 0 < confidence < 1:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    arr = _clean(values)
    mean = float(arr.mean())
    if arr.size < 2:
        return (mean, mean, mean)
    sem = float(arr.std(ddof=1)) / np.sqrt(arr.size)
    half = float(sps.t.ppf(0.5 + confidence / 2, df=arr.size - 1)) * sem
    return (mean, mean - half, mean + half)
