"""Hypothesis tests: Welch's t and Kolmogorov-Smirnov normality.

Section IV-D compares the bandwidth of two concurrent applications
when they share all four OSTs versus none: "A Welch two-sample t-test
was applied to compare the two groups (after testing normality with
the Kolmogorov-Smirnov test and assuming different variances) and
resulted in a p-value of 0.9031".  These wrappers run exactly that
procedure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from ..errors import AnalysisError

__all__ = ["TestResult", "welch_ttest", "ks_normality"]


@dataclass(frozen=True)
class TestResult:
    """Outcome of one hypothesis test."""

    name: str
    statistic: float
    pvalue: float
    detail: str = ""

    def rejects_at(self, alpha: float = 0.05) -> bool:
        """True when the null hypothesis is rejected at level ``alpha``."""
        if not 0 < alpha < 1:
            raise AnalysisError(f"alpha must be in (0, 1), got {alpha}")
        return self.pvalue < alpha


def _sample(values: object, minimum: int, what: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size < minimum:
        raise AnalysisError(f"{what} needs >= {minimum} samples, got {arr.size}")
    if np.any(~np.isfinite(arr)):
        raise AnalysisError(f"{what}: non-finite values in sample")
    return arr


def welch_ttest(a: object, b: object) -> TestResult:
    """Welch's two-sample t-test (unequal variances), two-sided."""
    x = _sample(a, 2, "Welch t-test")
    y = _sample(b, 2, "Welch t-test")
    stat, p = sps.ttest_ind(x, y, equal_var=False)
    # Welch-Satterthwaite degrees of freedom, reported for completeness.
    vx, vy = x.var(ddof=1) / x.size, y.var(ddof=1) / y.size
    if vx + vy > 0:
        df = (vx + vy) ** 2 / (vx**2 / (x.size - 1) + vy**2 / (y.size - 1))
    else:
        df = float(x.size + y.size - 2)
    return TestResult(
        name="welch-t",
        statistic=float(stat),
        pvalue=float(p),
        detail=f"df={df:.1f}, means {x.mean():.1f} vs {y.mean():.1f}",
    )


def ks_normality(values: object) -> TestResult:
    """Kolmogorov-Smirnov test against a fitted normal (Lilliefors-style).

    The location and scale are estimated from the sample, as the paper
    does before applying Welch's test.  (With estimated parameters the
    plain KS p-value is conservative; that is the direction that makes
    "normality not rejected" a safe conclusion.)
    """
    arr = _sample(values, 4, "KS normality test")
    sigma = arr.std(ddof=1)
    if sigma == 0:
        raise AnalysisError("KS normality test on a constant sample")
    stat, p = sps.kstest(arr, "norm", args=(arr.mean(), sigma))
    return TestResult(name="ks-normality", statistic=float(stat), pvalue=float(p))
