"""A functional in-memory reimplementation of BeeGFS.

This package reproduces the *logic* of the parallel file system the
paper studies (Section II): a Management Service tracking servers and
targets, Metadata Servers owning a directory namespace with
per-directory stripe configuration (count, chunk size, chooser — in
BeeGFS striping is configured per folder by the administrator, which is
why the paper's default-value question matters), Object Storage Servers
with their Object Storage Targets, and a client offering a POSIX-like
file interface.

Data placement is exact: byte ranges map to chunks on targets through
:class:`~repro.beegfs.striping.StripePattern`, target selection runs
through pluggable choosers (round-robin as deployed on PlaFRIM, random
as the BeeGFS default, plus balanced/capacity-aware policies for the
allocation-policy studies), and an optional in-memory chunk store keeps
real bytes so tests can verify write/read-back through the stripes.

Performance is *not* modelled here — the engines in
:mod:`repro.engine` translate client traffic into fluid flows or DES
requests over the platform models.
"""

from .striping import ChunkExtent, StripePattern
from .choosers import (
    BalancedChooser,
    CapacityChooser,
    FailoverChooser,
    RandomChooser,
    RoundRobinChooser,
    TargetChooser,
    chooser_from_name,
    CHOOSER_NAMES,
)
from .management import ManagementService, TargetInfo, TargetState
from .meta import DirectoryConfig, FileInode, MetadataServer
from .storage_service import ObjectStorageServer, ObjectStorageTarget
from .chunks import ChunkStore
from .filesystem import BeeGFS, BeeGFSDeploymentSpec, plafrim_deployment
from .client import BeeGFSClient, FileHandle

__all__ = [
    "StripePattern",
    "ChunkExtent",
    "TargetChooser",
    "RoundRobinChooser",
    "RandomChooser",
    "BalancedChooser",
    "CapacityChooser",
    "FailoverChooser",
    "chooser_from_name",
    "CHOOSER_NAMES",
    "ManagementService",
    "TargetInfo",
    "TargetState",
    "MetadataServer",
    "DirectoryConfig",
    "FileInode",
    "ObjectStorageServer",
    "ObjectStorageTarget",
    "ChunkStore",
    "BeeGFS",
    "BeeGFSDeploymentSpec",
    "plafrim_deployment",
    "BeeGFSClient",
    "FileHandle",
]
