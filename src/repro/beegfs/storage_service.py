"""Object Storage Servers and Targets (the data services).

An OSS is the service process keeping file data; each OSS owns one or
more OSTs, each handling actual storage through a chunk store.  These
classes are the functional side; their performance twins live in
:mod:`repro.storage` and are connected by the engines through shared
target ids.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import NoSuchEntityError, StorageError
from .chunks import ChunkStore
from .management import ManagementService

__all__ = ["ObjectStorageTarget", "ObjectStorageServer"]


@dataclass
class ObjectStorageTarget:
    """One OST: a target id bound to a chunk store."""

    target_id: int
    store: ChunkStore = field(default=None)  # type: ignore[assignment]
    keep_data: bool = True

    def __post_init__(self) -> None:
        if self.store is None:
            self.store = ChunkStore(target_id=self.target_id, keep_data=self.keep_data)
        elif self.store.target_id != self.target_id:
            raise StorageError("chunk store bound to a different target")

    @property
    def used_bytes(self) -> int:
        return self.store.used_bytes


class ObjectStorageServer:
    """One OSS process with its targets.

    Write/read paths update the management registry's capacity
    accounting, mirroring BeeGFS's heartbeat-reported free space.
    """

    def __init__(self, name: str, management: ManagementService, keep_data: bool = True):
        self.name = name
        self._management = management
        self._targets: dict[int, ObjectStorageTarget] = {}
        self._keep_data = keep_data
        self.bytes_written = 0
        self.bytes_read = 0

    def add_target(self, target_id: int, capacity_bytes: int) -> ObjectStorageTarget:
        """Create an OST on this server and register it with the MS."""
        if target_id in self._targets:
            raise StorageError(f"OSS {self.name!r}: duplicate target {target_id}")
        self._management.register_target(target_id, self.name, capacity_bytes)
        ost = ObjectStorageTarget(target_id=target_id, keep_data=self._keep_data)
        self._targets[target_id] = ost
        return ost

    def target(self, target_id: int) -> ObjectStorageTarget:
        try:
            return self._targets[target_id]
        except KeyError:
            raise NoSuchEntityError(f"OSS {self.name!r} has no target {target_id}") from None

    def target_ids(self) -> list[int]:
        return list(self._targets)

    # -- data path ------------------------------------------------------------

    def write_chunk(
        self,
        target_id: int,
        inode_id: int,
        chunk_file_offset: int,
        data: bytes | None,
        length: int,
    ) -> None:
        """Store a piece of a chunk file on one of this server's targets."""
        ost = self.target(target_id)
        before = ost.store.chunk_file_size(inode_id)
        ost.store.write(inode_id, chunk_file_offset, data, length)
        grown = ost.store.chunk_file_size(inode_id) - before
        if grown > 0:
            self._management.consume(target_id, grown)
        self.bytes_written += length

    def read_chunk(self, target_id: int, inode_id: int, chunk_file_offset: int, length: int) -> bytes:
        data = self.target(target_id).store.read(inode_id, chunk_file_offset, length)
        self.bytes_read += length
        return data

    def remove_file(self, inode_id: int) -> int:
        """Drop a file's chunk files on all local targets; returns bytes freed."""
        freed = 0
        for tid, ost in self._targets.items():
            n = ost.store.remove(inode_id)
            if n:
                self._management.consume(tid, -n)
                freed += n
        return freed
