"""Metadata service: namespace tree and per-directory stripe configuration.

BeeGFS metadata lives on Metadata Servers (MDS), each owning an
exclusive portion of the file-system tree and backed by one MetaData
Target (MDT).  The property that motivates the whole paper: striping is
configured **per directory** (stripe count + chunk size + chooser), set
by the administrator, and inherited by new subdirectories — users
cannot easily tune it per file as in Lustre, so the default matters.

This module provides:

* :class:`DirectoryConfig` — the per-directory stripe configuration;
* :class:`FileInode` — a file's metadata: its concrete
  :class:`~repro.beegfs.striping.StripePattern` (targets chosen at
  creation and immutable afterwards — changing stripe count post hoc
  would require data migration, which is why the paper studies writes),
  size and timestamps;
* :class:`Namespace` — the tree with POSIX-ish operations;
* :class:`MetadataServer` — ownership/accounting of tree portions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

from ..errors import (
    ConfigError,
    EntityExistsError,
    IsADirectoryBeeGFSError,
    NoSuchEntityError,
    NotADirectoryBeeGFSError,
    StripingError,
)
from .striping import DEFAULT_CHUNK_SIZE, StripePattern

__all__ = ["DirectoryConfig", "FileInode", "Namespace", "MetadataServer", "split_path", "normalize_path"]


def normalize_path(path: str) -> str:
    """Normalise to an absolute, slash-separated path without '.'/'..'."""
    if not path or not path.startswith("/"):
        raise ConfigError(f"paths must be absolute, got {path!r}")
    parts: list[str] = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            if not parts:
                raise ConfigError(f"path escapes root: {path!r}")
            parts.pop()
        else:
            parts.append(part)
    return "/" + "/".join(parts)


def split_path(path: str) -> tuple[str, str]:
    """(parent, name) of a normalised path; root has no parent."""
    norm = normalize_path(path)
    if norm == "/":
        raise ConfigError("the root directory has no parent")
    parent, _, name = norm.rpartition("/")
    return (parent or "/", name)


@dataclass(frozen=True)
class DirectoryConfig:
    """Stripe configuration attached to a directory.

    ``chooser`` names the target-selection heuristic
    (:mod:`repro.beegfs.choosers`); ``None`` defers to the file system
    default.  PlaFRIM's production values were stripe count 4, 512 KiB
    chunks, round-robin chooser — the configuration the paper shows to
    cost up to half the achievable bandwidth in scenario 1.
    """

    stripe_count: int = 4
    chunk_size: int = DEFAULT_CHUNK_SIZE
    chooser: str | None = None

    def __post_init__(self) -> None:
        if self.stripe_count < 1:
            raise ConfigError(f"stripe count must be >= 1, got {self.stripe_count}")
        if self.chunk_size < 64 * 1024:
            # BeeGFS enforces a 64 KiB minimum chunk size.
            raise ConfigError(f"chunk size must be >= 64 KiB, got {self.chunk_size}")
        if self.chunk_size & (self.chunk_size - 1):
            raise ConfigError(f"chunk size must be a power of two, got {self.chunk_size}")


@dataclass
class FileInode:
    """Metadata record of one regular file."""

    inode_id: int
    pattern: StripePattern
    size: int = 0
    ctime: float = 0.0
    mtime: float = 0.0
    mds: str = ""

    def grow_to(self, size: int) -> None:
        if size < 0:
            raise StripingError(f"negative file size {size}")
        self.size = max(self.size, size)


@dataclass
class _DirNode:
    config: DirectoryConfig
    mds: str
    children: dict[str, "_DirNode | FileInode"] = field(default_factory=dict)


class MetadataServer:
    """One MDS with its MDT accounting.

    The MDT (an SSD RAID-1 on PlaFRIM) stores inodes and dentries; we
    track counts and an approximate byte footprint so metadata-heavy
    workloads can be reasoned about, even though the paper deliberately
    minimises metadata load (shared-file N-1 strategy, Section III-B).
    """

    INODE_BYTES = 512

    def __init__(self, name: str, mdt_capacity_bytes: int):
        if mdt_capacity_bytes <= 0:
            raise ConfigError("MDT capacity must be positive")
        self.name = name
        self.mdt_capacity_bytes = mdt_capacity_bytes
        self.inodes = 0
        self.dirents = 0

    @property
    def mdt_used_bytes(self) -> int:
        return (self.inodes + self.dirents) * self.INODE_BYTES

    def account_create(self, is_dir: bool) -> None:
        if self.mdt_used_bytes + self.INODE_BYTES > self.mdt_capacity_bytes:
            raise ConfigError(f"MDT of {self.name!r} is full")
        if is_dir:
            self.dirents += 1
        else:
            self.inodes += 1

    def account_unlink(self, is_dir: bool) -> None:
        if is_dir:
            self.dirents -= 1
        else:
            self.inodes -= 1


class Namespace:
    """The directory tree with per-directory stripe configuration.

    Directory-to-MDS assignment follows BeeGFS's model: each directory
    is owned by one MDS, chosen round-robin at creation time, and a
    file's metadata lives on its parent directory's MDS.
    """

    def __init__(self, mdses: list[MetadataServer], root_config: DirectoryConfig):
        if not mdses:
            raise ConfigError("need at least one metadata server")
        self._mdses = {m.name: m for m in mdses}
        self._mds_cycle = itertools.cycle(list(self._mdses))
        self._inode_counter = itertools.count(1)
        root_mds = next(self._mds_cycle)
        self._root = _DirNode(config=root_config, mds=root_mds)

    # -- resolution -----------------------------------------------------------

    def _resolve(self, path: str) -> "_DirNode | FileInode":
        norm = normalize_path(path)
        node: _DirNode | FileInode = self._root
        if norm == "/":
            return node
        for part in norm[1:].split("/"):
            if not isinstance(node, _DirNode):
                raise NotADirectoryBeeGFSError(f"{path!r}: component is a file")
            try:
                node = node.children[part]
            except KeyError:
                raise NoSuchEntityError(f"no such path: {path!r}") from None
        return node

    def _resolve_dir(self, path: str) -> _DirNode:
        node = self._resolve(path)
        if not isinstance(node, _DirNode):
            raise NotADirectoryBeeGFSError(f"{path!r} is not a directory")
        return node

    def exists(self, path: str) -> bool:
        try:
            self._resolve(path)
            return True
        except (NoSuchEntityError, NotADirectoryBeeGFSError):
            return False

    def is_dir(self, path: str) -> bool:
        try:
            return isinstance(self._resolve(path), _DirNode)
        except (NoSuchEntityError, NotADirectoryBeeGFSError):
            return False

    # -- directory operations ----------------------------------------------------

    def mkdir(self, path: str, config: DirectoryConfig | None = None) -> DirectoryConfig:
        """Create a directory; stripe config is inherited unless given."""
        parent_path, name = split_path(path)
        parent = self._resolve_dir(parent_path)
        if name in parent.children:
            raise EntityExistsError(f"{path!r} already exists")
        mds_name = next(self._mds_cycle)
        effective = config if config is not None else parent.config
        parent.children[name] = _DirNode(config=effective, mds=mds_name)
        self._mdses[mds_name].account_create(is_dir=True)
        return effective

    def rmdir(self, path: str) -> None:
        parent_path, name = split_path(path)
        parent = self._resolve_dir(parent_path)
        node = self._resolve(path)
        if not isinstance(node, _DirNode):
            raise NotADirectoryBeeGFSError(f"{path!r} is not a directory")
        if node.children:
            raise ConfigError(f"directory not empty: {path!r}")
        del parent.children[name]
        self._mdses[node.mds].account_unlink(is_dir=True)

    def listdir(self, path: str) -> list[str]:
        return sorted(self._resolve_dir(path).children)

    def get_config(self, path: str) -> DirectoryConfig:
        return self._resolve_dir(path).config

    def set_config(self, path: str, config: DirectoryConfig) -> None:
        """Admin operation (``beegfs-ctl --setpattern``): affects new files only."""
        self._resolve_dir(path).config = config

    def set_stripe_count(self, path: str, stripe_count: int) -> None:
        node = self._resolve_dir(path)
        node.config = replace(node.config, stripe_count=stripe_count)

    def mds_of(self, path: str) -> str:
        node = self._resolve(path)
        if isinstance(node, _DirNode):
            return node.mds
        return node.mds

    # -- file operations ------------------------------------------------------------

    def create_file(self, path: str, pattern: StripePattern, ctime: float = 0.0) -> FileInode:
        """Attach a new file inode with an already-chosen stripe pattern.

        Target choice happens in the file-system facade (it needs the
        management registry and the chooser); the namespace records the
        immutable result.
        """
        parent_path, name = split_path(path)
        parent = self._resolve_dir(parent_path)
        if name in parent.children:
            raise EntityExistsError(f"{path!r} already exists")
        inode = FileInode(
            inode_id=next(self._inode_counter),
            pattern=pattern,
            ctime=ctime,
            mtime=ctime,
            mds=parent.mds,
        )
        parent.children[name] = inode
        self._mdses[parent.mds].account_create(is_dir=False)
        return inode

    def file(self, path: str) -> FileInode:
        node = self._resolve(path)
        if isinstance(node, _DirNode):
            raise IsADirectoryBeeGFSError(f"{path!r} is a directory")
        return node

    def unlink(self, path: str) -> FileInode:
        parent_path, name = split_path(path)
        parent = self._resolve_dir(parent_path)
        node = parent.children.get(name)
        if node is None:
            raise NoSuchEntityError(f"no such file: {path!r}")
        if isinstance(node, _DirNode):
            raise IsADirectoryBeeGFSError(f"{path!r} is a directory")
        del parent.children[name]
        self._mdses[node.mds].account_unlink(is_dir=False)
        return node

    def walk_files(self, path: str = "/") -> list[tuple[str, FileInode]]:
        """All (path, inode) pairs under ``path``, depth-first sorted."""
        out: list[tuple[str, FileInode]] = []

        def recurse(prefix: str, node: _DirNode) -> None:
            for name in sorted(node.children):
                child = node.children[name]
                child_path = f"{prefix.rstrip('/')}/{name}"
                if isinstance(child, _DirNode):
                    recurse(child_path, child)
                else:
                    out.append((child_path, child))

        recurse(normalize_path(path), self._resolve_dir(path))
        return out
