"""Striping: mapping file byte ranges to chunks on storage targets.

BeeGFS splits a file into fixed-size *chunks* distributed round-robin
over the file's stripe targets: chunk ``i`` lives on target
``targets[i % len(targets)]``.  The pair (stripe count, chunk size) is
what the paper studies; PlaFRIM uses 512 KiB chunks and (originally) a
stripe count of 4.

The arithmetic here is exact and heavily property-tested: extents
partition the byte range, per-target byte counts differ by at most one
chunk, and the mapping round-trips offsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

from ..errors import StripingError
from ..units import KiB

__all__ = ["StripePattern", "ChunkExtent", "DEFAULT_CHUNK_SIZE"]

DEFAULT_CHUNK_SIZE = 512 * KiB


@lru_cache(maxsize=4096)
def _bytes_per_position(
    stripe_count: int, chunk_size: int, length: int, offset: int
) -> tuple[int, ...]:
    """Bytes of ``[offset, offset + length)`` landing on each stripe *position*.

    Chunk ``i`` lives at position ``i % stripe_count`` regardless of
    which targets the file was placed on, so this depends only on the
    layout geometry — engines re-deriving per-target volumes for every
    repetition (placements change, geometry does not) hit the cache.
    All-integer arithmetic, so cached results are exact.
    """
    counts = [0] * stripe_count
    if length == 0:
        return tuple(counts)
    end = offset + length
    first_chunk = offset // chunk_size
    last_chunk = (end - 1) // chunk_size

    for chunk in range(first_chunk, min(last_chunk, first_chunk + stripe_count - 1) + 1):
        lo = max(offset, chunk * chunk_size)
        hi = min(end, (chunk + 1) * chunk_size)
        if hi > lo:
            counts[chunk % stripe_count] += hi - lo
    walked_until = min(last_chunk, first_chunk + stripe_count - 1)
    remaining_chunks = last_chunk - walked_until
    if remaining_chunks > 0:
        # Chunks (walked_until, last_chunk] start aligned; all but the
        # last are full.
        full = remaining_chunks - 1
        rounds, extra = divmod(full, stripe_count)
        if rounds:
            for p in range(stripe_count):
                counts[p] += rounds * chunk_size
        base = walked_until + 1
        for i in range(extra):
            counts[(base + i) % stripe_count] += chunk_size
        tail = end - last_chunk * chunk_size
        counts[last_chunk % stripe_count] += tail
    return tuple(counts)


@dataclass(frozen=True)
class ChunkExtent:
    """A contiguous piece of a file living inside one chunk on one target."""

    target_id: int
    chunk_index: int  # global chunk index within the file
    chunk_offset: int  # byte offset inside the chunk
    file_offset: int  # byte offset inside the file
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise StripingError("extent length must be positive")
        if self.chunk_offset < 0 or self.file_offset < 0 or self.chunk_index < 0:
            raise StripingError("negative extent coordinates")

    @property
    def end_file_offset(self) -> int:
        return self.file_offset + self.length


@dataclass(frozen=True)
class StripePattern:
    """The stripe layout of one file: its targets and chunk size.

    ``targets`` is an ordered tuple of target ids; order matters because
    chunk ``i`` goes to ``targets[i % count]``.
    """

    targets: tuple[int, ...]
    chunk_size: int = DEFAULT_CHUNK_SIZE

    def __post_init__(self) -> None:
        if not self.targets:
            raise StripingError("stripe pattern needs at least one target")
        if len(set(self.targets)) != len(self.targets):
            raise StripingError(f"duplicate targets in stripe pattern: {self.targets}")
        if self.chunk_size <= 0:
            raise StripingError(f"chunk size must be positive, got {self.chunk_size}")
        object.__setattr__(self, "targets", tuple(int(t) for t in self.targets))

    @property
    def stripe_count(self) -> int:
        return len(self.targets)

    # -- chunk arithmetic ------------------------------------------------------

    def chunk_of_offset(self, offset: int) -> int:
        """Global chunk index containing the byte at ``offset``."""
        if offset < 0:
            raise StripingError(f"negative offset {offset}")
        return offset // self.chunk_size

    def target_of_chunk(self, chunk_index: int) -> int:
        """Target holding the given chunk."""
        if chunk_index < 0:
            raise StripingError(f"negative chunk index {chunk_index}")
        return self.targets[chunk_index % self.stripe_count]

    def target_of_offset(self, offset: int) -> int:
        """Target holding the byte at ``offset``."""
        return self.target_of_chunk(self.chunk_of_offset(offset))

    def extents(self, offset: int, length: int) -> Iterator[ChunkExtent]:
        """Split ``[offset, offset + length)`` into per-chunk extents.

        Extents come back in file order; consecutive extents are
        contiguous in the file, so they partition the range exactly.
        """
        if offset < 0:
            raise StripingError(f"negative offset {offset}")
        if length < 0:
            raise StripingError(f"negative length {length}")
        pos = offset
        end = offset + length
        while pos < end:
            chunk = pos // self.chunk_size
            chunk_start = chunk * self.chunk_size
            chunk_off = pos - chunk_start
            piece = min(end - pos, self.chunk_size - chunk_off)
            yield ChunkExtent(
                target_id=self.target_of_chunk(chunk),
                chunk_index=chunk,
                chunk_offset=chunk_off,
                file_offset=pos,
                length=piece,
            )
            pos += piece

    def bytes_per_target(self, length: int, offset: int = 0) -> dict[int, int]:
        """Exact bytes landing on each stripe target for the given range.

        Computed in O(stripe count), not by enumerating chunks: full
        stripe rounds contribute equally and the remainder is walked
        chunk by chunk.
        """
        if length < 0:
            raise StripingError(f"negative length {length}")
        if length == 0:
            return {t: 0 for t in self.targets}
        if offset < 0:
            raise StripingError(f"negative chunk index {offset // self.chunk_size}")
        # Positions are periodic in whole stripe rounds, so the offset is
        # reduced modulo one round before hitting the geometry cache.
        period = self.stripe_count * self.chunk_size
        by_position = _bytes_per_position(
            self.stripe_count, self.chunk_size, length, offset % period
        )
        return {t: by_position[p] for p, t in enumerate(self.targets)}

    def file_size_on_target(self, file_size: int, target_id: int) -> int:
        """Bytes of a ``file_size``-byte file stored on ``target_id``."""
        if target_id not in self.targets:
            raise StripingError(f"target {target_id} not in pattern {self.targets}")
        return self.bytes_per_target(file_size)[target_id]
