"""The File System Client (FSC): a POSIX-like interface.

In real BeeGFS the client is a kernel module mounting the remote file
system; here it is the object through which applications (and the IOR
driver) talk to a :class:`~repro.beegfs.filesystem.BeeGFS` instance.
The interface deliberately mirrors the POSIX calls IOR issues with its
POSIX backend: ``open``/``creat``, ``pwrite``/``pread`` (and the
cursor-based ``write``/``read``), ``fstat``, ``close``.

Writes may carry real bytes or just a length (``data=None``), matching
the two chunk-store modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import BeeGFSError, NoSuchEntityError
from .filesystem import BeeGFS
from .meta import FileInode

__all__ = ["FileHandle", "BeeGFSClient"]


@dataclass
class FileHandle:
    """An open file: inode reference plus a cursor and mode flags."""

    client: "BeeGFSClient"
    path: str
    inode: FileInode
    writable: bool
    pos: int = 0
    closed: bool = field(default=False, init=False)

    def _check_open(self) -> None:
        if self.closed:
            raise BeeGFSError(f"I/O on closed handle for {self.path!r}")

    # -- positioned I/O --------------------------------------------------------

    def pwrite(self, offset: int, data: bytes | None = None, length: int | None = None) -> int:
        """Write at an absolute offset without moving the cursor.

        Either real ``data`` or a bare ``length`` must be given.
        Returns the number of bytes written (always the full amount —
        the simulated PFS has no short writes).
        """
        self._check_open()
        if not self.writable:
            raise BeeGFSError(f"handle for {self.path!r} is read-only")
        if data is None and length is None:
            raise BeeGFSError("pwrite needs data or length")
        if data is not None and length is not None and len(data) != length:
            raise BeeGFSError(f"data length {len(data)} != length {length}")
        n = len(data) if data is not None else int(length)  # type: ignore[arg-type]
        if n == 0:
            return 0
        self.client.fs.write_extents(self.inode, offset, data, n)
        return n

    def pread(self, offset: int, length: int) -> bytes:
        self._check_open()
        return self.client.fs.read_extents(self.inode, offset, length)

    # -- cursor I/O ---------------------------------------------------------------

    def write(self, data: bytes | None = None, length: int | None = None) -> int:
        n = self.pwrite(self.pos, data, length)
        self.pos += n
        return n

    def read(self, length: int) -> bytes:
        data = self.pread(self.pos, length)
        self.pos += len(data)
        return data

    def seek(self, offset: int) -> None:
        self._check_open()
        if offset < 0:
            raise BeeGFSError(f"negative seek offset {offset}")
        self.pos = offset

    def fstat(self) -> FileInode:
        self._check_open()
        return self.inode

    def close(self) -> None:
        self.closed = True

    def __enter__(self) -> "FileHandle":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class BeeGFSClient:
    """A mounted view of a BeeGFS instance on one compute node."""

    def __init__(self, fs: BeeGFS, node: str = "localhost"):
        self.fs = fs
        self.node = node

    # -- namespace operations -----------------------------------------------------

    def mkdir(self, path: str) -> None:
        self.fs.mkdir(path)

    def listdir(self, path: str) -> list[str]:
        return self.fs.namespace.listdir(path)

    def exists(self, path: str) -> bool:
        return self.fs.namespace.exists(path)

    def stat(self, path: str) -> FileInode:
        return self.fs.namespace.file(path)

    def unlink(self, path: str) -> None:
        self.fs.unlink(path)

    # -- open ------------------------------------------------------------------------

    def create(self, path: str) -> FileHandle:
        """O_CREAT | O_EXCL | O_WRONLY: create and open for writing."""
        inode = self.fs.create_file(path)
        return FileHandle(client=self, path=path, inode=inode, writable=True)

    def open(self, path: str, write: bool = False, create: bool = False) -> FileHandle:
        """Open an existing file (optionally creating it)."""
        if create and not self.fs.namespace.exists(path):
            return self.create(path)
        try:
            inode = self.fs.namespace.file(path)
        except NoSuchEntityError:
            raise NoSuchEntityError(f"no such file: {path!r}") from None
        return FileHandle(client=self, path=path, inode=inode, writable=write)
