"""The assembled file system: deployment spec plus the service wiring.

:class:`BeeGFS` glues the management service, the metadata namespace,
the storage servers and the target choosers into one object offering
both the admin surface (``beegfs-ctl``-style: set patterns, inspect
targets, df) and the internal entry points the client uses.

:func:`plafrim_deployment` builds the deployment the paper measured:
two storage hosts, four OSTs each (ids 101-104 and 201-204), 512 KiB
chunks, stripe count 4, round-robin chooser with the interleaved target
ordering that produces the allocations reported in Section IV-C1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError, NoSuchEntityError
from ..rng import SeedTree
from ..units import TiB
from .choosers import FixedChooser, RoundRobinChooser, TargetChooser, chooser_from_name
from .management import ManagementService, TargetInfo
from .meta import DirectoryConfig, FileInode, MetadataServer, Namespace, split_path
from .storage_service import ObjectStorageServer
from .striping import DEFAULT_CHUNK_SIZE, StripePattern

__all__ = [
    "BeeGFSDeploymentSpec",
    "BeeGFS",
    "plafrim_deployment",
    "PLAFRIM_TARGET_ORDERING",
]

# The target ordering of PlaFRIM's round-robin configuration, inferred
# from the allocations the paper reports: stripe count 4 always yields
# (101, 201, 202, 203) or (204, 102, 103, 104) — consecutive windows of
# this sequence at the two reachable cursor phases.
PLAFRIM_TARGET_ORDERING: tuple[int, ...] = (101, 201, 202, 203, 204, 102, 103, 104)


@dataclass(frozen=True)
class BeeGFSDeploymentSpec:
    """Static description of a BeeGFS deployment."""

    servers: tuple[tuple[str, tuple[int, ...]], ...]
    target_capacity_bytes: int = 16 * TiB
    default_config: DirectoryConfig = field(default_factory=DirectoryConfig)
    default_chooser: str = "roundrobin"
    target_ordering: tuple[int, ...] | None = None
    mdt_capacity_bytes: int = int(1.6 * TiB)
    keep_data: bool = True

    def __post_init__(self) -> None:
        if not self.servers:
            raise ConfigError("deployment needs at least one storage server")
        all_targets = [t for _, tids in self.servers for t in tids]
        if len(set(all_targets)) != len(all_targets):
            raise ConfigError("duplicate target ids across servers")
        if not all_targets:
            raise ConfigError("deployment has no storage targets")
        if self.target_ordering is not None and set(self.target_ordering) != set(all_targets):
            raise ConfigError("target_ordering must list exactly the deployed targets")
        if self.target_capacity_bytes <= 0:
            raise ConfigError("target capacity must be positive")

    @property
    def all_target_ids(self) -> tuple[int, ...]:
        return tuple(t for _, tids in self.servers for t in tids)

    @property
    def num_targets(self) -> int:
        return len(self.all_target_ids)

    def server_of(self, target_id: int) -> str:
        for host, tids in self.servers:
            if target_id in tids:
                return host
        raise NoSuchEntityError(f"unknown target {target_id}")


class BeeGFS:
    """One mounted BeeGFS instance (functional data/metadata plane)."""

    def __init__(self, spec: BeeGFSDeploymentSpec, seed: int | None = 0):
        self.spec = spec
        self.management = ManagementService()
        self._seeds = SeedTree(seed).child("beegfs")
        self._chooser_rng = self._seeds.rng("chooser")
        self.oss: dict[str, ObjectStorageServer] = {}
        for host, target_ids in spec.servers:
            self.management.register_server(host)
            server = ObjectStorageServer(host, self.management, keep_data=spec.keep_data)
            for tid in target_ids:
                server.add_target(tid, spec.target_capacity_bytes)
            self.oss[host] = server
        # One MDS per storage host, as deployed on PlaFRIM.
        self.mdses = [MetadataServer(f"mds-{host}", spec.mdt_capacity_bytes) for host, _ in spec.servers]
        self.namespace = Namespace(self.mdses, spec.default_config)
        self._choosers: dict[str, TargetChooser] = {}
        self.clock = 0.0  # advanced by engines; used for ctime/mtime

    # -- chooser management ------------------------------------------------------

    def chooser(self, name: str) -> TargetChooser:
        """Chooser instances are cached so stateful cursors persist.

        The special form ``"fixed:101,202"`` yields a
        :class:`~repro.beegfs.choosers.FixedChooser` pinning exactly
        those targets (experiment control, e.g. Figure 9).
        """
        if name not in self._choosers:
            if name == "roundrobin":
                self._choosers[name] = RoundRobinChooser(ordering=self.spec.target_ordering)
            elif name.startswith("fixed:"):
                ids = [int(part) for part in name[len("fixed:") :].split(",") if part]
                self._choosers[name] = FixedChooser(ids)
            else:
                self._choosers[name] = chooser_from_name(name)
        return self._choosers[name]

    # -- namespace / admin surface ----------------------------------------------

    def mkdir(self, path: str, config: DirectoryConfig | None = None) -> DirectoryConfig:
        return self.namespace.mkdir(path, config)

    def set_pattern(
        self,
        path: str,
        stripe_count: int | None = None,
        chunk_size: int | None = None,
        chooser: str | None = None,
    ) -> DirectoryConfig:
        """``beegfs-ctl --setpattern`` equivalent (per-directory, admin-only)."""
        current = self.namespace.get_config(path)
        new = DirectoryConfig(
            stripe_count=stripe_count if stripe_count is not None else current.stripe_count,
            chunk_size=chunk_size if chunk_size is not None else current.chunk_size,
            chooser=chooser if chooser is not None else current.chooser,
        )
        self.namespace.set_config(path, new)
        return new

    def get_pattern(self, path: str) -> DirectoryConfig:
        return self.namespace.get_config(path)

    def create_file(
        self, path: str, rng: np.random.Generator | None = None, strict: bool = False
    ) -> FileInode:
        """Create a file, choosing its stripe targets per directory config.

        With ``strict=True`` the configured stripe count is not clamped
        to the reachable pool, so a degraded deployment raises
        :class:`~repro.errors.InsufficientTargetsError` instead of
        silently narrowing the stripe — callers that must preserve the
        experiment's striping factor (or fail loudly) use this.
        """
        parent, _ = split_path(path)
        config = self.namespace.get_config(parent)
        pool = self.management.targets(online_only=True)
        if not pool:
            raise NoSuchEntityError("no online storage targets")
        # BeeGFS clamps the desired stripe count to the reachable pool.
        count = config.stripe_count if strict else min(config.stripe_count, len(pool))
        chooser = self.chooser(config.chooser or self.spec.default_chooser)
        targets = chooser.choose(pool, count, rng if rng is not None else self._chooser_rng)
        pattern = StripePattern(targets=targets, chunk_size=config.chunk_size)
        return self.namespace.create_file(path, pattern, ctime=self.clock)

    def unlink(self, path: str) -> None:
        inode = self.namespace.unlink(path)
        for server in self.oss.values():
            server.remove_file(inode.inode_id)

    # -- data path (used by the client) --------------------------------------------

    def write_extents(self, inode: FileInode, offset: int, data: bytes | None, length: int) -> None:
        """Apply a logical write: split into extents, store per target."""
        for extent in inode.pattern.extents(offset, length):
            host = self.management.server_of(extent.target_id)
            round_index = extent.chunk_index // inode.pattern.stripe_count
            chunk_file_offset = round_index * inode.pattern.chunk_size + extent.chunk_offset
            piece = None
            if data is not None:
                lo = extent.file_offset - offset
                piece = data[lo : lo + extent.length]
            self.oss[host].write_chunk(
                extent.target_id, inode.inode_id, chunk_file_offset, piece, extent.length
            )
        inode.grow_to(offset + length)
        inode.mtime = self.clock

    def read_extents(self, inode: FileInode, offset: int, length: int) -> bytes:
        """Read a logical range back through the stripes."""
        out = bytearray()
        for extent in inode.pattern.extents(offset, length):
            host = self.management.server_of(extent.target_id)
            round_index = extent.chunk_index // inode.pattern.stripe_count
            chunk_file_offset = round_index * inode.pattern.chunk_size + extent.chunk_offset
            out += self.oss[host].read_chunk(
                extent.target_id, inode.inode_id, chunk_file_offset, extent.length
            )
        return bytes(out)

    # -- introspection ---------------------------------------------------------------

    def df(self) -> list[TargetInfo]:
        """Per-target capacity usage (``beegfs-df`` equivalent)."""
        return self.management.targets()

    def placement_of(self, inode: FileInode) -> dict[str, int]:
        """Per-server target counts of a file's allocation."""
        return self.management.placement_of(inode.pattern.targets)


def plafrim_deployment(
    keep_data: bool = True,
    stripe_count: int = 4,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    chooser: str = "roundrobin",
    target_capacity_bytes: int = 16 * TiB,
) -> BeeGFSDeploymentSpec:
    """The PlaFRIM BeeGFS deployment of the paper (Section III-A).

    Defaults mirror the production configuration under study: stripe
    count 4, 512 KiB chunks, round-robin target selection.  The total
    usable capacity reported in the paper is 131 TB over 8 targets; we
    default to 16 TiB per target.
    """
    return BeeGFSDeploymentSpec(
        servers=(
            ("storage1", (101, 102, 103, 104)),
            ("storage2", (201, 202, 203, 204)),
        ),
        target_capacity_bytes=target_capacity_bytes,
        default_config=DirectoryConfig(stripe_count=stripe_count, chunk_size=chunk_size),
        default_chooser=chooser,
        target_ordering=PLAFRIM_TARGET_ORDERING,
        keep_data=keep_data,
    )
