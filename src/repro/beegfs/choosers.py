"""Target choosers: the OST allocation heuristics.

When a file is created, BeeGFS must pick ``stripe_count`` targets from
the available pool.  The heuristic used is central to the paper:

* **random** — the BeeGFS default: a uniform sample of the targets.
  Under it every (min, max) placement is possible, which is why the
  paper notes that random selection with stripe count 4 *could* produce
  the balanced (2, 2) — at the price of high run-to-run variability.
* **roundrobin** — what PlaFRIM's vendor configured: targets are taken
  consecutively from a fixed ordering, and the cursor advances by the
  stripe count at each file creation.  With PlaFRIM's target ordering
  this yields exactly the two ``(101, 201, 202, 203)`` /
  ``(204, 102, 103, 104)`` allocations the paper reports for stripe
  count 4 — both (1, 3) — and the bi-modal mixtures for counts 2, 3, 5
  and 6 (Section IV-C1).
* **balanced** — the policy Lesson 4 recommends: pick the same number
  of targets on every server (round-robin over servers, random within
  a server).
* **capacity** — free-space weighted (BeeGFS's preference for targets
  with more room), included for the allocation-policy study.

Choosers see the pool through :class:`~repro.beegfs.management.TargetInfo`
records and draw randomness from an explicit generator, so experiments
are reproducible.
"""

from __future__ import annotations

import abc
import math
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import InsufficientTargetsError, TargetChooserError

if TYPE_CHECKING:  # pragma: no cover
    from .management import TargetInfo

__all__ = [
    "TargetChooser",
    "RandomChooser",
    "RoundRobinChooser",
    "BalancedChooser",
    "CapacityChooser",
    "FailoverChooser",
    "chooser_from_name",
    "CHOOSER_NAMES",
]


class TargetChooser(abc.ABC):
    """Strategy interface for picking stripe targets at file creation."""

    name: str = "abstract"

    @abc.abstractmethod
    def choose(
        self,
        pool: Sequence["TargetInfo"],
        count: int,
        rng: np.random.Generator,
    ) -> tuple[int, ...]:
        """Pick ``count`` distinct target ids from ``pool``.

        The returned order is the stripe order (chunk ``i`` goes to the
        ``i % count``-th entry).
        """

    def _check(self, pool: Sequence["TargetInfo"], count: int) -> None:
        if count < 1:
            raise TargetChooserError(f"stripe count must be >= 1, got {count}")
        if count > len(pool):
            raise InsufficientTargetsError(
                count, len(pool), tuple(t.target_id for t in pool)
            )


class RandomChooser(TargetChooser):
    """Uniform sample without replacement (the BeeGFS default)."""

    name = "random"

    def choose(
        self, pool: Sequence["TargetInfo"], count: int, rng: np.random.Generator
    ) -> tuple[int, ...]:
        self._check(pool, count)
        ids = [t.target_id for t in pool]
        picked = rng.choice(len(ids), size=count, replace=False)
        return tuple(ids[i] for i in picked)


class RoundRobinChooser(TargetChooser):
    """Deterministic cursor over a fixed target ordering.

    ``ordering`` defaults to the pool order; PlaFRIM's deployment uses
    the interleaved ordering exposed by
    :func:`repro.beegfs.filesystem.plafrim_deployment`.  The cursor
    position is persistent chooser state: consecutive file creations
    get consecutive target windows.  When experiments want to sample
    the allocation distribution (the paper creates a fresh file per
    run), the cursor start can be randomised per run via
    ``randomize_start``.
    """

    name = "roundrobin"

    def __init__(self, ordering: Sequence[int] | None = None, randomize_start: bool = True):
        self.ordering = tuple(ordering) if ordering is not None else None
        self.randomize_start = randomize_start
        self._cursor = 0
        self._started = False
        if self.ordering is not None and len(set(self.ordering)) != len(self.ordering):
            raise TargetChooserError(f"duplicate ids in ordering {self.ordering}")

    def reset(self, cursor: int = 0) -> None:
        self._cursor = cursor
        self._started = cursor != 0

    @property
    def cursor(self) -> int:
        return self._cursor

    def _effective_ordering(self, pool: Sequence["TargetInfo"]) -> tuple[int, ...]:
        available = {t.target_id for t in pool}
        if self.ordering is None:
            return tuple(t.target_id for t in pool)
        ordering = tuple(t for t in self.ordering if t in available)
        missing = available - set(ordering)
        if missing:
            raise TargetChooserError(f"targets {sorted(missing)} absent from ordering")
        return ordering

    def choose(
        self, pool: Sequence["TargetInfo"], count: int, rng: np.random.Generator
    ) -> tuple[int, ...]:
        self._check(pool, count)
        ordering = self._effective_ordering(pool)
        n = len(ordering)
        if self.randomize_start and not self._started:
            # A production cursor that advanced by ``count`` per creation
            # sits at some multiple of gcd(count, n): randomising over
            # exactly those phases samples the same window set the
            # production system cycles through (all two of them for
            # PlaFRIM's stripe count 4 — both (1, 3)).
            g = math.gcd(count, n)
            self._cursor = int(rng.integers(n // g)) * g
        self._started = True
        start = self._cursor % n
        picked = tuple(ordering[(start + i) % n] for i in range(count))
        self._cursor = (start + count) % n
        return picked


class BalancedChooser(TargetChooser):
    """Even split across servers (Lesson 4's recommended heuristic).

    Servers are prioritised by how many targets they have already been
    assigned in this allocation, tie-broken randomly, so the final
    per-server counts differ by at most one.
    """

    name = "balanced"

    def choose(
        self, pool: Sequence["TargetInfo"], count: int, rng: np.random.Generator
    ) -> tuple[int, ...]:
        self._check(pool, count)
        by_server: dict[str, list[int]] = {}
        for t in pool:
            by_server.setdefault(t.server, []).append(t.target_id)
        servers = sorted(by_server)
        for ids in by_server.values():
            rng.shuffle(ids)
        order = list(rng.permutation(len(servers)))
        picked: list[int] = []
        taken = {s: 0 for s in servers}
        while len(picked) < count:
            progressed = False
            for idx in order:
                server = servers[idx]
                if taken[server] < len(by_server[server]):
                    picked.append(by_server[server][taken[server]])
                    taken[server] += 1
                    progressed = True
                    if len(picked) == count:
                        break
            if not progressed:  # pragma: no cover - guarded by _check
                raise TargetChooserError("ran out of targets while balancing")
        return tuple(picked)


class CapacityChooser(TargetChooser):
    """Free-space weighted random choice (capacity pools, simplified)."""

    name = "capacity"

    def choose(
        self, pool: Sequence["TargetInfo"], count: int, rng: np.random.Generator
    ) -> tuple[int, ...]:
        self._check(pool, count)
        free = np.array([max(t.free_bytes, 0) for t in pool], dtype=float)
        if free.sum() <= 0:
            weights = np.full(len(pool), 1.0 / len(pool))
        else:
            weights = free / free.sum()
        picked = rng.choice(len(pool), size=count, replace=False, p=weights)
        return tuple(pool[i].target_id for i in picked)


class FixedChooser(TargetChooser):
    """Always returns a fixed target tuple (experiment control).

    Used to force specific placements, e.g. the (0, 2) vs (1, 1)
    comparison of the paper's Figure 9.  The fixed ids must exist in
    the pool and match the requested count.
    """

    name = "fixed"

    def __init__(self, target_ids: Sequence[int]):
        self.target_ids = tuple(int(t) for t in target_ids)
        if not self.target_ids:
            raise TargetChooserError("fixed chooser needs at least one target")
        if len(set(self.target_ids)) != len(self.target_ids):
            raise TargetChooserError(f"duplicate ids in {self.target_ids}")

    def choose(
        self, pool: Sequence["TargetInfo"], count: int, rng: np.random.Generator
    ) -> tuple[int, ...]:
        self._check(pool, count)
        if count != len(self.target_ids):
            raise TargetChooserError(
                f"fixed chooser holds {len(self.target_ids)} targets, asked for {count}"
            )
        available = {t.target_id for t in pool}
        missing = set(self.target_ids) - available
        if missing:
            raise TargetChooserError(f"fixed targets {sorted(missing)} not available")
        return self.target_ids


class FailoverChooser(TargetChooser):
    """Deterministic re-balance across the *surviving* servers.

    The Lesson-4 balance rule applied under failure: whatever targets
    remain eligible, spread the allocation as evenly as possible over
    the servers that still have them.  Unlike :class:`BalancedChooser`
    it is fully deterministic — servers are visited from most aggregate
    free space (the least-loaded survivor first, tie-broken by name)
    and targets within a server from least used bytes (tie-broken by
    id) — so a degraded campaign places every replica-run identically
    and the (min, max) classifier sees the pure policy, not sampling
    noise.
    """

    name = "failover"

    def choose(
        self, pool: Sequence["TargetInfo"], count: int, rng: np.random.Generator
    ) -> tuple[int, ...]:
        self._check(pool, count)
        by_server: dict[str, list["TargetInfo"]] = {}
        for t in pool:
            by_server.setdefault(t.server, []).append(t)
        for infos in by_server.values():
            infos.sort(key=lambda t: (t.used_bytes, t.target_id))
        servers = sorted(by_server, key=lambda s: (-sum(t.free_bytes for t in by_server[s]), s))
        picked: list[int] = []
        taken = {s: 0 for s in servers}
        while len(picked) < count:
            progressed = False
            for server in servers:
                if taken[server] < len(by_server[server]):
                    picked.append(by_server[server][taken[server]].target_id)
                    taken[server] += 1
                    progressed = True
                    if len(picked) == count:
                        break
            if not progressed:  # pragma: no cover - guarded by _check
                raise TargetChooserError("ran out of targets while failing over")
        return tuple(picked)


CHOOSER_NAMES = ("random", "roundrobin", "balanced", "capacity", "failover", "fixed")


def chooser_from_name(name: str, **kwargs: object) -> TargetChooser:
    """Instantiate a chooser by its registry name."""
    classes: dict[str, type[TargetChooser]] = {
        RandomChooser.name: RandomChooser,
        RoundRobinChooser.name: RoundRobinChooser,
        BalancedChooser.name: BalancedChooser,
        CapacityChooser.name: CapacityChooser,
        FailoverChooser.name: FailoverChooser,
    }
    try:
        cls = classes[name]
    except KeyError:
        raise TargetChooserError(f"unknown chooser {name!r}; known: {sorted(classes)}") from None
    return cls(**kwargs)  # type: ignore[arg-type]
