"""The Management Service (MS).

Per the paper's Section II, the MS "maintains a list of all system
components, including their status, capacity, and localization" — it is
how the PFS parts find each other.  Here it is the registry of storage
servers and their targets, with target state tracking (online/offline,
consumed capacity) and the queries choosers and metadata servers need.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import EntityExistsError, NoSuchEntityError, StorageError

__all__ = ["TargetState", "TargetInfo", "ManagementService"]


class TargetState(enum.Enum):
    """Reachability/consistency state of a target (simplified).

    Mirrors BeeGFS's reachability (Online/Offline) and consistency
    (Good/Needs-resync) states: DEGRADED is a reachable target running
    below its rated capacity (a limping disk or saturated server) —
    still eligible for allocation, but a fault-aware chooser may
    deprioritise it.
    """

    ONLINE = "online"
    DEGRADED = "degraded"
    OFFLINE = "offline"
    NEEDS_RESYNC = "needs-resync"


@dataclass
class TargetInfo:
    """Registry record of one OST."""

    target_id: int
    server: str
    capacity_bytes: int
    used_bytes: int = 0
    state: TargetState = TargetState.ONLINE

    def __post_init__(self) -> None:
        if self.target_id < 0:
            raise StorageError(f"negative target id {self.target_id}")
        if self.capacity_bytes <= 0:
            raise StorageError(f"target {self.target_id}: capacity must be positive")
        if self.used_bytes < 0:
            raise StorageError(f"target {self.target_id}: negative used bytes")

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    @property
    def available(self) -> bool:
        """Eligible for new allocations (reachable, even if slow)."""
        return self.state in (TargetState.ONLINE, TargetState.DEGRADED)


class ManagementService:
    """Registry of servers, targets and their live state."""

    def __init__(self) -> None:
        self._targets: dict[int, TargetInfo] = {}
        self._servers: dict[str, list[int]] = {}

    # -- registration ---------------------------------------------------------

    def register_server(self, server: str) -> None:
        if server in self._servers:
            raise EntityExistsError(f"server {server!r} already registered")
        self._servers[server] = []

    def register_target(self, target_id: int, server: str, capacity_bytes: int) -> TargetInfo:
        if server not in self._servers:
            raise NoSuchEntityError(f"unknown server {server!r}")
        if target_id in self._targets:
            raise EntityExistsError(f"target {target_id} already registered")
        info = TargetInfo(target_id, server, capacity_bytes)
        self._targets[target_id] = info
        self._servers[server].append(target_id)
        return info

    # -- queries ----------------------------------------------------------------

    def servers(self) -> list[str]:
        return list(self._servers)

    def targets(self, server: str | None = None, online_only: bool = False) -> list[TargetInfo]:
        """Registered targets, in registration order."""
        if server is not None and server not in self._servers:
            raise NoSuchEntityError(f"unknown server {server!r}")
        infos = [
            self._targets[tid]
            for s, tids in self._servers.items()
            if server is None or s == server
            for tid in tids
        ]
        if online_only:
            infos = [t for t in infos if t.available]
        return infos

    def target(self, target_id: int) -> TargetInfo:
        try:
            return self._targets[target_id]
        except KeyError:
            raise NoSuchEntityError(f"unknown target {target_id}") from None

    def server_of(self, target_id: int) -> str:
        return self.target(target_id).server

    def target_ids(self, online_only: bool = False) -> list[int]:
        return [t.target_id for t in self.targets(online_only=online_only)]

    # -- state transitions --------------------------------------------------------

    def set_state(self, target_id: int, state: TargetState) -> None:
        self.target(target_id).state = state

    def set_server_state(self, server: str, state: TargetState) -> None:
        """Transition every target of a server at once (server outage)."""
        for info in self.targets(server=server):
            info.state = state

    def consume(self, target_id: int, nbytes: int) -> None:
        """Account ``nbytes`` written to a target (negative frees space)."""
        info = self.target(target_id)
        new_used = info.used_bytes + nbytes
        if new_used < 0:
            raise StorageError(f"target {target_id}: freeing more than used")
        if new_used > info.capacity_bytes:
            raise StorageError(f"target {target_id}: out of space")
        info.used_bytes = new_used

    # -- convenience ----------------------------------------------------------------

    def total_capacity_bytes(self) -> int:
        return sum(t.capacity_bytes for t in self._targets.values())

    def placement_of(self, target_ids: tuple[int, ...]) -> dict[str, int]:
        """Per-server target counts of an allocation (feeds (min,max))."""
        counts: dict[str, int] = {s: 0 for s in self._servers}
        for tid in target_ids:
            counts[self.server_of(tid)] += 1
        return counts
