"""Chunk storage: the per-target data plane.

Each Object Storage Target stores one *chunk file* per (file inode,
target): the concatenation of that target's chunks.  The store can hold
real bytes (so tests verify that striped writes read back intact) or
merely track sizes, which is what performance experiments use — a
32 GiB IOR run should not allocate 32 GiB of Python bytearrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import StorageError

__all__ = ["ChunkStore"]


@dataclass
class _ChunkFile:
    """The portion of one file stored on one target."""

    data: bytearray | None  # None in size-only mode
    size: int = 0


@dataclass
class ChunkStore:
    """Per-target chunk files, keyed by inode id.

    ``keep_data`` selects between the byte-accurate mode (default: real
    contents, for correctness tests and small examples) and the
    size-only mode used by large performance runs.
    """

    target_id: int
    keep_data: bool = True
    _files: dict[int, _ChunkFile] = field(default_factory=dict, repr=False)

    def write(self, inode_id: int, chunk_file_offset: int, data: bytes | None, length: int) -> None:
        """Write ``length`` bytes at ``chunk_file_offset`` of the chunk file.

        ``data`` may be ``None`` in size-only mode (or when the caller
        only has sizes); if given, it must match ``length``.
        """
        if chunk_file_offset < 0 or length < 0:
            raise StorageError("negative write coordinates")
        if data is not None and len(data) != length:
            raise StorageError(f"data length {len(data)} != declared length {length}")
        cf = self._files.get(inode_id)
        if cf is None:
            cf = _ChunkFile(data=bytearray() if self.keep_data else None)
            self._files[inode_id] = cf
        end = chunk_file_offset + length
        if self.keep_data:
            assert cf.data is not None
            if end > len(cf.data):
                cf.data.extend(b"\x00" * (end - len(cf.data)))
            if data is not None:
                cf.data[chunk_file_offset:end] = data
        cf.size = max(cf.size, end)

    def read(self, inode_id: int, chunk_file_offset: int, length: int) -> bytes:
        """Read bytes back (only available with ``keep_data``).

        Reads past the chunk file's end return zero bytes, matching
        sparse-file POSIX semantics.
        """
        if not self.keep_data:
            raise StorageError(f"target {self.target_id}: store is size-only")
        if chunk_file_offset < 0 or length < 0:
            raise StorageError("negative read coordinates")
        cf = self._files.get(inode_id)
        if cf is None or cf.data is None:
            return b"\x00" * length
        end = chunk_file_offset + length
        chunk = bytes(cf.data[chunk_file_offset:end])
        return chunk + b"\x00" * (length - len(chunk))

    def chunk_file_size(self, inode_id: int) -> int:
        cf = self._files.get(inode_id)
        return cf.size if cf is not None else 0

    def remove(self, inode_id: int) -> int:
        """Drop a file's chunk file, returning the bytes freed."""
        cf = self._files.pop(inode_id, None)
        return cf.size if cf is not None else 0

    @property
    def used_bytes(self) -> int:
        return sum(cf.size for cf in self._files.values())

    @property
    def nfiles(self) -> int:
        return len(self._files)
