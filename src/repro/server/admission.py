"""Admission control: bounded pending work, priority classes, shedding.

The controller answers one question — *may this job enter the queue
right now?* — against a hard bound on jobs admitted but not yet
finished.  Two priority classes share the bound asymmetrically:

* ``interactive`` may fill the whole window;
* ``batch`` is shed once the window passes ``batch_headroom`` (default
  75%), reserving the top slice for interactive work even under a
  batch flood.

A refused submit is never an error: the client gets a ``busy`` frame
with a ``retry_after_s`` hint (scaled by how far over capacity the
queue is) and retries with backoff.  During drain every submit is shed
with reason ``draining`` so clients fail over to another server or to
local execution instead of waiting on a server that will not take work.

The controller is plain state — the server serializes access under its
own lock — so it can be unit-tested without sockets or threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError

__all__ = ["PRIORITIES", "AdmissionPolicy", "AdmissionDecision", "AdmissionController"]

PRIORITIES = ("interactive", "batch")


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs of the admission window.

    ``max_pending``     jobs admitted but not finished (queued + running);
    ``batch_headroom``  fraction of the window batch jobs may fill;
    ``retry_after_s``   base RetryAfter hint for a shed submit.
    """

    max_pending: int = 64
    batch_headroom: float = 0.75
    retry_after_s: float = 0.25

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ConfigError("max_pending must be >= 1")
        if not 0.0 < self.batch_headroom <= 1.0:
            raise ConfigError("batch_headroom must be in (0, 1]")
        if self.retry_after_s < 0:
            raise ConfigError("retry_after_s must be >= 0")

    def limit_for(self, priority: str) -> int:
        if priority == "interactive":
            return self.max_pending
        return max(1, int(self.max_pending * self.batch_headroom))


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict on one submit."""

    admitted: bool
    reason: str = ""  # "capacity" | "draining" when refused
    retry_after_s: float = 0.0


@dataclass
class AdmissionController:
    """Tracks the pending-job window and sheds over-capacity submits."""

    policy: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    pending: set = field(default_factory=set)
    draining: bool = False
    counters: dict = field(
        default_factory=lambda: {"admitted": 0, "shed": 0, "completed": 0}
    )

    def try_admit(self, job_id: tuple, priority: str) -> AdmissionDecision:
        """Decide one submit; on admission the job occupies a window slot.

        A job already pending is re-admitted for free (idempotent
        resubmission must never be shed — the work is already in the
        window).
        """
        if priority not in PRIORITIES:
            priority = "batch"
        if job_id in self.pending:
            return AdmissionDecision(admitted=True)
        if self.draining:
            self.counters["shed"] += 1
            return AdmissionDecision(
                False, reason="draining", retry_after_s=self.policy.retry_after_s
            )
        limit = self.policy.limit_for(priority)
        if len(self.pending) >= limit:
            self.counters["shed"] += 1
            # Scale the hint with the overload: a queue twice over the
            # batch line tells batch clients to stay away longer.
            overload = 1.0 + max(0, len(self.pending) - limit) / max(1, limit)
            return AdmissionDecision(
                False,
                reason="capacity",
                retry_after_s=self.policy.retry_after_s * overload,
            )
        self.pending.add(job_id)
        self.counters["admitted"] += 1
        return AdmissionDecision(admitted=True)

    def release(self, job_id: tuple) -> None:
        """A job reached a terminal state: free its window slot."""
        if job_id in self.pending:
            self.pending.discard(job_id)
            self.counters["completed"] += 1

    def occupy(self, job_id: tuple) -> None:
        """Account a job recovered from the WAL without re-admitting it."""
        self.pending.add(job_id)

    def snapshot(self) -> dict:
        return {
            "pending": len(self.pending),
            "max_pending": self.policy.max_pending,
            "draining": self.draining,
            **self.counters,
        }
