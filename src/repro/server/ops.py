"""The live ops surface of the orchestrator server.

Three independent pieces, all consuming the same ``stats()`` snapshot
the ``stats``/``ping`` protocol frames already return:

* :class:`SLOTracker` — sliding-window service-level tracking over the
  signals that decide whether the service is *usable*: queue-wait p99
  against a latency target, shed rate against an error budget, cache
  hit ratio against a floor.  ``evaluate()`` folds them into one
  **burn rate** (how fast the worst budget is being consumed; > 1 means
  the SLO is being violated right now) — the number the server emits as
  ``server.slo`` events and exports as a gauge.

* :func:`prometheus_text` — renders a stats snapshot (plus the session
  :class:`~repro.telemetry.metrics.MetricsRegistry` snapshot, when one
  is live) in the Prometheus text exposition format, served by
  :class:`MetricsServer` on ``repro serve --metrics-port``.

* :func:`render_top` — the ``repro top`` screen: one multi-line text
  frame per refresh, built purely from a stats frame so it works over
  the wire with no extra protocol surface.

Everything here is wall-clock-derived operational data; none of it
feeds back into results, stores, or fingerprints, so the determinism
contract of :mod:`repro.telemetry.trace` is untouched.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping

from repro.errors import OrchestratorError

__all__ = [
    "SLOPolicy",
    "SLOTracker",
    "prometheus_text",
    "MetricsServer",
    "render_top",
]


@dataclass(frozen=True)
class SLOPolicy:
    """The service-level objectives one server instance is held to.

    ``queue_wait_p99_s``  admitted jobs should wait at most this long
                          for a worker, at the 99th percentile;
    ``max_shed_rate``     at most this fraction of submissions may be
                          shed (the capacity error budget);
    ``min_hit_ratio``     the cache hit ratio floor (0 disables it —
                          a cold cache is not an incident);
    ``window``            how many recent observations each signal
                          keeps (sliding window, not lifetime).
    """

    queue_wait_p99_s: float = 2.0
    max_shed_rate: float = 0.05
    min_hit_ratio: float = 0.0
    window: int = 128

    def __post_init__(self) -> None:
        if self.queue_wait_p99_s <= 0:
            raise OrchestratorError("queue_wait_p99_s target must be > 0")
        if not 0 < self.max_shed_rate <= 1:
            raise OrchestratorError("max_shed_rate must be in (0, 1]")
        if not 0 <= self.min_hit_ratio < 1:
            raise OrchestratorError("min_hit_ratio must be in [0, 1)")
        if self.window < 1:
            raise OrchestratorError("SLO window must be >= 1")


def _p99(sample: list[float]) -> float | None:
    """Exact p99 of a sample (nearest-rank); None on an empty sample."""
    if not sample:
        return None
    ordered = sorted(sample)
    rank = min(len(ordered) - 1, math.ceil(0.99 * len(ordered)) - 1)
    return ordered[max(0, rank)]


class SLOTracker:
    """Sliding-window SLO accounting, safe to feed from many threads."""

    def __init__(self, policy: SLOPolicy | None = None):
        self.policy = policy or SLOPolicy()
        window = self.policy.window
        self._lock = threading.Lock()
        self._queue_waits: deque[float] = deque(maxlen=window)
        self._sheds: deque[bool] = deque(maxlen=window)
        self._hits: deque[bool] = deque(maxlen=window)

    # -- observations ------------------------------------------------------

    def observe_queue_wait(self, seconds: float) -> None:
        """An admitted job waited ``seconds`` between admit and lease."""
        with self._lock:
            self._queue_waits.append(max(0.0, float(seconds)))

    def observe_admit(self, shed: bool) -> None:
        """One admission decision: ``shed=True`` means it was refused."""
        with self._lock:
            self._sheds.append(bool(shed))

    def observe_cache(self, hit: bool) -> None:
        """One executed job's cache outcome."""
        with self._lock:
            self._hits.append(bool(hit))

    # -- evaluation --------------------------------------------------------

    def evaluate(self) -> dict[str, Any]:
        """The current SLO state (the ``server.slo`` event payload).

        The burn rate is the worst ratio of observed-to-budgeted across
        the three signals: 1.0 means the budget is being consumed
        exactly at its allowed rate, above 1.0 the SLO is violated.
        The latency signal burns on the *fraction of waits over target*
        against a 1% allowance (it is a p99 objective), not on the raw
        p99 — one slow outlier in a small window should not read as a
        99x burn.
        """
        with self._lock:
            waits = list(self._queue_waits)
            sheds = list(self._sheds)
            hits = list(self._hits)
        policy = self.policy
        p99 = _p99(waits)
        over = (
            sum(1 for w in waits if w > policy.queue_wait_p99_s) / len(waits)
            if waits
            else 0.0
        )
        shed_rate = sum(sheds) / len(sheds) if sheds else 0.0
        hit_ratio = sum(hits) / len(hits) if hits else None
        burns = [over / 0.01, shed_rate / policy.max_shed_rate]
        if policy.min_hit_ratio > 0 and hit_ratio is not None:
            miss_budget = 1.0 - policy.min_hit_ratio
            burns.append((1.0 - hit_ratio) / miss_budget)
        burn = max(burns)
        return {
            "window": policy.window,
            "queue_wait_p99_s": p99,
            "shed_rate": shed_rate,
            "hit_ratio": hit_ratio,
            "burn_rate": burn,
            "ok": burn <= 1.0,
        }


# -- Prometheus text exposition --------------------------------------------

def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_line(name: str, value: Any, labels: Mapping[str, Any] | None = None) -> str:
    if isinstance(value, bool):
        value = int(value)
    if value is None or not isinstance(value, (int, float)):
        value = float("nan") if value is None else value
    body = ""
    if labels:
        pairs = ",".join(f'{k}="{_prom_escape(str(v))}"' for k, v in labels.items())
        body = "{" + pairs + "}"
    return f"{name}{body} {value}"


def _registry_lines(snapshot: Mapping[str, Any]) -> list[str]:
    """MetricsRegistry snapshot → exposition lines.

    Snapshot keys are rendered names (``server.jobs.completed`` or
    ``server.shed{reason=capacity}``); values are typed dicts.  Dots
    become underscores, the ``repro_`` prefix namespaces everything,
    histogram summaries flatten to ``_count``/``_sum`` plus quantile
    gauges.
    """
    lines: list[str] = []
    for key in sorted(snapshot):
        entry = snapshot[key]
        if not isinstance(entry, Mapping):
            continue
        name, _, label_body = key.partition("{")
        base = "repro_" + name.replace(".", "_").replace("-", "_")
        labels: dict[str, str] = {}
        if label_body:
            for pair in label_body.rstrip("}").split(","):
                lk, _, lv = pair.partition("=")
                if lk:
                    labels[lk.strip()] = lv.strip()
        kind = entry.get("type")
        if kind in ("counter", "gauge"):
            lines.append(_prom_line(base, entry.get("value", 0), labels))
        elif kind == "histogram":
            lines.append(_prom_line(base + "_count", entry.get("count", 0), labels))
            lines.append(_prom_line(base + "_sum", entry.get("sum", 0.0), labels))
            for q, v in (entry.get("quantiles") or {}).items():
                qlabels = dict(labels)
                qlabels["quantile"] = str(q)
                lines.append(_prom_line(base, v, qlabels))
    return lines


def prometheus_text(
    stats: Mapping[str, Any], metrics: Mapping[str, Any] | None = None
) -> str:
    """Render a server stats snapshot in Prometheus text format.

    ``stats`` is exactly what the ``stats`` protocol frame carries;
    ``metrics`` is an optional MetricsRegistry snapshot to append.
    Ends with a newline, as the format requires.
    """
    lines: list[str] = []

    def gauge(name: str, help_text: str, value: Any, labels: Mapping[str, Any] | None = None) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(_prom_line(name, value, labels))

    def counter(name: str, help_text: str, value: Any) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} counter")
        lines.append(_prom_line(name, value))

    gauge("repro_server_pending", "Jobs admitted but not yet complete.", stats.get("pending", 0))
    gauge("repro_server_max_pending", "Admission window size.", stats.get("max_pending", 0))
    gauge("repro_server_draining", "1 while the server refuses new work.", stats.get("draining", False))
    gauge("repro_server_sessions", "Open client sessions.", stats.get("sessions", 0))
    counter("repro_server_admitted_total", "Submissions admitted.", stats.get("admitted", 0))
    counter("repro_server_shed_total", "Submissions shed.", stats.get("shed", 0))
    counter("repro_server_completed_total", "Jobs completed.", stats.get("completed", 0))

    jobs = stats.get("jobs")
    if isinstance(jobs, Mapping):
        lines.append("# HELP repro_server_jobs Durable queue entries by state.")
        lines.append("# TYPE repro_server_jobs gauge")
        for state in sorted(jobs):
            lines.append(_prom_line("repro_server_jobs", jobs[state], {"state": state}))

    workers = stats.get("workers")
    if isinstance(workers, Mapping):
        lines.append("# HELP repro_server_worker_busy 1 while the worker is executing a job.")
        lines.append("# TYPE repro_server_worker_busy gauge")
        for worker in sorted(workers):
            state = workers[worker]
            busy = 1 if str(state).startswith("run") else 0
            lines.append(_prom_line("repro_server_worker_busy", busy, {"worker": worker}))

    cache = stats.get("cache")
    if isinstance(cache, Mapping):
        counter("repro_server_cache_hits_total", "Completed jobs served from cache.", cache.get("hits", 0))
        counter("repro_server_cache_misses_total", "Completed jobs that executed.", cache.get("misses", 0))
        gauge("repro_server_cache_hit_ratio", "Lifetime cache hit ratio.", cache.get("hit_ratio"))

    slo = stats.get("slo")
    if isinstance(slo, Mapping):
        gauge("repro_slo_queue_wait_p99_seconds", "Observed queue-wait p99 (sliding window).", slo.get("queue_wait_p99_s"))
        gauge("repro_slo_shed_rate", "Observed shed rate (sliding window).", slo.get("shed_rate"))
        gauge("repro_slo_hit_ratio", "Observed cache hit ratio (sliding window).", slo.get("hit_ratio"))
        gauge("repro_slo_burn_rate", "Worst budget burn rate; > 1 violates the SLO.", slo.get("burn_rate"))
        gauge("repro_slo_ok", "1 while all SLOs are met.", slo.get("ok", True))

    if metrics:
        lines.append("# HELP repro_metric Session metrics registry export.")
        lines.extend(_registry_lines(metrics))

    return "\n".join(lines) + "\n"


class MetricsServer:
    """A tiny threaded HTTP endpoint serving ``GET /metrics``.

    ``renderer`` is called per scrape and must return the exposition
    text — the server holds no state of its own, so scrapes always see
    the live stats.  ``port=0`` binds an ephemeral port (tests);
    ``.port`` reports the bound one.
    """

    def __init__(self, host: str, port: int, renderer: Callable[[], str]):
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path.rstrip("/") not in ("", "/metrics"):
                    self.send_error(404)
                    return
                try:
                    body = outer._renderer().encode("utf-8")
                except Exception:  # pragma: no cover - renderer bug
                    self.send_error(500)
                    return
                self.send_response(200)
                self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes are not events; keep stderr quiet

        self._renderer = renderer
        try:
            self._httpd = ThreadingHTTPServer((host, int(port)), _Handler)
        except OSError as exc:
            raise OrchestratorError(f"cannot bind metrics port {host}:{port}: {exc}") from exc
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()


# -- the `repro top` screen -------------------------------------------------

def _ratio(value: Any) -> str:
    return f"{value:.0%}" if isinstance(value, (int, float)) else "-"


def render_top(stats: Mapping[str, Any], title: str = "repro server") -> str:
    """One text frame of the ops view, built from a stats frame."""
    pending = stats.get("pending", 0)
    cap = stats.get("max_pending", 0)
    lines = [
        f"{title} — {'DRAINING' if stats.get('draining') else 'serving'}",
        f"  window    {pending}/{cap} in flight    sessions {stats.get('sessions', 0)}",
        f"  totals    admitted {stats.get('admitted', 0)}   shed {stats.get('shed', 0)}   completed {stats.get('completed', 0)}",
    ]
    jobs = stats.get("jobs")
    if isinstance(jobs, Mapping):
        body = "   ".join(f"{state} {jobs[state]}" for state in sorted(jobs))
        lines.append(f"  queue     {body}")
    cache = stats.get("cache")
    if isinstance(cache, Mapping):
        lines.append(
            f"  cache     hits {cache.get('hits', 0)}   misses {cache.get('misses', 0)}"
            f"   hit-ratio {_ratio(cache.get('hit_ratio'))}"
        )
    workers = stats.get("workers")
    if isinstance(workers, Mapping) and workers:
        lines.append("  workers")
        for worker in sorted(workers):
            lines.append(f"    {worker:<20s} {workers[worker]}")
    slo = stats.get("slo")
    if isinstance(slo, Mapping):
        p99 = slo.get("queue_wait_p99_s")
        p99_text = f"{p99:.3f}s" if isinstance(p99, (int, float)) else "-"
        state = "OK" if slo.get("ok", True) else "BURNING"
        lines.append(
            f"  slo       {state}   burn {slo.get('burn_rate', 0.0):.2f}x"
            f"   queue-wait p99 {p99_text}   shed {_ratio(slo.get('shed_rate'))}"
            f"   hit {_ratio(slo.get('hit_ratio'))}"
        )
    return "\n".join(lines)
