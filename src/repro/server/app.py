"""The orchestrator server: request router, durable job table, workers.

:class:`OrchestratorServer` is a threaded TCP server fronting the
existing :class:`~repro.service.SimulationService` behind the durable
job queue and the content-addressed result cache.  Its contract:

**Idempotent admission.**  A job's identity is ``(spec fingerprint,
rep)``.  The first submit admits it (one ``server.admit`` event, one
journaled ``enqueue``); every resubmission of the same identity —
client retry, second client, post-crash replay — attaches to the
existing job.  Finished jobs replay their result from the cache without
re-executing, so a duplicate submit is always safe and nearly free.

**Durability.**  Admitted jobs are journaled through the same WAL the
local campaign runner uses (``jobs.journal``), specs are persisted
under ``specs/<fingerprint>.json``, and results live in the result
cache — so a server killed mid-campaign restarts with its whole job
table intact: finished work replays, unfinished work re-executes, and
the resulting record store is byte-identical to an uninterrupted run.

**Bounded load.**  Admission control (see :mod:`.admission`) sheds
over-capacity and mid-drain submits with a ``busy`` frame carrying a
RetryAfter hint instead of queueing unboundedly.

**Graceful drain.**  ``SIGTERM``/``SIGINT`` stop admission, let leased
jobs finish, checkpoint state (the WAL is already on disk — drain just
finishes the in-flight tail), and exit 0.

Execution is serialized across worker threads by a process-wide lock:
the engine contexts and the service's event-capture ring are not
thread-safe, and concurrent captures on one bus would cross-pollute the
cached event streams.  Workers still matter — they pipeline journal
writes, cache replays and client waits around the single execution
stream — but the simulation itself runs one-at-a-time by design.
"""

from __future__ import annotations

import collections
import json
import os
import socket
import socketserver
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..cache import validate_entry
from ..engine.result import result_to_jsonable
from ..errors import ConfigError, ProtocolError
from ..orchestrator.queue import DurableJobQueue
from ..scenario import ScenarioSpec
from ..service import ResultCache, get_service
from ..telemetry.bus import get_bus
from ..telemetry.trace import TraceContext, span_id_for, trace_id_for, trace_scope
from .admission import AdmissionController, AdmissionPolicy
from .ops import MetricsServer, SLOPolicy, SLOTracker, prometheus_text
from .protocol import check_version, message, recv_frame, send_frame
from .sessions import SessionRegistry

__all__ = ["ServerConfig", "OrchestratorServer"]

# One simulation at a time, process-wide (see module doc).
_EXEC_LOCK = threading.Lock()


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``repro serve`` can tune.

    ``port=0`` binds an ephemeral port (the bound port is on
    :attr:`OrchestratorServer.port`).  ``io_timeout_s`` is the per-recv
    socket deadline — a client that dribbles bytes slower than this
    (slow-loris) is evicted, not waited on.  ``wait_cap_s`` bounds how
    long one ``wait`` request may park a handler thread before the
    client is told ``pending`` and re-polls.

    ``metrics_port`` (when not None) serves Prometheus text exposition
    on ``GET /metrics``; 0 binds an ephemeral port (bound port on
    :attr:`OrchestratorServer.metrics_port`).  The ``slo_*`` knobs
    parameterize the :class:`~repro.server.ops.SLOTracker`;
    ``slo_every`` is how many completions pass between ``server.slo``
    event emissions.
    """

    state_dir: Path
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    max_pending: int = 64
    batch_headroom: float = 0.75
    retry_after_s: float = 0.25
    io_timeout_s: float = 10.0
    wait_cap_s: float = 30.0
    session_lease_s: float = 30.0
    metrics_port: int | None = None
    slo_queue_wait_p99_s: float = 2.0
    slo_max_shed_rate: float = 0.05
    slo_min_hit_ratio: float = 0.0
    slo_window: int = 128
    slo_every: int = 8

    def __post_init__(self) -> None:
        object.__setattr__(self, "state_dir", Path(self.state_dir))
        if self.workers < 1:
            raise ConfigError("workers must be >= 1")
        if self.io_timeout_s <= 0 or self.wait_cap_s <= 0:
            raise ConfigError("io_timeout_s and wait_cap_s must be > 0")
        if self.session_lease_s <= 0:
            raise ConfigError("session_lease_s must be > 0")
        if self.metrics_port is not None and self.metrics_port < 0:
            raise ConfigError("metrics_port must be >= 0")
        if self.slo_every < 1:
            raise ConfigError("slo_every must be >= 1")

    def slo_policy(self) -> SLOPolicy:
        """The SLO policy these knobs describe (validates them too)."""
        return SLOPolicy(
            queue_wait_p99_s=self.slo_queue_wait_p99_s,
            max_shed_rate=self.slo_max_shed_rate,
            min_hit_ratio=self.slo_min_hit_ratio,
            window=self.slo_window,
        )


@dataclass
class _Job:
    """One (fingerprint, rep) job's in-memory face."""

    fingerprint: str
    rep: int
    scenario: ScenarioSpec | None
    status: str = ""  # "" while pending, then "ok" | "failed"
    cached: bool = False
    error: str | None = None
    result: Any = None  # jsonable RunResult once finished
    events: list = field(default_factory=list)
    done: threading.Event = field(default_factory=threading.Event)
    # Deterministic distributed-trace id (trace_id_for(fingerprint, rep)
    # unless the submit frame carried one) and the monotonic clock at
    # admission, for the queue-wait measurement at lease time.
    trace: str = ""
    enqueued_at: float = 0.0

    @property
    def job_id(self) -> tuple[str, int]:
        return (self.fingerprint, self.rep)

    def span(self, name: str) -> TraceContext:
        """The context of one of this job's spans ("job" is the root)."""
        if name == "job":
            return TraceContext(self.trace, span_id_for(self.trace, "job"), None)
        return TraceContext(
            self.trace,
            span_id_for(self.trace, name),
            span_id_for(self.trace, "job"),
        )


def _emit(event: str, **fields: Any) -> None:
    bus = get_bus()
    if bus.enabled:
        bus.emit(event, **fields)


class OrchestratorServer(socketserver.ThreadingTCPServer):
    """The networked allocation service (see module doc for the contract)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, config: ServerConfig):
        self.config = config
        state = config.state_dir
        state.mkdir(parents=True, exist_ok=True)
        (state / "specs").mkdir(exist_ok=True)
        self.cache_dir = state / "cache"
        self._store = ResultCache(self.cache_dir)

        self._lock = threading.RLock()
        self._jobs: dict[tuple[str, int], _Job] = {}
        self._work: collections.deque[_Job] = collections.deque()
        # Bulk-prefetched result-cache entries for queued jobs, staged by
        # workers and consumed by _execute with per-job hit accounting.
        self._prefetched: dict[tuple[str, int], dict[str, Any]] = {}
        self._prefetch_seen: set[tuple[str, int]] = set()
        self._work_cv = threading.Condition(self._lock)
        self._stopping = False
        self._drained = threading.Event()
        self._service_threads: list[threading.Thread] = []

        self.admission = AdmissionController(
            policy=AdmissionPolicy(
                max_pending=config.max_pending,
                batch_headroom=config.batch_headroom,
                retry_after_s=config.retry_after_s,
            )
        )
        self.sessions = SessionRegistry(
            state / "sessions.journal", lease_s=config.session_lease_s
        )
        self.queue = DurableJobQueue(state / "jobs.journal")

        # Ops surface: sliding-window SLO accounting, per-worker state,
        # lifetime cache tallies, and (optionally) a /metrics endpoint.
        self.slo = SLOTracker(config.slo_policy())
        self.worker_state: dict[str, str] = {}
        self._cache_tally = {"hits": 0, "misses": 0}
        # Remote-tier traffic (clients using this server as a shared
        # warm cache tier over cache-get/cache-put frames).
        self._remote_cache_tally = {
            "get_hits": 0,
            "get_misses": 0,
            "puts": 0,
            "put_errors": 0,
        }
        self._completions = 0
        self._metrics_server: MetricsServer | None = None

        super().__init__((config.host, config.port), _Handler)
        self._recover()

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    @property
    def metrics_port(self) -> int | None:
        """The bound /metrics port, when the exposition endpoint is on."""
        return self._metrics_server.port if self._metrics_server else None

    def _render_metrics(self) -> str:
        bus = get_bus()
        snapshot = bus.metrics.snapshot() if len(bus.metrics) else None
        return prometheus_text(self.stats(), snapshot)

    def start(self) -> "OrchestratorServer":
        """Recoveries done in ``__init__``; spawn workers and the reaper."""
        for i in range(self.config.workers):
            t = threading.Thread(
                target=self._worker, name=f"repro-worker-{i}", daemon=True
            )
            self.worker_state[t.name] = "idle"
            t.start()
            self._service_threads.append(t)
        if self.config.metrics_port is not None:
            self._metrics_server = MetricsServer(
                self.config.host, self.config.metrics_port, self._render_metrics
            )
        reaper = threading.Thread(target=self._reaper, name="repro-reaper", daemon=True)
        reaper.start()
        self._service_threads.append(reaper)
        _emit(
            "server.start",
            port=self.port,
            pid=os.getpid(),
            state_dir=str(self.config.state_dir),
        )
        bus = get_bus()
        if bus.enabled:
            bus.metrics.counter("server.start").inc()
        return self

    def request_drain(self, reason: str) -> None:
        """Stop admitting; finish leased jobs; then :meth:`wait_drained`."""
        with self._lock:
            if self.admission.draining:
                return
            self.admission.draining = True
            pending = len(self.admission.pending)
            self._work_cv.notify_all()
        _emit("server.drain", reason=reason, pending=pending)
        self._maybe_drained()

    def wait_drained(self, timeout: float | None = None) -> bool:
        return self._drained.wait(timeout)

    def close(self) -> None:
        """Stop threads and release journals (listening socket included)."""
        with self._lock:
            self._stopping = True
            self._work_cv.notify_all()
        if self._metrics_server is not None:
            self._metrics_server.close()
            self._metrics_server = None
        self.shutdown()
        self.server_close()
        for t in self._service_threads:
            t.join(timeout=5.0)
        with self._lock:
            self.queue.close()
            self.sessions.close_journal()

    def _maybe_drained(self) -> None:
        with self._lock:
            if self.admission.draining and not self.admission.pending:
                self._drained.set()

    # -- WAL recovery ------------------------------------------------------

    def _spec_path(self, fingerprint: str) -> Path:
        return self.config.state_dir / "specs" / f"{fingerprint}.json"

    def _persist_spec(self, scenario: ScenarioSpec) -> None:
        path = self._spec_path(scenario.fingerprint)
        if path.exists():
            return
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(scenario.to_jsonable(), handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _load_spec(self, fingerprint: str) -> ScenarioSpec | None:
        try:
            data = json.loads(self._spec_path(fingerprint).read_text())
            return ScenarioSpec.from_jsonable(data)
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def _recover(self) -> None:
        """Replay both WALs: pending jobs re-queue, finished jobs replay."""
        self.queue.open()
        self.sessions.load()
        for entry in self.queue.entries.values():
            job_id = (entry.key, entry.rep)
            scenario = self._load_spec(entry.key)
            # A recovered job resumes under the trace it was admitted
            # with; absent from the journal (older servers, trace-off
            # clients) the id re-derives identically from the identity.
            trace = entry.trace or trace_id_for(entry.key, entry.rep)
            if entry.state in ("queued", "leased"):
                if scenario is None:
                    # Spec never made it to disk (crash between journal
                    # and spec write is impossible — spec is persisted
                    # first — but a deleted specs dir is not).  The job
                    # cannot re-execute; surface it as failed.
                    self.queue.mark_failed(entry.key, entry.rep)
                    continue
                job = _Job(entry.key, entry.rep, scenario, trace=trace)
                job.enqueued_at = time.monotonic()
                self._jobs[job_id] = job
                self.admission.occupy(job_id)
                self._work.append(job)
            elif entry.state == "done":
                job = _Job(
                    entry.key, entry.rep, scenario, status="ok", cached=True, trace=trace
                )
                job.done.set()
                self._jobs[job_id] = job
            else:  # failed
                job = _Job(entry.key, entry.rep, scenario, status="failed", trace=trace)
                job.error = "quarantined by a previous server instance"
                job.done.set()
                self._jobs[job_id] = job

    # -- workers -----------------------------------------------------------

    def _worker(self) -> None:
        me = threading.current_thread().name
        while True:
            with self._work_cv:
                while not self._work and not self._stopping:
                    self._work_cv.wait(timeout=0.2)
                    if self._stopping and not self._work:
                        break
                if self._stopping and not self._work:
                    return
                job = self._work.popleft()
                self.queue.lease(job.fingerprint, job.rep)
                self.worker_state[me] = f"running {job.fingerprint[:10]}:{job.rep}"
            wait_s = (
                max(0.0, time.monotonic() - job.enqueued_at)
                if job.enqueued_at
                else None
            )
            self.slo.observe_queue_wait(wait_s or 0.0)
            bus = get_bus()
            # The lease ends the queue span: admission-to-lease is the
            # wait the SLO tracks, so the event carries it (machine
            # time rides the payload, like worker.end.elapsed_s).
            ctx = job.span("queue") if bus.tracing and job.trace else None
            with trace_scope(ctx):
                _emit(
                    "server.lease",
                    job=job.fingerprint,
                    rep=job.rep,
                    queue_wait_s=wait_s,
                )
            self._prefetch_backlog(job)
            self._execute(job)
            with self._lock:
                self.worker_state[me] = "idle"
            self._maybe_drained()

    def _prefetch_backlog(self, current: _Job) -> None:
        """Bulk-load cache entries for the queued backlog (plus ``current``).

        One directory scan per distinct fingerprint covers every queued
        rep; staged entries are consumed by :meth:`_execute`, which does
        the per-job hit accounting — so tallies, events and breaker
        state match the per-run lookup path exactly.  Prefetch itself
        counts and emits nothing; a failure here degrades silently to
        the per-run path.
        """
        with self._lock:
            backlog = [
                (j.scenario, j.rep)
                for j in [current, *self._work]
                if j.scenario is not None
                and (j.fingerprint, j.rep) not in self._prefetch_seen
            ]
            for spec, rep in backlog:
                self._prefetch_seen.add((spec.fingerprint, rep))
        if not backlog:
            return
        try:
            entries = get_service().prefetch(
                backlog, cache=True, cache_dir=self.cache_dir
            )
        except Exception:  # noqa: BLE001 — prefetch is opportunistic
            return
        if entries:
            with self._lock:
                for (fingerprint, _engine, rep), entry in entries.items():
                    self._prefetched[(fingerprint, rep)] = entry

    def _execute(self, job: _Job) -> None:
        scenario = job.scenario
        assert scenario is not None  # only spec-backed jobs reach the deque
        bus = get_bus()
        run_ctx = job.span("run") if bus.tracing and job.trace else None
        with self._lock:
            prefetched = self._prefetched.pop((scenario.fingerprint, job.rep), None)
        pre_cached = prefetched is not None
        if prefetched is None:
            try:
                pre_cached = self._store.load(scenario, job.rep) is not None
            except OSError:
                pre_cached = False
        started = time.perf_counter()
        try:
            # The run span covers execution: with tracing on, the
            # service's cache probe and the engine's own events are all
            # stamped with this job's trace while we hold the scope.
            with trace_scope(run_ctx), _EXEC_LOCK:
                if prefetched is not None:
                    result = get_service().resolve_prefetched(prefetched)
                else:
                    result = get_service().run(
                        scenario, job.rep, cache=True, cache_dir=self.cache_dir
                    )
            entry = prefetched
            if entry is None:
                try:
                    entry = self._store.load(scenario, job.rep)
                except OSError:
                    entry = None
            if entry is not None:
                job.result = entry["result"]
                job.events = list(entry.get("events", ()))
            else:
                # Cache store failed (degraded mode): serve the live
                # result; events were only captured into the cache, so
                # the client replays none.
                job.result = result_to_jsonable(result)
                job.events = []
            job.status = "ok"
            job.cached = pre_cached
        except Exception as exc:  # noqa: BLE001 — a job failure is data
            job.status = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
        elapsed = time.perf_counter() - started
        with self._lock:
            if job.status == "ok":
                self.queue.mark_done(job.fingerprint, job.rep)
            else:
                self.queue.mark_failed(job.fingerprint, job.rep)
            self.admission.release(job.job_id)
            self._completions += 1
            self._cache_tally["hits" if job.cached else "misses"] += 1
            emit_slo = self._completions % self.config.slo_every == 0
        self.slo.observe_cache(job.cached)
        fields: dict[str, Any] = dict(
            job=job.fingerprint, rep=job.rep, status=job.status, cached=job.cached
        )
        if bus.tracing:
            # Machine time stays out of trace-off streams so they are
            # byte-for-byte what they were before tracing existed.
            fields["elapsed_s"] = elapsed
        with trace_scope(run_ctx):
            _emit("server.complete", **fields)
        if bus.enabled:
            bus.metrics.counter("server.complete", status=job.status).inc()
        if emit_slo:
            _emit("server.slo", **self.slo.evaluate())
        job.done.set()

    def _reaper(self) -> None:
        """Evict sessions whose lease lapsed (heartbeat silence)."""
        interval = max(0.05, self.config.session_lease_s / 4.0)
        while not self._stopping:
            time.sleep(interval)
            with self._lock:
                if self._stopping:
                    return
                lapsed = self.sessions.expire()
            for session in lapsed:
                _emit("server.session", action="expire", session=session.session_id)

    # -- request routing ---------------------------------------------------

    def dispatch(self, msg: dict[str, Any], peer: "_Handler") -> dict[str, Any]:
        check_version(msg)
        mtype = msg.get("type")
        # Hyphenated frame types (cache-get, cache-put) map onto
        # underscore method names.
        handler = (
            getattr(self, f"_req_{mtype.replace('-', '_')}", None)
            if isinstance(mtype, str)
            else None
        )
        if mtype not in ("hello",) and isinstance(msg.get("session"), str):
            with self._lock:
                self.sessions.renew(msg["session"])
        if handler is None:
            raise ProtocolError(f"unknown request type {mtype!r}")
        return handler(msg, peer)

    def _req_hello(self, msg: dict[str, Any], peer: "_Handler") -> dict[str, Any]:
        wanted = msg.get("session")
        with self._lock:
            session = None
            action = "open"
            if isinstance(wanted, str):
                session = self.sessions.resume(wanted)
                action = "resume"
            if session is None:
                session = self.sessions.open()
                action = "open"
        peer.session_id = session.session_id
        _emit("server.session", action=action, session=session.session_id)
        return message(
            "welcome", session=session.session_id, lease_s=self.sessions.lease_s
        )

    def _req_submit(self, msg: dict[str, Any], peer: "_Handler") -> dict[str, Any]:
        try:
            scenario = ScenarioSpec.from_jsonable(msg["spec"])
            rep = int(msg["rep"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"bad submit: {exc}") from exc
        priority = msg.get("priority") or "batch"
        session_id = msg.get("session") or peer.session_id or "-"
        job_id = (scenario.fingerprint, rep)
        # The wire trace id is an optimization: absent (older clients,
        # trace-off runs) the server mints the identical id from the job
        # identity, so both sides always agree.
        wire_trace = msg.get("trace")
        trace = (
            wire_trace
            if isinstance(wire_trace, str) and wire_trace
            else trace_id_for(scenario.fingerprint, rep)
        )
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                # Idempotent resubmission: attach to the existing job.
                if isinstance(session_id, str) and session_id in self.sessions.sessions:
                    self.sessions.sessions[session_id].jobs.add(job_id)
                state = job.status or ("queued" if not job.done.is_set() else "done")
                return message(
                    "accepted",
                    job=scenario.fingerprint,
                    rep=rep,
                    state=state,
                    trace=job.trace,
                )
            decision = self.admission.try_admit(job_id, priority)
            if not decision.admitted:
                pending = len(self.admission.pending)
            else:
                # Spec before journal: recovery can always re-execute
                # anything the WAL admits.
                self._persist_spec(scenario)
                self.queue.enqueue(scenario.fingerprint, rep, trace=trace)
                job = _Job(scenario.fingerprint, rep, scenario, trace=trace)
                job.enqueued_at = time.monotonic()
                self._jobs[job_id] = job
                if isinstance(session_id, str) and session_id in self.sessions.sessions:
                    self.sessions.sessions[session_id].jobs.add(job_id)
                self._work.append(job)
                self._work_cv.notify()
        self.slo.observe_admit(shed=not decision.admitted)
        bus = get_bus()
        if not decision.admitted:
            shed_ctx = (
                TraceContext(trace, span_id_for(trace, "job"), None)
                if bus.tracing
                else None
            )
            with trace_scope(shed_ctx):
                _emit(
                    "server.shed",
                    reason=decision.reason,
                    priority=priority if priority in ("interactive", "batch") else "batch",
                    retry_after_s=decision.retry_after_s,
                    pending=pending,
                )
            if bus.enabled:
                bus.metrics.counter("server.shed", reason=decision.reason).inc()
            return message(
                "busy", reason=decision.reason, retry_after_s=decision.retry_after_s
            )
        # Admission opens the queue span (the lease closes it).
        admit_ctx = job.span("queue") if bus.tracing else None
        with trace_scope(admit_ctx):
            _emit(
                "server.admit",
                job=scenario.fingerprint,
                rep=rep,
                priority=priority if priority in ("interactive", "batch") else "batch",
                session=str(session_id),
            )
        if bus.enabled:
            bus.metrics.counter("server.admit").inc()
        return message(
            "accepted", job=scenario.fingerprint, rep=rep, state="queued", trace=trace
        )

    def _result_frame(self, job: _Job) -> dict[str, Any]:
        if job.status == "ok" and job.result is None:
            # Recovered done job: replay lazily from the result cache.
            if job.scenario is not None:
                try:
                    entry = self._store.load(job.scenario, job.rep)
                except OSError:
                    entry = None
                if entry is not None:
                    job.result = entry["result"]
                    job.events = list(entry.get("events", ()))
            if job.result is None:
                return message(
                    "result",
                    job=job.fingerprint,
                    rep=job.rep,
                    status="failed",
                    cached=True,
                    error="result cache entry lost after restart",
                )
        return message(
            "result",
            job=job.fingerprint,
            rep=job.rep,
            status=job.status,
            cached=job.cached,
            result=job.result,
            events=job.events,
            error=job.error,
            trace=job.trace or None,
        )

    def _req_wait(self, msg: dict[str, Any], peer: "_Handler") -> dict[str, Any]:
        try:
            fingerprint = str(msg["job"])
            rep = int(msg["rep"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"bad wait: {exc}") from exc
        timeout = min(
            float(msg.get("timeout_s") or self.config.wait_cap_s),
            self.config.wait_cap_s,
        )
        with self._lock:
            job = self._jobs.get((fingerprint, rep))
        if job is None:
            return message(
                "error", error="unknown-job", message=f"no job ({fingerprint}, {rep})"
            )
        if job.done.wait(timeout=timeout):
            return self._result_frame(job)
        return message("pending", job=fingerprint, rep=rep)

    def _req_ping(self, msg: dict[str, Any], peer: "_Handler") -> dict[str, Any]:
        sid = msg.get("session")
        if isinstance(sid, str):
            _emit("server.session", action="renew", session=sid)
        return message("stats", **self.stats())

    def _req_stats(self, msg: dict[str, Any], peer: "_Handler") -> dict[str, Any]:
        return message("stats", **self.stats())

    def _req_bye(self, msg: dict[str, Any], peer: "_Handler") -> dict[str, Any]:
        sid = msg.get("session") or peer.session_id
        if isinstance(sid, str):
            with self._lock:
                closed = self.sessions.close(sid)
            if closed:
                _emit("server.session", action="close", session=sid)
        return message("bye")

    # -- the shared warm tier (sessionless cache frames) -------------------

    # Bound on keys per cache-get frame, slightly above the client's
    # batch size so a well-behaved RemoteTier never trips it.
    _MAX_CACHE_KEYS = 256

    def _req_cache_get(self, msg: dict[str, Any], peer: "_Handler") -> dict[str, Any]:
        keys = msg.get("keys")
        if not isinstance(keys, list) or len(keys) > self._MAX_CACHE_KEYS:
            raise ProtocolError(
                f"cache-get needs a keys list of at most {self._MAX_CACHE_KEYS}"
            )
        revision = msg.get("model_revision")
        entries: list[dict[str, Any]] = []
        hits = 0
        misses = 0
        for key in keys:
            if not (isinstance(key, (list, tuple)) and len(key) == 3):
                raise ProtocolError("cache-get keys are [fingerprint, engine, rep]")
            fingerprint, engine, rep = key
            try:
                entry = self._store.load_key(
                    str(fingerprint),
                    str(engine),
                    int(rep),
                    model_revision=int(revision) if revision is not None else None,
                )
            except (OSError, TypeError, ValueError):
                entry = None
            if entry is not None:
                entries.append(entry)
                hits += 1
            else:
                misses += 1
        with self._lock:
            self._remote_cache_tally["get_hits"] += hits
            self._remote_cache_tally["get_misses"] += misses
        return message("cache-entries", entries=entries)

    def _req_cache_put(self, msg: dict[str, Any], peer: "_Handler") -> dict[str, Any]:
        entry = msg.get("entry")
        stored = False
        if isinstance(entry, dict) and validate_entry(
            entry, model_revision=entry.get("model_revision")
        ):
            try:
                self._store.store_entry(entry)
                stored = True
            except (OSError, ConfigError):
                stored = False
        with self._lock:
            self._remote_cache_tally["puts" if stored else "put_errors"] += 1
        return message("cache-ok", stored=stored)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            snapshot = {
                **self.admission.snapshot(),
                "sessions": len(self.sessions.sessions),
                "jobs": self.queue.counts(),
                "workers": dict(self.worker_state),
                "cache": dict(self._cache_tally),
                "remote_cache": dict(self._remote_cache_tally),
            }
        hits = snapshot["cache"]["hits"]
        total = hits + snapshot["cache"]["misses"]
        snapshot["cache"]["hit_ratio"] = hits / total if total else None
        snapshot["slo"] = self.slo.evaluate()
        return snapshot


class _Handler(socketserver.BaseRequestHandler):
    """One connection: a request/response loop over framed messages.

    Read-side defects close the connection (the peer is gone or
    garbling); request-level defects answer an ``error`` frame and keep
    the connection — the client's next request is independent.
    """

    server: OrchestratorServer
    session_id: str | None = None

    def handle(self) -> None:
        sock: socket.socket = self.request
        sock.settimeout(self.server.config.io_timeout_s)
        while True:
            try:
                msg = recv_frame(sock)
            except (ProtocolError, OSError):
                return  # torn frame, reset, or slow-loris timeout: evict
            if msg is None:
                return  # clean EOF
            try:
                reply = self.server.dispatch(msg, self)
            except ProtocolError as exc:
                reply = message("error", error="protocol", message=str(exc))
            except Exception as exc:  # noqa: BLE001 — never kill the acceptor
                reply = message("error", error=type(exc).__name__, message=str(exc))
            try:
                send_frame(sock, reply)
            except OSError:
                return
            if msg.get("type") == "bye":
                return
