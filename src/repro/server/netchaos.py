"""Network fault injection for the chaos harness.

Three instruments, all stdlib:

* :func:`serve_in_thread` — an :class:`~repro.server.app.OrchestratorServer`
  running on background threads in this process, for tests that need a
  live server without a subprocess;
* :class:`ChaosProxy` — a byte-level TCP proxy between client and
  server that can hard-reset the connection after N forwarded bytes
  (``SO_LINGER`` zero, so the peer sees ``ECONNRESET``, not FIN) or
  truncate exactly one server→client frame mid-body (a torn frame the
  client's length-prefixed reader must detect);
* :func:`slow_loris` — a raw client that opens a connection and
  dribbles a frame slower than the server's ``io_timeout_s``, proving
  the read deadline evicts it instead of pinning a handler thread.

The proxy deliberately runs below the protocol layer — it forwards raw
bytes and counts them — so the faults it injects are exactly the ones a
real network produces: resets and half-written frames, never neatly
aligned to message boundaries.
"""

from __future__ import annotations

import contextlib
import socket
import struct
import threading
import time
from typing import Iterator

from .app import OrchestratorServer, ServerConfig
from .protocol import PROTOCOL_VERSION

__all__ = ["serve_in_thread", "ChaosProxy", "slow_loris"]


@contextlib.contextmanager
def serve_in_thread(config: ServerConfig) -> Iterator[OrchestratorServer]:
    """A started server on background threads; closed on exit."""
    server = OrchestratorServer(config).start()
    acceptor = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        name="repro-acceptor",
        daemon=True,
    )
    acceptor.start()
    try:
        yield server
    finally:
        server.close()
        acceptor.join(timeout=5.0)


def _hard_reset(sock: socket.socket) -> None:
    """Close with RST (SO_LINGER 0): the peer sees a connection reset."""
    with contextlib.suppress(OSError):
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    with contextlib.suppress(OSError):
        sock.close()


class ChaosProxy:
    """A TCP forwarder that injects one byte-level fault, then dies.

    ``mode``:

    * ``"pass"`` — forward faithfully (the control arm);
    * ``"reset"`` — after ``fault_after_bytes`` of server→client
      traffic, hard-reset *both* sides;
    * ``"truncate"`` — forward server→client traffic up to
      ``fault_after_bytes``, send half of the next chunk, then
      hard-reset: the client holds a torn frame.

    One fault per proxy lifetime (``faulted`` flips); a client that
    reconnects *directly to the server* afterwards models a network
    blip, which is exactly what the retry path must survive.
    """

    def __init__(
        self,
        upstream_port: int,
        mode: str = "pass",
        fault_after_bytes: int = 1 << 63,
        host: str = "127.0.0.1",
    ):
        if mode not in ("pass", "reset", "truncate"):
            raise ValueError(f"unknown chaos mode {mode!r}")
        self.mode = mode
        self.fault_after_bytes = int(fault_after_bytes)
        self.upstream = (host, int(upstream_port))
        self.faulted = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(8)
        self.port = int(self._listener.getsockname()[1])
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy", daemon=True
        )
        self._accept_thread.start()

    def close(self) -> None:
        self._stop.set()
        with contextlib.suppress(OSError):
            self._listener.close()
        self._accept_thread.join(timeout=2.0)
        for t in self._threads:
            t.join(timeout=2.0)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            try:
                server = socket.create_connection(self.upstream, timeout=5.0)
            except OSError:
                _hard_reset(client)
                continue
            counted = {"n": 0}
            pair = [
                threading.Thread(
                    target=self._pump,
                    args=(server, client, counted),  # server→client: the
                    daemon=True,  # direction faults are counted against
                ),
                threading.Thread(
                    target=self._pump, args=(client, server, None), daemon=True
                ),
            ]
            for t in pair:
                t.start()
                self._threads.append(t)

    def _pump(self, src: socket.socket, dst: socket.socket, counted) -> None:
        src.settimeout(0.2)
        while not self._stop.is_set():
            try:
                chunk = src.recv(65536)
            except socket.timeout:
                continue
            except OSError:
                break
            if not chunk:
                break
            if counted is not None and not self.faulted and self.mode != "pass":
                budget = self.fault_after_bytes - counted["n"]
                if len(chunk) >= budget:
                    self.faulted = True
                    if self.mode == "truncate":
                        keep = budget + max(1, (len(chunk) - budget) // 2)
                        with contextlib.suppress(OSError):
                            dst.sendall(chunk[:keep])
                    _hard_reset(dst)
                    _hard_reset(src)
                    return
                counted["n"] += len(chunk)
            try:
                dst.sendall(chunk)
            except OSError:
                break
        with contextlib.suppress(OSError):
            dst.shutdown(socket.SHUT_WR)
        with contextlib.suppress(OSError):
            src.close()


def slow_loris(
    port: int, host: str = "127.0.0.1", dribble_s: float = 0.4, max_bytes: int = 64
) -> tuple[int, bool]:
    """Dribble a valid frame one byte per ``dribble_s``; return the outcome.

    Returns ``(bytes_sent, evicted)`` where ``evicted`` is True when the
    server cut us off (reset or FIN) before the frame finished — the
    desired behaviour when ``dribble_s`` exceeds the server's read
    deadline, since a patient server would pin a handler thread on us
    forever.
    """
    import json

    body = json.dumps({"v": PROTOCOL_VERSION, "type": "stats"}).encode("utf-8")
    frame = struct.pack(">I", len(body)) + body
    sent = 0
    with contextlib.closing(
        socket.create_connection((host, port), timeout=5.0)
    ) as sock:
        sock.settimeout(max(1.0, dribble_s * 4))
        for i in range(min(len(frame), max_bytes)):
            try:
                sock.sendall(frame[i : i + 1])
                sent += 1
            except OSError:
                return sent, True
            time.sleep(dribble_s)
        # Frame complete (or byte budget spent): did the server hang up?
        try:
            sock.settimeout(2.0)
            data = sock.recv(1)
            return sent, not data
        except ConnectionError:
            return sent, True
        except socket.timeout:
            return sent, False
