"""The networked allocation orchestrator: a long-running server front
for the simulation service.

``repro serve`` runs :class:`~repro.server.app.OrchestratorServer`: a
threaded TCP server speaking the length-prefixed JSON protocol of
:mod:`repro.server.protocol`, fronting the existing durable job queue
and content-addressed result cache so many concurrent clients can
submit :class:`~repro.scenario.ScenarioSpec` s and stream results.  The
client half lives in :mod:`repro.client`.

The layering mirrors storalloc's router/queue/scheduler split:

* :mod:`repro.server.protocol` — the wire format (framing, message
  schema, versioning);
* :mod:`repro.server.admission` — admission control: bounded pending
  jobs, priority classes, load shedding with RetryAfter;
* :mod:`repro.server.sessions` — per-client session leases, journaled
  through the WAL and evicted on heartbeat silence;
* :mod:`repro.server.app` — the request router, the durable job table
  and the worker/drain machinery;
* :mod:`repro.server.netchaos` — network fault injection helpers for
  the chaos harness (byte-dropping proxy, slow-loris driver).
"""

from .admission import AdmissionController, AdmissionPolicy
from .app import OrchestratorServer, ServerConfig
from .protocol import PROTOCOL_VERSION, recv_frame, send_frame
from .sessions import SessionRegistry

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "OrchestratorServer",
    "PROTOCOL_VERSION",
    "ServerConfig",
    "SessionRegistry",
    "recv_frame",
    "send_frame",
]
