"""The wire protocol: length-prefixed JSON frames, versioned messages.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding a single object.  Length-prefixing (rather
than newline-delimiting) makes torn writes *detectable*: a reader that
gets EOF mid-length or mid-body knows the frame was half-written and
can fail the connection cleanly instead of mis-parsing the tail of one
message as the head of the next.

Every message object carries ``{"v": PROTOCOL_VERSION, "type": ...}``.
The version is checked on both sides before any field is interpreted,
so an old client against a new server (or vice versa) fails with a
structured error, never a silent misread.

Request types (client → server)::

    hello   {session?}                    open or resume a session
    submit  {spec, rep, priority?, trace?}  admit one (fingerprint, rep) job
    wait    {job, rep, timeout_s?, trace?}  block (bounded) for a result
    ping    {}                            heartbeat: renews the session lease
    stats   {}                            server introspection
    bye     {}                            close the session

    cache-get {keys, model_revision}      bulk remote-cache lookup: keys is
                                          [[fingerprint, engine, rep], ...]
    cache-put {entry}                     offer one whole cache entry

Response types (server → client)::

    welcome  {session, lease_s}           session opened/resumed
    accepted {job, rep, state, trace?}    job admitted (or already known)
    result   {job, rep, status, cached, result?, events?, error?, trace?}
    pending  {job, rep}                   wait timed out server-side; re-poll
    busy     {reason, retry_after_s}      load shed / draining: retry later
    stats    {...}
    error    {error, message}             malformed or unserviceable request
    bye      {}

    cache-entries {entries}               the validated entries held for a
                                          cache-get (absent keys missing)
    cache-ok {stored}                     cache-put acknowledged

The cache frames are **sessionless** (no ``hello`` required, no lease
renewed): they serve :class:`repro.cache.remote.RemoteTier`, which
treats the server as a shared warm tier rather than a job executor.

The optional ``trace`` field is the deterministic distributed-trace id
of :mod:`repro.telemetry.trace` — an *optimization*, not a contract:
it derives purely from the job identity, so a server that never sees it
mints the identical id, and peers on either side of this version
interoperate unchanged.  ``stats`` replies carry the live ops snapshot
(admission window, queue counts by state, per-worker state, cache
tallies, and the sliding-window SLO evaluation).

All read-side defects — torn frame, oversized frame, bad JSON, version
mismatch — raise :class:`~repro.errors.ProtocolError`; a clean EOF at a
frame boundary returns ``None`` so callers can distinguish an orderly
close from a half-written frame.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

from ..errors import ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "REQUEST_TYPES",
    "RESPONSE_TYPES",
    "send_frame",
    "recv_frame",
    "message",
    "check_version",
]

PROTOCOL_VERSION = 1

# An encoded RunResult with resource series and captured events is tens
# of KiB; 64 MiB leaves three orders of magnitude of headroom while
# bounding what a hostile or broken peer can make us buffer.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")

REQUEST_TYPES = (
    "hello",
    "submit",
    "wait",
    "ping",
    "stats",
    "bye",
    "cache-get",
    "cache-put",
)
RESPONSE_TYPES = (
    "welcome",
    "accepted",
    "result",
    "pending",
    "busy",
    "stats",
    "error",
    "bye",
    "cache-entries",
    "cache-ok",
)


def message(mtype: str, **fields: Any) -> dict[str, Any]:
    """Build a versioned message object."""
    return {"v": PROTOCOL_VERSION, "type": mtype, **fields}


def check_version(msg: dict[str, Any]) -> None:
    """Raise :class:`ProtocolError` unless ``msg`` speaks our version."""
    if msg.get("v") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: got {msg.get('v')!r}, "
            f"speaking {PROTOCOL_VERSION}"
        )


def send_frame(sock: socket.socket, msg: dict[str, Any]) -> None:
    """Encode and send one message as a single length-prefixed frame."""
    body = json.dumps(msg, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    # One sendall for header+body: fewer partial-write windows for the
    # chaos proxy (and the kernel) to cut a frame in half on our side.
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on EOF *before the first byte*.

    EOF after a partial read is a torn frame and raises — the peer died
    (or was killed, or reset) mid-write.  Socket timeouts propagate as
    :class:`socket.timeout` (an ``OSError``) for the caller's retry or
    eviction logic.
    """
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(f"torn frame: EOF after {got} of {n} bytes")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Receive one frame; ``None`` on a clean EOF at a frame boundary."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError(f"torn frame: EOF after header promising {length} bytes")
    try:
        msg = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(msg, dict):
        raise ProtocolError(f"frame body must be an object, got {type(msg).__name__}")
    return msg
