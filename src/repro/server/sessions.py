"""Per-client session leases, journaled through the WAL.

A session is the server's memory of one client: an id the client quotes
on every request, a wall-clock lease renewed by any request (heartbeats
included), and the set of jobs it submitted.  Sessions are journaled to
an fsync'd WAL (the same :class:`~repro.orchestrator.journal.Journal`
the job queue uses) so a server crash mid-campaign restarts with its
client table intact: a client that reconnects and quotes its old id
resumes its session if the lease is still live, and is handed a fresh
one otherwise — either way its *jobs* survived in the job queue, so
nothing re-executes.

Eviction is heartbeat-based: the server's reaper sweeps
:meth:`SessionRegistry.expire` and any session whose lease has lapsed
is closed (journaled, so a restart does not resurrect it).  Ids are a
journal-replayed counter, not random, so restarts never collide and the
registry stays deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from ..orchestrator.journal import Journal, read_records

__all__ = ["Session", "SessionRegistry"]


@dataclass
class Session:
    """One client's lease and submitted-job set."""

    session_id: str
    lease_expires: float
    jobs: set = field(default_factory=set)

    def live(self, now: float) -> bool:
        return now < self.lease_expires


class SessionRegistry:
    """The journaled client-session table (caller serializes access)."""

    def __init__(self, path: str | Path, lease_s: float = 30.0):
        self.path = Path(path)
        self.lease_s = float(lease_s)
        self.sessions: dict[str, Session] = {}
        self.resumed = 0
        self._counter = 0
        self._journal = Journal(self.path)

    # -- persistence -------------------------------------------------------

    def load(self, now: float | None = None) -> "SessionRegistry":
        """Replay the WAL: live sessions resume, lapsed ones stay dead."""
        clock = time.time() if now is None else now
        records, _torn = read_records(self.path)
        for record in records:
            sid = record.get("session")
            op = record.get("op")
            if not isinstance(sid, str) or not sid.startswith("s"):
                continue
            try:
                number = int(sid[1:])
            except ValueError:
                continue
            self._counter = max(self._counter, number)
            if op in ("open", "renew"):
                expires = float(record.get("lease_expires") or 0.0)
                session = self.sessions.get(sid)
                if session is None:
                    self.sessions[sid] = Session(sid, expires)
                else:
                    session.lease_expires = expires
            elif op in ("close", "expire"):
                self.sessions.pop(sid, None)
        dead = [sid for sid, s in self.sessions.items() if not s.live(clock)]
        for sid in dead:
            del self.sessions[sid]
        self.resumed = len(self.sessions)
        return self

    def _append(self, op: str, session: Session) -> None:
        self._journal.append(
            {
                "op": op,
                "session": session.session_id,
                "lease_expires": session.lease_expires,
            }
        )

    def close_journal(self) -> None:
        self._journal.close()

    # -- lifecycle ---------------------------------------------------------

    def open(self, now: float | None = None) -> Session:
        clock = time.time() if now is None else now
        self._counter += 1
        session = Session(f"s{self._counter}", clock + self.lease_s)
        self.sessions[session.session_id] = session
        self._append("open", session)
        return session

    def resume(self, session_id: str, now: float | None = None) -> Session | None:
        """The live session with this id, lease renewed; None if lapsed."""
        clock = time.time() if now is None else now
        session = self.sessions.get(session_id)
        if session is None or not session.live(clock):
            return None
        self.renew(session_id, now=clock)
        return session

    def renew(self, session_id: str, now: float | None = None) -> bool:
        clock = time.time() if now is None else now
        session = self.sessions.get(session_id)
        if session is None:
            return False
        session.lease_expires = clock + self.lease_s
        # Renewals are frequent and idempotent: journaling each one
        # would dominate the WAL, so only lease *extensions past the
        # last journaled horizon* are persisted implicitly by the next
        # open/close; a crash loses at most one lease period of renews,
        # after which the client simply opens a fresh session.
        return True

    def close(self, session_id: str) -> bool:
        session = self.sessions.pop(session_id, None)
        if session is None:
            return False
        self._append("close", session)
        return True

    def expire(self, now: float | None = None) -> list[Session]:
        """Evict every session whose lease lapsed; returns the evicted."""
        clock = time.time() if now is None else now
        lapsed = [s for s in self.sessions.values() if not s.live(clock)]
        for session in lapsed:
            del self.sessions[session.session_id]
            self._append("expire", session)
        return lapsed
