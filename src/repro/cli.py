"""Command-line interface: ``beegfs-repro`` / ``python -m repro``.

Subcommands
-----------

``list``
    Show every registered experiment with its paper reference.
``run EXP_ID [--reps N] [--seed S] [--out DIR] [--on-error {fail,skip}]
[--checkpoint PATH] [--resume] [--verify {off,basic,paranoid}]
[--workers N] [--no-cache] [--cache-dir DIR] [--cache-remote HOST:PORT]``
    Run one experiment (or ``all``), print its figure, optionally
    archive the raw records as CSV — the way the paper publishes its
    results repository.  ``--on-error skip`` quarantines raising runs
    instead of aborting the campaign (summarised on stderr, exit code
    1); ``--checkpoint``/``--resume`` make long campaigns crash-safe
    and restartable.  ``--verify`` turns on runtime invariant checking
    inside the engines; a violating run is quarantined like a crash
    under ``--on-error skip``.  ``--workers N`` executes runs in N
    worker processes with byte-identical results.  Previously-simulated
    (configuration, rep) pairs replay from the tiered content-addressed
    result cache — an in-process hot tier over the on-disk store
    (``$REPRO_CACHE_DIR`` or ``~/.cache/beegfs-repro``; override with
    ``--cache-dir``, disable with ``--no-cache``), plus an optional
    shared remote tier behind a ``repro serve`` instance
    (``--cache-remote HOST:PORT``; outages degrade to the local tiers).
    A cache summary is printed on stderr after the campaign.
``verify [--suite {invariants,conformance,replay,all}] [--level
{basic,paranoid}] [--reps N] [--seed S] [--golden PATH]
[--update-golden] [--inject {over-capacity,byte-loss,rng-perturb}]``
    Run the simulation guardrails: paranoid invariant sweeps over
    shipped experiment specs, fluid-vs-DES conformance against pinned
    goldens, and deterministic-replay proofs.  ``--inject`` seeds a
    deliberate violation and *expects* detection: exit 1 when the
    verifier catches it, exit 2 when it does not (the verifier itself
    is broken).
``calibration``
    Print the calibrated model parameters and their paper anchors.
``placements [--stripe-count K] [--samples N]``
    Show the (min, max) allocation distribution of each chooser.
``recommend [--scenario S | --system FILE] [--nodes N] [--ppn P]``
    Run the stripe-configuration advisor.
``system export PATH [--scenario S]``
    Write a JSON system description to edit for your own cluster.
``bench [--out DIR] [--workers N] [--quick] [--baseline FILE]
[--max-regression FRAC]``
    Run the tracked performance benchmarks (solver, fluid run, serial
    and parallel campaigns), write ``BENCH_<rev>.json``, and — with
    ``--baseline`` — fail (exit 1) on any norm-adjusted regression
    beyond the threshold.
``chaos [--workers N] [--seed S] [--only KIND] [--quiet]``
    Self-test the campaign orchestrator by injecting *real* faults —
    SIGKILL a worker mid-run, hang a run past its timeout, SIGKILL the
    whole campaign process, truncate a checkpoint, corrupt cache
    entries, deny the cache directory — and assert every campaign still
    completes with a byte-identical record store.  Exit 0 means all
    injections were survived.
``cache gc --max-bytes N [--cache-dir DIR] [--tier {disk,memory}]
[--dry-run]``
    Evict result-cache entries, least recently used first, until the
    tier fits in N bytes (accepts unit suffixes, e.g. ``500MiB``).
    Cache hits touch entry mtimes, so disk eviction order is true LRU.
    ``--dry-run`` reports what would be evicted without deleting
    anything.
``cache stats [--cache-dir DIR] [--remote HOST:PORT]``
    Per-tier occupancy (entries, bytes, quarantined corrupt files) and
    this process's probe tallies with hit ratios; with ``--remote``,
    also the serving host's remote-tier tally.
``serve --state-dir DIR [--host H] [--port P] [--workers N]
[--max-pending N] [--io-timeout-s S] [--session-lease-s S]
[--telemetry PATH] [--trace] [--metrics-port P] [--slo-* ...]``
    Run the networked allocation orchestrator: a long-lived server that
    admits (fingerprint, rep) jobs from remote clients, executes them
    through the simulation service, and journals every admission so a
    killed server restarts with its campaign intact.  ``SIGTERM``
    drains gracefully (stop admitting, finish leased jobs, exit 0).
    ``--trace`` stamps events with deterministic distributed-trace ids;
    ``--metrics-port`` serves Prometheus text exposition on
    ``GET /metrics``; the ``--slo-*`` knobs tune the sliding-window SLO
    tracking surfaced as ``server.slo`` events.
``submit EXP_ID --remote HOST:PORT [--reps N] [--seed S] [--out DIR]
[--priority {interactive,batch}] [--deadline-s S] [--no-fallback]
[--telemetry PATH] [--trace]``
    Run one experiment's campaign against a remote ``serve`` instance
    under the paper's exact protocol; records are byte-identical to a
    local ``run``.  Transient faults retry with backoff; with fallback
    enabled (default) an unreachable server degrades to local
    execution instead of failing the campaign.
``trace PATH [PATH ...] [--export FILE] [--check] [--job FP] [--limit N]``
    Reconstruct per-job distributed span trees from one or more traced
    event streams (client + server + workers; directories expand to
    their ``*.jsonl``), print a causal timeline with queue-wait / run /
    cache breakdowns, optionally export Chrome-trace/Perfetto JSON
    (``--export``), and — with ``--check`` — exit 1 unless every
    admitted job shows its complete submit → admit → lease → complete
    chain.
``top --remote HOST:PORT [--interval S] [--iterations N]``
    Live ops view of a running ``serve`` instance: admission window,
    queue depths, per-worker state, cache hit ratio and SLO burn rate,
    refreshed every ``--interval`` seconds (``--iterations 0`` runs
    until interrupted).
``stats PATH``
    Render the campaign dashboard from a ``--telemetry`` JSONL stream:
    progress, failure rates, bandwidth distributions (with bimodality
    verdicts), fault windows, server timelines and the final metrics.
``tail PATH [--follow] [--validate] [--quiet]``
    Pretty-print a telemetry event stream; ``--follow`` keeps reading
    as a campaign appends, ``--validate`` checks every line against the
    versioned JSONL schema (exit 1 on any problem — the CI gate).

Every subcommand turns a :class:`~repro.errors.ReproError` into a
one-line structured ``error[Type]: message`` on stderr and exit code 1
instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import ExitStack
from pathlib import Path

from . import __version__
from .analysis.allocation import placement_distribution, random_placement_probabilities
from .calibration.fitting import anchor_report
from .calibration.plafrim import SCENARIOS, scenario_by_name
from .errors import ReproError
from .experiments.registry import get_experiment, list_experiments

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="beegfs-repro",
        description="Reproduction of 'The role of storage target allocation in "
        "applications' I/O performance with BeeGFS' (CLUSTER 2022)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the reproducible experiments")

    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("exp_id", help="experiment id (see 'list'), or 'all'")
    run_p.add_argument("--reps", type=int, default=None, help="repetitions (default: paper's)")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--out", type=Path, default=None, help="directory for CSV records")
    run_p.add_argument("--quiet", action="store_true", help="suppress progress lines")
    run_p.add_argument(
        "--on-error",
        choices=["fail", "skip"],
        default="fail",
        help="'skip' quarantines raising runs and continues (default: fail fast)",
    )
    run_p.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        help="JSON checkpoint file, written periodically (per-experiment suffix "
        "when running 'all')",
    )
    run_p.add_argument(
        "--resume",
        action="store_true",
        help="skip runs already in the checkpoint (requires --checkpoint)",
    )
    run_p.add_argument(
        "--verify",
        choices=["off", "basic", "paranoid"],
        default="off",
        help="runtime invariant checking inside the engines; violating runs "
        "are quarantined (default: off)",
    )
    run_p.add_argument(
        "--telemetry",
        type=Path,
        default=None,
        metavar="PATH",
        help="append a structured JSONL event stream (see 'tail'/'stats')",
    )
    run_p.add_argument(
        "--telemetry-level",
        choices=["info", "debug"],
        default="info",
        help="'debug' adds per-flow and per-segment events (large streams)",
    )
    run_p.add_argument(
        "--trace",
        action="store_true",
        help="stamp telemetry events with deterministic distributed-trace ids "
        "(see 'trace'); results stay byte-identical",
    )
    run_p.add_argument(
        "--profile",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="span-profile the simulation hot paths; report on stderr",
    )
    run_p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="execute runs in N worker processes; results are byte-identical "
        "to a serial campaign (default: 1)",
    )
    run_p.add_argument(
        "--no-cache",
        action="store_true",
        help="always execute; do not read or write the result cache",
    )
    run_p.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/beegfs-repro)",
    )
    run_p.add_argument(
        "--cache-remote",
        default=None,
        metavar="HOST:PORT",
        help="also use a 'repro serve' instance as a shared remote cache "
        "tier (read-through/write-behind; outages degrade to local tiers)",
    )

    verify_p = sub.add_parser("verify", help="run the simulation guardrails")
    verify_p.add_argument(
        "--suite",
        choices=["invariants", "conformance", "replay", "all"],
        default="all",
    )
    verify_p.add_argument(
        "--level",
        choices=["basic", "paranoid"],
        default="paranoid",
        help="invariant-checking depth (default: paranoid)",
    )
    verify_p.add_argument("--reps", type=int, default=2, help="repetitions per invariant spec")
    verify_p.add_argument("--seed", type=int, default=0)
    verify_p.add_argument(
        "--golden",
        type=Path,
        default=None,
        help="golden store path (default: tests/golden/conformance.json)",
    )
    verify_p.add_argument(
        "--update-golden",
        action="store_true",
        help="re-pin the conformance goldens from this run",
    )
    verify_p.add_argument(
        "--inject",
        choices=["over-capacity", "byte-loss", "rng-perturb"],
        default=None,
        help="seed a deliberate violation; exit 1 = detected (good), "
        "exit 2 = missed (verifier broken)",
    )
    verify_p.add_argument("--quiet", action="store_true", help="suppress progress lines")

    sub.add_parser("calibration", help="print calibrated parameters and anchors")

    place_p = sub.add_parser("placements", help="chooser placement distributions")
    place_p.add_argument("--stripe-count", type=int, default=4)
    place_p.add_argument("--samples", type=int, default=300)

    rec_p = sub.add_parser("recommend", help="stripe configuration advisor")
    rec_p.add_argument("--scenario", choices=list(SCENARIOS), default="scenario1")
    rec_p.add_argument("--system", type=Path, default=None,
                       help="JSON system file (see 'system export') instead of a scenario")
    rec_p.add_argument("--nodes", type=int, default=8)
    rec_p.add_argument("--ppn", type=int, default=8)

    exp_p = sub.add_parser("explain", help="bottleneck attribution of one run")
    exp_p.add_argument("--scenario", choices=list(SCENARIOS), default="scenario1")
    exp_p.add_argument("--nodes", type=int, default=8)
    exp_p.add_argument("--ppn", type=int, default=8)
    exp_p.add_argument("--stripe-count", type=int, default=4)
    exp_p.add_argument("--chooser", default=None)
    exp_p.add_argument("--rep", type=int, default=0)

    sys_p = sub.add_parser("system", help="export a system description as JSON")
    sys_p.add_argument("action", choices=["export"])
    sys_p.add_argument("path", type=Path)
    sys_p.add_argument("--scenario", choices=list(SCENARIOS), default="scenario1")

    bench_p = sub.add_parser("bench", help="run the tracked performance benchmarks")
    bench_p.add_argument(
        "--out",
        type=Path,
        default=Path("benchmarks"),
        help="directory for the BENCH_<rev>.json report (default: benchmarks/)",
    )
    bench_p.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="worker count for the parallel-campaign bench (default: 4)",
    )
    bench_p.add_argument(
        "--quick",
        action="store_true",
        help="reduced batches/repetitions (CI smoke mode)",
    )
    bench_p.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline BENCH_*.json to compare against (exit 1 on regression)",
    )
    bench_p.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        metavar="FRAC",
        help="norm-adjusted regression threshold vs the baseline (default: 0.30)",
    )

    chaos_p = sub.add_parser(
        "chaos", help="self-test the orchestrator by injecting real faults"
    )
    chaos_p.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="worker count for the parallel injections (default: 4)",
    )
    chaos_p.add_argument("--seed", type=int, default=0)
    chaos_p.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="KIND",
        help="run only this injection (repeatable; see 'chaos --help' output "
        "for the kinds)",
    )
    chaos_p.add_argument("--quiet", action="store_true", help="suppress progress lines")

    cache_p = sub.add_parser("cache", help="manage the tiered result cache")
    cache_sub = cache_p.add_subparsers(dest="action", required=True)
    cache_gc_p = cache_sub.add_parser(
        "gc", help="evict entries, least recently used first, to a size bound"
    )
    cache_gc_p.add_argument(
        "--max-bytes",
        required=True,
        metavar="N",
        help="target cache size; unit suffixes accepted (e.g. 500MiB, 2GiB)",
    )
    cache_gc_p.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/beegfs-repro)",
    )
    cache_gc_p.add_argument(
        "--tier",
        choices=["disk", "memory"],
        default="disk",
        help="which tier to collect (default: disk; the remote tier is "
        "collected on its serving host)",
    )
    cache_gc_p.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be evicted without deleting anything",
    )
    cache_stats_p = cache_sub.add_parser(
        "stats", help="per-tier occupancy and probe tallies"
    )
    cache_stats_p.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/beegfs-repro)",
    )
    cache_stats_p.add_argument(
        "--remote",
        default=None,
        metavar="HOST:PORT",
        help="include a remote tier served by this 'repro serve' instance",
    )

    serve_p = sub.add_parser(
        "serve", help="run the networked allocation orchestrator server"
    )
    serve_p.add_argument(
        "--state-dir",
        type=Path,
        required=True,
        metavar="DIR",
        help="durable server state: job WAL, session WAL, specs, result cache",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 binds an ephemeral port; the bound port is printed)",
    )
    serve_p.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="job worker threads (execution itself is serialized; workers "
        "pipeline journal writes, cache replays and client waits)",
    )
    serve_p.add_argument(
        "--max-pending",
        type=int,
        default=64,
        metavar="N",
        help="admission window: jobs admitted but not finished (default: 64)",
    )
    serve_p.add_argument(
        "--io-timeout-s",
        type=float,
        default=10.0,
        metavar="S",
        help="per-recv socket deadline; slower clients are evicted",
    )
    serve_p.add_argument(
        "--session-lease-s",
        type=float,
        default=30.0,
        metavar="S",
        help="client session lease; silent clients are evicted after this",
    )
    serve_p.add_argument(
        "--telemetry",
        type=Path,
        default=None,
        metavar="PATH",
        help="append the server's structured JSONL event stream",
    )
    serve_p.add_argument(
        "--trace",
        action="store_true",
        help="stamp server events with deterministic distributed-trace ids",
    )
    serve_p.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="P",
        help="serve Prometheus text exposition on GET /metrics (0 binds an "
        "ephemeral port; the bound port is printed)",
    )
    serve_p.add_argument(
        "--slo-queue-wait-p99-s",
        type=float,
        default=2.0,
        metavar="S",
        help="SLO target: admitted jobs wait at most this at p99 (default: 2.0)",
    )
    serve_p.add_argument(
        "--slo-max-shed-rate",
        type=float,
        default=0.05,
        metavar="FRAC",
        help="SLO budget: fraction of submissions that may shed (default: 0.05)",
    )
    serve_p.add_argument(
        "--slo-min-hit-ratio",
        type=float,
        default=0.0,
        metavar="FRAC",
        help="SLO floor on the cache hit ratio; 0 disables it (default: 0)",
    )
    serve_p.add_argument(
        "--slo-window",
        type=int,
        default=128,
        metavar="N",
        help="sliding-window size per SLO signal (default: 128)",
    )
    serve_p.add_argument(
        "--slo-every",
        type=int,
        default=8,
        metavar="N",
        help="emit a server.slo event every N completions (default: 8)",
    )

    submit_p = sub.add_parser(
        "submit", help="run one experiment's campaign against a remote server"
    )
    submit_p.add_argument("exp_id", help="experiment id (see 'list')")
    submit_p.add_argument(
        "--remote",
        required=True,
        metavar="HOST:PORT",
        help="address of a running 'serve' instance",
    )
    submit_p.add_argument(
        "--reps", type=int, default=None, help="repetitions (default: paper's)"
    )
    submit_p.add_argument("--seed", type=int, default=0)
    submit_p.add_argument(
        "--out", type=Path, default=None, help="directory for CSV records"
    )
    submit_p.add_argument(
        "--priority",
        choices=["interactive", "batch"],
        default="batch",
        help="admission priority class (default: batch)",
    )
    submit_p.add_argument(
        "--deadline-s",
        type=float,
        default=None,
        metavar="S",
        help="overall per-run deadline (submit + wait + retries)",
    )
    submit_p.add_argument(
        "--no-fallback",
        action="store_true",
        help="fail instead of degrading to local execution when the server "
        "stays unreachable",
    )
    submit_p.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    submit_p.add_argument(
        "--telemetry",
        type=Path,
        default=None,
        metavar="PATH",
        help="append the client's structured JSONL event stream",
    )
    submit_p.add_argument(
        "--trace",
        action="store_true",
        help="stamp client events with deterministic distributed-trace ids "
        "(pair with the server's --trace for end-to-end traces)",
    )

    trace_p = sub.add_parser(
        "trace", help="reconstruct distributed span trees from event streams"
    )
    trace_p.add_argument(
        "paths",
        type=Path,
        nargs="+",
        help="traced JSONL streams (client, server, workers); a directory "
        "expands to its *.jsonl files",
    )
    trace_p.add_argument(
        "--export",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the merged Chrome-trace/Perfetto JSON here",
    )
    trace_p.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless every admitted job has a complete span tree",
    )
    trace_p.add_argument(
        "--job",
        default=None,
        metavar="FP",
        help="only jobs whose fingerprint or trace id starts with this",
    )
    trace_p.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="render at most N jobs in the timeline",
    )

    top_p = sub.add_parser("top", help="live ops view of a running server")
    top_p.add_argument(
        "--remote",
        required=True,
        metavar="HOST:PORT",
        help="address of a running 'serve' instance",
    )
    top_p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="refresh period in seconds (default: 2.0)",
    )
    top_p.add_argument(
        "--iterations",
        type=int,
        default=0,
        metavar="N",
        help="stop after N refreshes (0 = run until interrupted)",
    )

    stats_p = sub.add_parser("stats", help="campaign dashboard from a telemetry stream")
    stats_p.add_argument("path", type=Path, help="JSONL stream written by 'run --telemetry'")
    stats_p.add_argument(
        "--no-timelines", action="store_true", help="omit the per-server timeline panel"
    )

    tail_p = sub.add_parser("tail", help="pretty-print a telemetry event stream")
    tail_p.add_argument("path", type=Path, help="JSONL stream written by 'run --telemetry'")
    tail_p.add_argument(
        "--follow", action="store_true", help="keep reading as the campaign appends"
    )
    tail_p.add_argument(
        "--validate",
        action="store_true",
        help="check every line against the JSONL schema; exit 1 on any problem",
    )
    tail_p.add_argument("--quiet", action="store_true", help="suppress the event lines")
    return parser


def _cmd_list() -> int:
    print(f"{'id':10s} {'runs':>6s} {'paper ref':42s} title")
    for info in list_experiments():
        size = info.sweep_size()
        runs = "-" if size is None else str(size)
        print(f"{info.exp_id:10s} {runs:>6s} {info.paper_ref:42s} {info.title}")
    return 0


def _checkpoint_path_for(base: Path | None, exp_id: str, multiple: bool) -> Path | None:
    """Per-experiment checkpoint file when one invocation runs several."""
    if base is None or not multiple:
        return base
    suffix = base.suffix or ".json"
    return base.with_name(f"{base.stem}.{exp_id}{suffix}")


def _cmd_run(args: argparse.Namespace) -> int:
    from . import service
    from .errors import CampaignInterrupted
    from .experiments.common import protocol_options
    from .orchestrator.interrupts import EXIT_INTERRUPTED, handle_signals
    from .telemetry.bus import session as telemetry_session
    from .telemetry.profiling import profiling

    if args.resume and args.checkpoint is None:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 2
    ids = [i.exp_id for i in list_experiments()] if args.exp_id == "all" else [args.exp_id]
    progress = None if args.quiet else lambda msg: print(f"  .. {msg}", file=sys.stderr)
    quarantined = 0
    interrupted: CampaignInterrupted | None = None
    interrupted_exp = ids[0]
    stats_before = service.cache_stats()
    with ExitStack() as stack:
        # SIGINT/SIGTERM drain in-flight runs, checkpoint, and surface as
        # CampaignInterrupted instead of a traceback (second hit: raw exit).
        stack.enter_context(handle_signals())
        if args.telemetry is not None:
            stack.enter_context(
                telemetry_session(
                    jsonl=args.telemetry,
                    level=args.telemetry_level,
                    trace=args.trace,
                )
            )
        elif args.trace:
            print(
                "note: --trace has no effect without --telemetry (there is no "
                "stream to stamp)",
                file=sys.stderr,
            )
        profiler = stack.enter_context(profiling(args.profile)) if args.profile else None
        stack.enter_context(
            service.cache_config(
                cache=False if args.no_cache else None,
                cache_dir=args.cache_dir,
                cache_remote=args.cache_remote,
            )
        )
        try:
            for exp_id in ids:
                interrupted_exp = exp_id
                info = get_experiment(exp_id)
                reps = args.reps if args.reps is not None else info.default_repetitions
                kwargs = {"repetitions": reps, "seed": args.seed}
                print(f"== {info.exp_id}: {info.title} ({info.paper_ref}, {reps} reps) ==")
                with protocol_options(
                    on_error=args.on_error,
                    checkpoint=_checkpoint_path_for(args.checkpoint, exp_id, len(ids) > 1),
                    resume=args.resume,
                    validation=args.verify if args.verify != "off" else None,
                    workers=args.workers if args.workers > 1 else None,
                    cache=False if args.no_cache else None,
                    cache_dir=args.cache_dir,
                    cache_remote=args.cache_remote,
                ):
                    output = info.run(progress=progress, **kwargs)
                print(output.figure)
                if output.notes:
                    print(f"\nnotes: {output.notes}")
                if args.out is not None and len(output.records) > 0:
                    path = args.out / f"{exp_id}.csv"
                    output.records.write_csv(path)
                    print(f"records written to {path}")
                for failure in output.records.failures:
                    quarantined += 1
                    print(
                        f"quarantined: {failure.spec_key} rep {failure.rep}: "
                        f"{failure.error_type}: {failure.message}",
                        file=sys.stderr,
                    )
                print()
        except CampaignInterrupted as exc:
            interrupted = exc
        if profiler is not None:
            print(profiler.render(), file=sys.stderr)
        if args.telemetry is not None:
            print(f"telemetry stream appended to {args.telemetry}", file=sys.stderr)
    delta = {
        key: value - stats_before.get(key, 0)
        for key, value in service.cache_stats().items()
    }
    line = (
        "cache: {hit} hit(s), {miss} miss(es), {bypassed} bypassed, "
        "{uncached} uncached".format(**delta)
    )
    if delta.get("degraded") or delta.get("error"):
        line += ", {degraded} degraded, {error} cache error(s)".format(**delta)
    print(line, file=sys.stderr)
    if interrupted is not None:
        if interrupted.checkpoint is not None:
            print(
                f"interrupted by {interrupted.signal}; progress checkpointed. "
                f"resume with: beegfs-repro run {interrupted_exp} "
                f"--checkpoint {interrupted.checkpoint} --resume",
                file=sys.stderr,
            )
        else:
            print(
                f"interrupted by {interrupted.signal}; no --checkpoint was "
                "configured, so progress was not saved",
                file=sys.stderr,
            )
        return EXIT_INTERRUPTED
    if quarantined:
        print(
            f"{quarantined} run(s) quarantined; re-run with --resume to retry them",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    # Imported lazily: the chaos harness pulls in the runners.
    from .orchestrator.chaos import run_chaos

    progress = None if args.quiet else lambda msg: print(f"  .. {msg}", file=sys.stderr)
    report = run_chaos(
        workers=args.workers, seed=args.seed, only=args.only, progress=progress
    )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    if args.action == "stats":
        return _cmd_cache_stats(args)
    return _cmd_cache_gc(args)


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    from .service import ResultCache, get_service
    from .units import parse_size

    cache = ResultCache(args.cache_dir)
    where = cache.root if args.tier == "disk" else "the hot tier"
    if args.tier == "disk":
        summary = cache.gc(int(parse_size(args.max_bytes)), dry_run=args.dry_run)
    else:
        # A fresh CLI process has an empty hot tier; this path exists
        # for embedders and symmetry, and reports honestly.
        tiers = get_service()._tiered(args.cache_dir)
        summary = tiers.gc(
            int(parse_size(args.max_bytes)), tier="memory", dry_run=args.dry_run
        )
    if args.dry_run:
        print(
            f"cache gc ({args.tier}) in {where} (dry run): "
            f"{summary['scanned']} entr(y/ies) scanned, "
            f"{summary['evicted']} would be evicted "
            f"({summary['freed_bytes']} bytes would be freed), "
            f"{summary['remaining_bytes']} bytes would remain"
        )
    else:
        print(
            f"cache gc ({args.tier}) in {where}: "
            f"{summary['scanned']} entr(y/ies) scanned, "
            f"{summary['evicted']} evicted ({summary['freed_bytes']} bytes freed), "
            f"{summary['remaining_bytes']} bytes remain"
        )
    return 0


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    from .service import get_service

    tiers = get_service()._tiered(args.cache_dir, args.remote)
    for tier, info in tiers.stats().items():
        hits = int(info.get("hit", 0))
        probes = hits + int(info.get("miss", 0))
        ratio = f"{hits / probes:.2f}" if probes else "n/a"
        keys = (
            "entries",
            "bytes",
            "corrupt",
            "root",
            "address",
            "pending_puts",
            "puts",
            "put_errors",
            "hit",
            "miss",
            "error",
            "degraded",
        )
        detail = ", ".join(f"{k}={info[k]}" for k in keys if k in info)
        print(f"{tier}: {detail}, hit_ratio={ratio}")
    if args.remote:
        # Best effort: ask the serving host for its side of the tally.
        from .cache.remote import RemoteTier
        from .server.protocol import message

        tier = RemoteTier.from_address(args.remote, timeout_s=3.0)
        try:
            reply = tier._roundtrip(message("stats"))
            server_side = reply.get("remote_cache") or {}
            detail = ", ".join(f"{k}={v}" for k, v in sorted(server_side.items()))
            print(f"remote (server side): {detail or 'no tally'}")
        except OSError as exc:
            print(f"remote (server side): unreachable ({exc})", file=sys.stderr)
        finally:
            tier.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .server import OrchestratorServer, ServerConfig
    from .telemetry.bus import session as telemetry_session

    config = ServerConfig(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_pending=args.max_pending,
        io_timeout_s=args.io_timeout_s,
        session_lease_s=args.session_lease_s,
        metrics_port=args.metrics_port,
        slo_queue_wait_p99_s=args.slo_queue_wait_p99_s,
        slo_max_shed_rate=args.slo_max_shed_rate,
        slo_min_hit_ratio=args.slo_min_hit_ratio,
        slo_window=args.slo_window,
        slo_every=args.slo_every,
    )
    with ExitStack() as stack:
        if args.telemetry is not None:
            stack.enter_context(
                telemetry_session(jsonl=args.telemetry, trace=args.trace)
            )
        server = OrchestratorServer(config).start()

        def _drain(signum: int, _frame: object) -> None:
            server.request_drain(signal.Signals(signum).name)

        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)
        acceptor = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.1}, daemon=True
        )
        acceptor.start()
        recovered = len(server.queue.entries)
        metrics_note = (
            f", metrics on :{server.metrics_port}"
            if server.metrics_port is not None
            else ""
        )
        print(
            f"serving on {config.host}:{server.port} "
            f"(state: {config.state_dir}, {recovered} journaled job(s), "
            f"{server.sessions.resumed} resumed session(s){metrics_note})",
            flush=True,
        )
        try:
            # Signal handlers run on this thread between polls; the
            # drained event fires once the in-flight tail finishes.
            while not server.wait_drained(timeout=0.5):
                pass
        finally:
            server.close()
            acceptor.join(timeout=5.0)
        print("drained; all leased jobs finished, state checkpointed", file=sys.stderr)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .client import remote_run_specs
    from .errors import RemoteError
    from .telemetry.bus import session as telemetry_session

    host, _, port_text = args.remote.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        print(f"error: --remote must be HOST:PORT, got {args.remote!r}", file=sys.stderr)
        return 2
    info = get_experiment(args.exp_id)
    if info.specs is None:
        raise RemoteError(
            f"experiment {args.exp_id!r} has no declarative sweep and cannot "
            "run remotely (its runs need a custom apps builder)"
        )
    specs = info.specs()
    reps = args.reps if args.reps is not None else info.default_repetitions
    progress = None if args.quiet else lambda msg: print(f"  .. {msg}", file=sys.stderr)
    print(
        f"== {info.exp_id}: {info.title} ({len(specs)} spec(s) x {reps} reps "
        f"via {host or '127.0.0.1'}:{port}) =="
    )
    with ExitStack() as stack:
        if args.telemetry is not None:
            stack.enter_context(
                telemetry_session(jsonl=args.telemetry, trace=args.trace)
            )
        elif args.trace:
            print(
                "note: --trace has no effect without --telemetry (there is no "
                "stream to stamp)",
                file=sys.stderr,
            )
        store = remote_run_specs(
            specs,
            host or "127.0.0.1",
            port,
            repetitions=reps,
            seed=args.seed,
            progress=progress,
            deadline_s=args.deadline_s,
            fallback=not args.no_fallback,
            priority=args.priority,
        )
    if args.out is not None and len(store) > 0:
        path = args.out / f"{args.exp_id}.csv"
        store.write_csv(path)
        print(f"records written to {path}")
    print(f"{len(store)} run(s) recorded", file=sys.stderr)
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .verify.suite import run_suite

    progress = None if args.quiet else lambda msg: print(f"  .. {msg}", file=sys.stderr)
    report = run_suite(
        suite=args.suite,
        level=args.level,
        reps=args.reps,
        seed=args.seed,
        golden_path=args.golden,
        update_golden=args.update_golden,
        inject=args.inject,
        progress=progress,
    )
    print("\n".join(report.lines()))
    code = report.exit_code()
    if args.inject is not None:
        meaning = "injection detected" if code == 1 else "INJECTION MISSED"
        print(f"self-test: {meaning} (exit {code})", file=sys.stderr)
    return code


def _cmd_calibration() -> int:
    for name in SCENARIOS:
        calib = scenario_by_name(name)
        print(f"== {calib.name}: {calib.description} ==")
        print(f"  client/node (8 ppn): {calib.client.node_capacity(8):8.1f} MiB/s")
        print(f"  server ingest (sat): {calib.per_server_network_mib_s:8.1f} MiB/s")
        print(f"  pool S(1)..S(4):     "
              + ", ".join(f"{calib.pool.aggregate_mib_s(m):.0f}" for m in range(1, 5)))
        print(f"  SAN ceiling:         {calib.san_mib_s:8.1f} MiB/s")
        print(f"  request RTT:         {calib.request_rtt_s * 1e6:8.0f} us")
        print(f"  metadata overhead:   {calib.metadata_overhead_s:8.2f} s")
        print("  anchors (paper vs model):")
        for check in anchor_report(calib):
            print(
                f"    {check.name}: paper {check.paper_value:.0f}, "
                f"model {check.model_value:.0f} ({check.relative_error:+.1%})"
            )
        print()
    return 0


def _cmd_placements(args: argparse.Namespace) -> int:
    calib = scenario_by_name("scenario1")
    deployment = calib.deployment(stripe_count=args.stripe_count, keep_data=False)
    print(f"(min, max) distributions for stripe count {args.stripe_count}:")
    for chooser in ("roundrobin", "random", "balanced", "capacity"):
        dist = placement_distribution(
            deployment, args.stripe_count, chooser=chooser, samples=args.samples
        )
        probs = ", ".join(f"({lo},{hi}): {p * 100:.0f}%" for (lo, hi), p in dist.probabilities.items())
        print(f"  {chooser:10s} {probs}")
    exact = random_placement_probabilities(args.stripe_count)
    probs = ", ".join(f"({lo},{hi}): {p * 100:.1f}%" for (lo, hi), p in exact.items())
    print(f"  random (exact hypergeometric): {probs}")
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    from .analysis.advisor import advise

    if args.system is not None:
        from .config import load_system

        calib, _ = load_system(args.system)
    else:
        calib = scenario_by_name(args.scenario)
    print(f"advising for {calib.name} ({calib.description}), "
          f"{args.nodes} nodes x {args.ppn} ppn:\n")
    print(advise(calib, num_nodes=args.nodes, ppn=args.ppn).to_table())
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .methodology.plan import ExperimentSpec
    from .scenario.compile import compile_scenario
    from .service import get_service

    calib = scenario_by_name(args.scenario)
    factors = {
        "stripe_count": args.stripe_count,
        "num_nodes": args.nodes,
        "ppn": args.ppn,
    }
    if args.chooser:
        factors["chooser"] = args.chooser
    spec = compile_scenario(
        ExperimentSpec("explain", args.scenario, factors),
        max_nodes=max(args.nodes, 2),
    )
    ctx = get_service().context(spec)
    result, report = ctx.engine.explain(ctx.make_apps(), rep=args.rep)
    run = result.single
    print(
        f"{calib.name}: {args.nodes} nodes x {args.ppn} ppn, stripe "
        f"{args.stripe_count}, placement {run.placement_min_max}: "
        f"{run.bandwidth_mib_s:.0f} MiB/s\n"
    )
    print(report.to_text())
    by_kind = ", ".join(f"{k}: {v * 100:.0f}%" for k, v in report.by_kind().items() if v > 0.01)
    print(f"\nby class: {by_kind}")
    return 0


def _cmd_system(args: argparse.Namespace) -> int:
    from .config import save_system

    calib = scenario_by_name(args.scenario)
    save_system(args.path, calib, calib.deployment())
    print(f"system description for {calib.name} written to {args.path}")
    print("edit the JSON to describe your own cluster, then e.g.:")
    print(f"  beegfs-repro recommend --system {args.path}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import collect, compare, load_report, render, write_report

    report = collect(quick=args.quick, workers=args.workers)
    print(render(report))
    path = write_report(report, args.out)
    print(f"\nreport written to {path}", file=sys.stderr)
    if args.baseline is None:
        return 0
    regressions, lines = compare(report, load_report(args.baseline), args.max_regression)
    print()
    print("\n".join(lines))
    if regressions:
        for problem in regressions:
            print(f"regression: {problem}", file=sys.stderr)
        return 1
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .telemetry.report import CampaignReport

    report = CampaignReport.from_jsonl(args.path)
    print(report.render(timelines=not args.no_timelines))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .telemetry.traceview import (
        check_traces,
        chrome_trace,
        collect_traces,
        load_streams,
        render_timeline,
    )

    events = load_streams(args.paths)
    traces = collect_traces(events)
    if args.job:
        needle = args.job
        traces = [
            t for t in traces if t.job.startswith(needle) or t.trace_id.startswith(needle)
        ]
    if args.limit is not None and args.limit >= 0:
        traces = traces[: args.limit]
    # Export before printing: a truncated stdout (| head) must not
    # cost the caller the artifact they asked for.
    if args.export is not None:
        args.export.parent.mkdir(parents=True, exist_ok=True)
        args.export.write_text(json.dumps(chrome_trace(traces), indent=1) + "\n")
        print(f"chrome trace written to {args.export}", file=sys.stderr)
    print(render_timeline(traces))
    if args.check:
        problems = check_traces(traces)
        if problems:
            for problem in problems:
                print(f"incomplete: {problem}", file=sys.stderr)
            return 1
        print(
            f"all {sum(1 for t in traces if t.admitted)} admitted job(s) have "
            "complete span trees",
            file=sys.stderr,
        )
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from .client import RemoteClient
    from .server.ops import render_top

    host, _, port_text = args.remote.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        print(f"error: --remote must be HOST:PORT, got {args.remote!r}", file=sys.stderr)
        return 2
    host = host or "127.0.0.1"
    iteration = 0
    try:
        with RemoteClient(host, port, fallback=False) as client:
            while True:
                iteration += 1
                frame = client.ping()
                stats = {k: v for k, v in frame.items() if k not in ("v", "type")}
                print(render_top(stats, title=f"{host}:{port}"), flush=True)
                if args.iterations and iteration >= args.iterations:
                    break
                time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    import json
    import time

    from .errors import TelemetryError
    from .telemetry.bus import format_event
    from .telemetry.events import validate_event

    if not args.path.exists() and not args.follow:
        raise TelemetryError(f"no such telemetry stream: {args.path}")
    problems = 0
    lineno = 0

    def handle(line: str) -> None:
        nonlocal problems, lineno
        lineno += 1
        text = line.strip()
        if not text:
            return
        try:
            event = json.loads(text)
        except json.JSONDecodeError as exc:
            problems += 1
            print(f"line {lineno}: not valid JSON ({exc})", file=sys.stderr)
            return
        if args.validate:
            for problem in validate_event(event):
                problems += 1
                print(f"line {lineno}: {problem}", file=sys.stderr)
        if not args.quiet:
            print(format_event(event))

    try:
        while args.follow and not args.path.exists():  # pragma: no cover - interactive
            time.sleep(0.2)
        with open(args.path, "r") as stream:
            while True:
                pos = stream.tell()
                line = stream.readline()
                if line.endswith("\n"):
                    handle(line)
                elif args.follow:
                    # Partial or absent final line: the writer is mid-append —
                    # rewind so the next poll re-reads the whole line.
                    stream.seek(pos)
                    time.sleep(0.2)
                else:
                    if line:
                        handle(line)
                    break
    except FileNotFoundError as exc:
        raise TelemetryError(f"no such telemetry stream: {args.path}") from exc
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    if args.validate:
        if problems:
            print(f"{problems} schema problem(s) in {args.path}", file=sys.stderr)
            return 1
        print(f"{lineno} line(s) schema-valid in {args.path}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        # One structured line instead of a traceback: the error family is
        # expected operational failure, not a bug in the tool.
        print(f"error[{type(exc).__name__}]: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream closed early (`repro trace ... | head`): not an
        # error.  Point stdout at devnull so the interpreter's shutdown
        # flush does not raise a second time.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "calibration":
        return _cmd_calibration()
    if args.command == "placements":
        return _cmd_placements(args)
    if args.command == "recommend":
        return _cmd_recommend(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "system":
        return _cmd_system(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "tail":
        return _cmd_tail(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
