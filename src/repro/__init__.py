"""repro — a full reproduction of Boito, Pallez & Teylo (CLUSTER 2022),
"The role of storage target allocation in applications' I/O performance
with BeeGFS".

The package contains everything the study needs, implemented from
scratch: a functional in-memory BeeGFS (striping, target choosers,
per-directory patterns, metadata/storage services), a calibrated
performance model of the PlaFRIM platform (fluid max-min network
simulation plus a request-level DES cross-check), the IOR workload
model, the paper's randomized-block experimental protocol, and one
experiment module per figure.

Quick start::

    from repro import get_experiment

    out = get_experiment("fig6").run(repetitions=20, seed=1)
    print(out.figure)

See README.md for the architecture tour and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from .calibration import Calibration, scenario1, scenario2, scenario_by_name
from .beegfs import BeeGFS, BeeGFSClient, BeeGFSDeploymentSpec, StripePattern, plafrim_deployment
from .engine import DESEngine, EngineOptions, FluidEngine, RunResult
from .experiments import ExperimentOutput, get_experiment, list_experiments
from .methodology import ProtocolConfig, RecordStore
from .topology import Topology, plafrim_ethernet, plafrim_omnipath
from .workload import Application, IORConfig, concurrent_applications, single_application

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Calibration",
    "scenario1",
    "scenario2",
    "scenario_by_name",
    "BeeGFS",
    "BeeGFSClient",
    "BeeGFSDeploymentSpec",
    "StripePattern",
    "plafrim_deployment",
    "FluidEngine",
    "DESEngine",
    "EngineOptions",
    "RunResult",
    "ExperimentOutput",
    "get_experiment",
    "list_experiments",
    "ProtocolConfig",
    "RecordStore",
    "Topology",
    "plafrim_ethernet",
    "plafrim_omnipath",
    "Application",
    "IORConfig",
    "single_application",
    "concurrent_applications",
]
