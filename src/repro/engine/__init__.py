"""Execution engines: turning workloads into timed runs.

Two engines share the same inputs (a platform topology, a BeeGFS
instance, a calibration, a set of applications):

* :class:`~repro.engine.fluid_runner.FluidEngine` — the fast fluid
  model used by all experiments: per-(node, target) flows, max-min
  fair rates, piecewise integration.  Sub-millisecond per run.
* :class:`~repro.engine.des_runner.DESEngine` — a request-level
  processor-sharing discrete-event simulation: every transfer of every
  process is an individual flow released only when the process's
  previous transfer completed (blocking POSIX semantics).  Orders of
  magnitude slower; used to cross-validate the fluid engine on small
  configurations.
"""

from .result import ApplicationResult, RunResult
from .fluid_runner import EngineOptions, FluidEngine
from .des_runner import DESEngine

__all__ = [
    "ApplicationResult",
    "RunResult",
    "EngineOptions",
    "FluidEngine",
    "DESEngine",
]
