"""The fluid engine: applications -> flows -> timed run results.

For every application the engine creates its files through the real
BeeGFS metadata path (so the directory's stripe configuration and the
deployment's chooser decide the targets, exactly as in production),
derives one fluid flow per (compute node, storage target) with the
exact byte volume striping sends that way, wires up the calibrated
capacity providers, and integrates the fluid simulation.

Resource chain of a flow from node ``n`` to target ``t`` on host ``s``:

    client:n -> link(n, switch) -> fabric -> link(switch, s)
      -> ingest:s -> backplane:s -> ost:t

A run produces one :class:`~repro.engine.result.RunResult`; experiment
protocols call :meth:`FluidEngine.run` once per repetition with a fresh
``rep`` index (fresh file system, fresh chooser cursor, fresh noise).
"""

from __future__ import annotations

from ..errors import SimulationError
from ..netsim.fluid import FluidResult, FluidSimulation
from ..telemetry.profiling import get_profiler
from ..workload.application import Application
from .base import EngineBase, EngineOptions, PreparedRun, _metadata_overheads
from .result import ApplicationResult, RunResult

__all__ = ["EngineOptions", "FluidEngine"]


class FluidEngine(EngineBase):
    """The production engine: fluid integration of the prepared flows."""

    def run(self, apps: list[Application] | tuple[Application, ...], rep: int = 0) -> RunResult:
        """Execute one repetition of the given concurrent applications."""
        prepared = self.prepare(apps, rep)
        sim = FluidSimulation(
            noise=prepared.noise,
            latency=prepared.latency,
            cap_iterations=self.options.cap_iterations,
            retry=self.options.effective_retry(),
            checker=self._make_checker(rep),
        )
        for rid, provider in prepared.providers.items():
            sim.add_resource(rid, provider)
        sim.add_flows(prepared.flows)

        observe = (
            tuple(f"ingest:{h.host}" for h in prepared.hosts)
            if self.options.observe_servers
            else ()
        )
        with get_profiler().span("fluid.run"):
            fluid_result = sim.run(
                rng=prepared.seeds.rng("noise"),
                observe=observe,
                breakpoints=self._breakpoints(),
            )
        return self._collect(prepared, fluid_result)

    def _breakpoints(self) -> tuple[float, ...]:
        """Fault transition instants become extra segment boundaries."""
        if not self.options.faults_enabled:
            return ()
        schedule = self.options.fault_schedule
        if schedule is None:  # pragma: no cover - faults_enabled implies a schedule
            raise SimulationError("faults enabled without a fault schedule")
        return schedule.boundaries()

    def explain(self, apps: list[Application] | tuple[Application, ...], rep: int = 0):
        """Run one repetition with constraint tracking.

        Returns ``(RunResult, BottleneckReport)`` — the report says for
        what share of the run each resource was the binding constraint
        (the question behind the paper's Lessons 1-6).
        """
        from ..analysis.bottleneck import attribute_bottlenecks

        prepared = self.prepare(apps, rep)
        sim = FluidSimulation(
            noise=prepared.noise,
            latency=prepared.latency,
            cap_iterations=self.options.cap_iterations,
            retry=self.options.effective_retry(),
            checker=self._make_checker(rep),
        )
        for rid, provider in prepared.providers.items():
            sim.add_resource(rid, provider)
        sim.add_flows(prepared.flows)
        fluid_result = sim.run(
            rng=prepared.seeds.rng("noise"), detail=True, breakpoints=self._breakpoints()
        )
        report = attribute_bottlenecks(fluid_result.segment_details)
        return self._collect(prepared, fluid_result), report

    def _collect(self, prepared: PreparedRun, fluid_result: FluidResult) -> RunResult:
        servers = [h.host for h in prepared.hosts]
        meta_draw = _metadata_overheads(self.calibration, self.options, prepared)
        app_results = []
        for app in prepared.apps:
            meta = meta_draw(app.app_id)
            stats = fluid_result.stats_by_tag("app", app.app_id)
            start, end = fluid_result.span(stats)
            targets = prepared.app_targets[app.app_id]
            per_server = {s: 0 for s in servers}
            for tid in targets:
                per_server[prepared.target_host[tid]] += 1
            app_results.append(
                ApplicationResult(
                    app_id=app.app_id,
                    start_time=start,
                    end_time=end + meta,
                    volume_bytes=fluid_result.total_delivered(stats),
                    num_nodes=app.num_nodes,
                    ppn=app.ppn,
                    stripe_count=prepared.app_stripe[app.app_id],
                    targets=targets,
                    placement=tuple(sorted(per_server.values())),
                )
            )
        return RunResult(
            apps=tuple(app_results),
            segments=fluid_result.segments,
            resource_series=fluid_result.resource_series,
            fault_events=tuple(e.to_dict() for e in fluid_result.trace),
            retries=sum(s.retries for s in fluid_result.stats),
            abandoned_flows=sum(1 for s in fluid_result.stats if s.abandoned),
        )
