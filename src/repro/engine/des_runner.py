"""Request-level discrete-event engine (processor sharing).

Every process issues its transfers one at a time, exactly as IOR's
blocking POSIX writes do: a 1 MiB transfer splits into its chunk
extents (with 512 KiB chunks, two extents on two different targets),
the extents progress concurrently under max-min fair processor sharing
of the calibrated resources, and the process issues its next transfer
one request round-trip after the previous one completed.

This engine makes no fluid-scale approximations — no aggregate flows,
no latency *model* (latency is an explicit gap) — so it serves as the
ground truth against which the fluid engine is validated
(``tests/test_engine/test_cross_validation.py``).  The price is cost:
event count scales with the number of transfers, so use it with small
volumes (a guard raises beyond ``max_requests``).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING

import numpy as np

from bisect import bisect_right

from ..errors import ExperimentError, SimulationError
from ..telemetry.bus import get_bus
from ..telemetry.profiling import get_profiler

if TYPE_CHECKING:  # pragma: no cover
    from ..verify.invariants import RuntimeChecker
from ..netsim.fluid import FlowTraceEvent, ResourceContext
from ..netsim.maxmin import max_min_rates
from ..units import MiB
from ..workload.application import Application
from .base import EngineBase, PreparedRun, _metadata_overheads
from .result import ApplicationResult, RunResult

__all__ = ["DESEngine"]

_TIME_EPS = 1e-12
_BYTES_EPS = 1e-3
_RATE_EPS = 1e-9 * float(MiB)  # bytes/s below which a request is stalled


@dataclass
class _Extent:
    """One in-flight piece of a transfer on one target."""

    remaining: float
    resource_idxs: tuple[int, ...]
    target: int
    proc: "_Proc"
    # Fault-injection state: stall clock and timeout count.
    stalled_since: float | None = None
    attempts: int = 0

    @property
    def request_id(self) -> str:
        return f"{self.proc.app_id}:r{self.proc.rank}:t{self.target}"


@dataclass
class _Proc:
    """One application process: its transfer stream and its state."""

    app_id: str
    rank: int
    transfers: "list[list[tuple[int, float]]]"  # per transfer: [(target, bytes)] per chunk
    next_transfer: int = 0
    outstanding: int = 0
    finished_at: float | None = None

    @property
    def done(self) -> bool:
        return self.next_transfer >= len(self.transfers) and self.outstanding == 0


class DESEngine(EngineBase):
    """Request-level cross-validation engine."""

    max_requests = 120_000
    # Per-process start skew; see the arrival-heap comment in _integrate.
    startup_jitter_s = 0.002

    def run(self, apps: list[Application] | tuple[Application, ...], rep: int = 0) -> RunResult:
        prepared = self.prepare(apps, rep)
        procs = self._build_procs(prepared)
        total_transfers = sum(len(p.transfers) for p in procs)
        if total_transfers > self.max_requests:
            raise ExperimentError(
                f"DES run would issue {total_transfers} transfers "
                f"(> {self.max_requests}); reduce the data volume"
            )
        return self._integrate(prepared, procs, checker=self._make_checker(rep))

    # -- setup -----------------------------------------------------------------

    def _build_procs(self, prepared: PreparedRun) -> list[_Proc]:
        procs: list[_Proc] = []
        for app in prepared.apps:
            inodes = prepared.inodes[app.app_id]
            for rank in range(app.nprocs):
                inode = inodes[None] if None in inodes else inodes[rank]
                transfers: list[list[tuple[int, float]]] = []
                for tr in app.config.transfers(rank, app.nprocs):
                    # One concurrent chunk request per crossed chunk —
                    # BeeGFS issues chunk requests individually, so two
                    # requests to the *same* target still count twice
                    # toward its queue depth.
                    transfers.append(
                        [
                            (ext.target_id, float(ext.length))
                            for ext in inode.pattern.extents(tr.offset, tr.length)
                        ]
                    )
                procs.append(_Proc(app_id=app.app_id, rank=rank, transfers=transfers))
        return procs

    # -- the event loop ----------------------------------------------------------

    def _integrate(
        self,
        prepared: PreparedRun,
        procs: list[_Proc],
        checker: "RuntimeChecker | None" = None,
    ) -> RunResult:
        trace: list[FlowTraceEvent] = []
        try:
            with get_profiler().span("des.run"):
                return self._integrate_inner(prepared, procs, checker, trace)
        except Exception as exc:
            # No RunResult exists for a failed run: the retry/abandon
            # history rides on the exception so ProtocolRunner can
            # persist it into FailedRunRecord (see methodology.records).
            exc.flow_trace = tuple(e.to_dict() for e in trace)
            exc.flow_retries = sum(1 for e in trace if e.action == "retry")
            raise

    def _integrate_inner(
        self,
        prepared: PreparedRun,
        procs: list[_Proc],
        checker: "RuntimeChecker | None",
        trace: list[FlowTraceEvent],
    ) -> RunResult:
        bus = get_bus()
        prof = get_profiler()
        profiled = prof.enabled
        rids = list(prepared.providers)
        rid_index = {rid: i for i, rid in enumerate(rids)}
        providers = [prepared.providers[rid] for rid in rids]
        route_idx = {
            key: tuple(rid_index[r] for r in route) for key, route in prepared.routes.items()
        }
        node_of_rank = {
            (app.app_id, rank): app.node_of_rank(rank)
            for app in prepared.apps
            for rank in range(app.nprocs)
        }
        if checker is not None:
            checker.bind_resources(rids)
            for proc in procs:
                node = node_of_rank[(proc.app_id, proc.rank)]
                for transfer in proc.transfers:
                    for target, nbytes in transfer:
                        checker.expect_bytes(route_idx[(node, target)], nbytes)
        app_start = {app.app_id: app.start_time for app in prepared.apps}
        rtt = self.calibration.request_rtt_s

        noise = prepared.noise
        noise_rng = prepared.seeds.rng("noise")
        epoch_len = noise.epoch_length_s
        has_epochs = math.isfinite(epoch_len)
        multipliers = np.ones(len(rids))
        current_epoch = -1

        def resample(epoch: int) -> None:
            nonlocal current_epoch
            if epoch == current_epoch:
                return
            current_epoch = epoch
            for i, rid in enumerate(rids):
                multipliers[i] = noise.multiplier(rid, epoch, noise_rng)

        def issue(proc: _Proc, now: float, active: list[_Extent]) -> None:
            idx = proc.next_transfer
            proc.next_transfer += 1
            node = node_of_rank[(proc.app_id, proc.rank)]
            for target, nbytes in proc.transfers[idx]:
                active.append(
                    _Extent(
                        remaining=float(nbytes),
                        resource_idxs=route_idx[(node, target)],
                        target=target,
                        proc=proc,
                    )
                )
                proc.outstanding += 1

        def finish_request(proc: _Proc, now: float, seq: int) -> int:
            """Retire one outstanding chunk request (completed or abandoned)."""
            proc.outstanding -= 1
            if proc.outstanding == 0:
                if proc.next_transfer < len(proc.transfers):
                    heapq.heappush(arrivals, (now + rtt, seq, proc))
                    seq += 1
                else:
                    proc.finished_at = now
            return seq

        # Arrival heap: (time, seq, proc) for the next transfer of a
        # process.  Two desynchronisation measures prevent an artefact
        # a fully deterministic DES would otherwise produce (every rank
        # stuck on the same stripe phase, hammering two targets at a
        # time — real ranks drift apart immediately through service
        # noise): each rank's transfer sequence is rotated to a random
        # starting phase (bandwidth-equivalent: same writes, different
        # order), and starts carry a tiny uniform jitter to break ties.
        jitter_rng = prepared.seeds.rng("des-startup-jitter")
        for proc in procs:
            if len(proc.transfers) > 1:
                cut = int(jitter_rng.integers(len(proc.transfers)))
                proc.transfers = proc.transfers[cut:] + proc.transfers[:cut]
        arrivals: list[tuple[float, int, _Proc]] = []
        seq = 0
        for proc in procs:
            if not proc.transfers:
                proc.finished_at = app_start[proc.app_id]
                continue
            jitter = float(jitter_rng.uniform(0.0, self.startup_jitter_s))
            heapq.heappush(arrivals, (app_start[proc.app_id] + jitter, seq, proc))
            seq += 1

        retry = self.options.effective_retry()
        bounds = self._breakpoints()
        retry_heap: list[tuple[float, int, _Extent]] = []
        lost_bytes: dict[str, float] = {}
        abandoned = 0

        active: list[_Extent] = []
        now = arrivals[0][0] if arrivals else 0.0
        segments = 0
        guard = 0
        max_iterations = 10 * self.max_requests + 1000
        while arrivals or active or retry_heap:
            guard += 1
            if guard > max_iterations:  # pragma: no cover - hard safety net
                raise SimulationError("DES engine exceeded its iteration budget")
            while arrivals and arrivals[0][0] <= now + _TIME_EPS:
                _, _, proc = heapq.heappop(arrivals)
                issue(proc, now, active)
            while retry_heap and retry_heap[0][0] <= now + _TIME_EPS:
                active.append(heapq.heappop(retry_heap)[2])
            if not active:
                next_times = [arrivals[0][0]] if arrivals else []
                if retry_heap:
                    next_times.append(retry_heap[0][0])
                now = min(next_times)
                continue

            epoch = int(now / epoch_len) if has_epochs else 0
            resample(epoch)

            depth = np.zeros(len(rids))
            nflows = np.zeros(len(rids), dtype=int)
            distinct: dict[int, set[int]] = {}
            memberships = []
            for ext in active:
                memberships.append(ext.resource_idxs)
                for i in ext.resource_idxs:
                    depth[i] += 1.0
                    nflows[i] += 1
                    if getattr(providers[i], "distinct_tag", None) is not None:
                        distinct.setdefault(i, set()).add(ext.target)
            capacities = np.array(
                [
                    providers[i].capacity(
                        ResourceContext(
                            now,
                            depth[i],
                            int(nflows[i]),
                            multipliers[i],
                            len(distinct.get(i, ())) or 1,
                        )
                    )
                    for i in range(len(rids))
                ]
            )
            solve_t0 = perf_counter() if profiled else 0.0
            rates_mib = max_min_rates(memberships, capacities)
            if profiled:
                prof.record("des.solve", perf_counter() - solve_t0)
            rates = rates_mib * float(MiB)
            if retry is not None:
                # A zero-rate chunk request is making no progress: run
                # its stall clock; any progress clears it.
                for ext, rate in zip(active, rates):
                    if rate <= _RATE_EPS:
                        if ext.stalled_since is None:
                            ext.stalled_since = now
                    else:
                        ext.stalled_since = None

            dt = math.inf
            for ext, rate in zip(active, rates):
                if rate > 0:
                    dt = min(dt, ext.remaining / rate)
            if arrivals:
                dt = min(dt, arrivals[0][0] - now)
            if has_epochs:
                dt = min(dt, (epoch + 1) * epoch_len - now)
            if bounds:
                nxt = bisect_right(bounds, now + _TIME_EPS)
                if nxt < len(bounds):
                    dt = min(dt, bounds[nxt] - now)
            if retry_heap:
                dt = min(dt, retry_heap[0][0] - now)
            if retry is not None:
                for ext in active:
                    if ext.stalled_since is not None:
                        dt = min(dt, ext.stalled_since + retry.timeout_s - now)
            if not math.isfinite(dt) or dt < 0:
                raise SimulationError(f"DES engine stalled at t={now}")
            dt = max(dt, 0.0)

            if bus.debug:
                bus.emit(
                    "segment.solve", t=now, dt=float(dt), active=len(active), iterations=1
                )

            if checker is not None:
                checker.on_segment(
                    now,
                    dt,
                    capacities,
                    memberships,
                    rates_mib,
                    flow_labels=[e.request_id for e in active],
                )

            now += dt
            segments += 1
            still: list[_Extent] = []
            for ext, rate in zip(active, rates):
                ext.remaining -= rate * dt
                if ext.remaining <= _BYTES_EPS:
                    seq = finish_request(ext.proc, now, seq)
                elif (
                    retry is not None
                    and ext.stalled_since is not None
                    and now >= ext.stalled_since + retry.timeout_s - _TIME_EPS
                ):
                    # Chunk-request timeout: back off and retry, or drop
                    # the request's remaining bytes once the budget is
                    # spent (the run degrades to a partial result).
                    ext.attempts += 1
                    ext.stalled_since = None
                    if ext.attempts > retry.max_retries:
                        abandoned += 1
                        app_id = ext.proc.app_id
                        lost_bytes[app_id] = lost_bytes.get(app_id, 0.0) + ext.remaining
                        trace.append(FlowTraceEvent(now, ext.request_id, "abandon", ext.attempts))
                        if bus.enabled:
                            bus.emit(
                                "flow.abandon", t=now, flow_id=ext.request_id, attempt=ext.attempts
                            )
                        if checker is not None:
                            checker.retract_bytes(ext.resource_idxs, ext.remaining)
                        seq = finish_request(ext.proc, now, seq)
                    else:
                        trace.append(FlowTraceEvent(now, ext.request_id, "retry", ext.attempts))
                        if bus.enabled:
                            bus.emit(
                                "flow.retry", t=now, flow_id=ext.request_id, attempt=ext.attempts
                            )
                        heapq.heappush(retry_heap, (now + retry.backoff_s(ext.attempts), seq, ext))
                        seq += 1
                else:
                    still.append(ext)
            active = still

        if checker is not None:
            checker.finish()

        if bus.enabled:
            bus.metrics.counter("engine.segments_solved", engine="des").inc(segments)
            bus.metrics.counter("engine.solver_iterations", engine="des").inc(segments)

        return self._collect(
            prepared,
            procs,
            segments,
            trace=trace,
            lost_bytes=lost_bytes,
            retries=sum(1 for e in trace if e.action == "retry"),
            abandoned=abandoned,
        )

    def _breakpoints(self) -> tuple[float, ...]:
        """Fault transition instants become extra segment boundaries."""
        if not self.options.faults_enabled:
            return ()
        schedule = self.options.fault_schedule
        if schedule is None:  # pragma: no cover - faults_enabled implies a schedule
            raise SimulationError("faults enabled without a fault schedule")
        return schedule.boundaries()

    def _collect(
        self,
        prepared: PreparedRun,
        procs: list[_Proc],
        segments: int,
        trace: list[FlowTraceEvent] | None = None,
        lost_bytes: dict[str, float] | None = None,
        retries: int = 0,
        abandoned: int = 0,
    ) -> RunResult:
        trace = trace or []
        lost_bytes = lost_bytes or {}
        servers = [h.host for h in prepared.hosts]
        meta_draw = _metadata_overheads(self.calibration, self.options, prepared)
        results = []
        for app in prepared.apps:
            meta = meta_draw(app.app_id)
            mine = [p for p in procs if p.app_id == app.app_id]
            unfinished = [f"r{p.rank}" for p in mine if p.finished_at is None]
            if unfinished:
                raise SimulationError(
                    f"DES run ended with unfinished processes of {app.app_id}: "
                    f"{', '.join(unfinished)}"
                )
            end = max(p.finished_at for p in mine)  # type: ignore[type-var]
            targets = prepared.app_targets[app.app_id]
            per_server = {s: 0 for s in servers}
            for tid in targets:
                per_server[prepared.target_host[tid]] += 1
            results.append(
                ApplicationResult(
                    app_id=app.app_id,
                    start_time=app.start_time,
                    end_time=float(end) + meta,
                    volume_bytes=float(app.total_bytes) - lost_bytes.get(app.app_id, 0.0),
                    num_nodes=app.num_nodes,
                    ppn=app.ppn,
                    stripe_count=prepared.app_stripe[app.app_id],
                    targets=targets,
                    placement=tuple(sorted(per_server.values())),
                )
            )
        return RunResult(
            apps=tuple(results),
            segments=segments,
            resource_series={},
            fault_events=tuple(e.to_dict() for e in trace),
            retries=retries,
            abandoned_flows=abandoned,
        )
