"""Run results: per-application and per-run summaries.

The aggregate bandwidth of concurrent applications follows the paper's
Equation 1:

    sum_i vol_i / (max_i end_i - min_i start_i)

and each application's individual bandwidth is its own volume over its
own span — the two quantities Figure 12 compares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import AnalysisError
from ..simcore.monitor import TimeSeries
from ..units import bandwidth_mib_s

__all__ = [
    "ApplicationResult",
    "RunResult",
    "aggregate_bandwidth",
    "result_to_jsonable",
    "result_from_jsonable",
]


@dataclass(frozen=True)
class ApplicationResult:
    """Timing and placement of one application in one run."""

    app_id: str
    start_time: float
    end_time: float
    volume_bytes: float
    num_nodes: int
    ppn: int
    stripe_count: int
    targets: tuple[int, ...]
    placement: tuple[int, ...]  # sorted per-server target counts, e.g. (1, 3)

    def __post_init__(self) -> None:
        if self.end_time <= self.start_time:
            raise AnalysisError(f"{self.app_id}: non-positive duration")

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def bandwidth_mib_s(self) -> float:
        """The application's individual write bandwidth."""
        return bandwidth_mib_s(self.volume_bytes, self.duration)

    @property
    def placement_min_max(self) -> tuple[int, int]:
        """The paper's (min, max) notation over the two busiest servers."""
        if not self.placement:
            return (0, 0)
        return (min(self.placement), max(self.placement))

    @property
    def balanced(self) -> bool:
        """True when every involved server serves the same target count."""
        lo, hi = self.placement_min_max
        return lo == hi


def aggregate_bandwidth(apps: list[ApplicationResult] | tuple[ApplicationResult, ...]) -> float:
    """Equation 1 of the paper: total volume over the overall span."""
    if not apps:
        raise AnalysisError("aggregate bandwidth of zero applications")
    start = min(a.start_time for a in apps)
    end = max(a.end_time for a in apps)
    return bandwidth_mib_s(sum(a.volume_bytes for a in apps), end - start)


@dataclass(frozen=True)
class RunResult:
    """Everything one engine run produced.

    Under fault injection a run may degrade instead of crashing:
    ``fault_events`` is the client's timeout/retry/abandon trace (dicts
    from :class:`~repro.netsim.fluid.FlowTraceEvent`), ``retries``
    counts the chunk-request timeouts suffered, and ``abandoned_flows``
    the flows the client gave up on (their undelivered bytes are
    excluded from the apps' ``volume_bytes``).  All three stay at their
    zero defaults in fault-free runs.
    """

    apps: tuple[ApplicationResult, ...]
    segments: int
    resource_series: Mapping[str, TimeSeries] = field(default_factory=dict)
    fault_events: tuple[Mapping[str, Any], ...] = ()
    retries: int = 0
    abandoned_flows: int = 0

    @property
    def complete(self) -> bool:
        """True when every flow delivered its full volume."""
        return self.abandoned_flows == 0

    def __post_init__(self) -> None:
        if not self.apps:
            raise AnalysisError("a run needs at least one application")
        ids = [a.app_id for a in self.apps]
        if len(set(ids)) != len(ids):
            raise AnalysisError(f"duplicate app ids in run: {ids}")

    def app(self, app_id: str) -> ApplicationResult:
        for a in self.apps:
            if a.app_id == app_id:
                return a
        raise AnalysisError(f"no application {app_id!r} in run")

    @property
    def makespan(self) -> float:
        return max(a.end_time for a in self.apps)

    @property
    def aggregate_bandwidth_mib_s(self) -> float:
        return aggregate_bandwidth(list(self.apps))

    @property
    def single(self) -> ApplicationResult:
        """The only application of a single-app run."""
        if len(self.apps) != 1:
            raise AnalysisError(f"run has {len(self.apps)} applications, not 1")
        return self.apps[0]

    def shared_targets(self) -> set[int]:
        """Targets used by more than one application."""
        seen: dict[int, int] = {}
        for a in self.apps:
            for t in a.targets:
                seen[t] = seen.get(t, 0) + 1
        return {t for t, n in seen.items() if n > 1}


# -- serialization -----------------------------------------------------------------
# The exact JSON round trip behind the content-addressed result cache:
# a decoded result must be byte-identical (to the last float ulp) to the
# one the engine produced, so every numeric field is cast explicitly —
# numpy integer scalars are not JSON-serialisable and numpy floats must
# not leak into a result that a cache hit is supposed to replay exactly.
# Python's shortest-repr float encoding makes the float round trip exact.


def _trace_value(value: Any) -> Any:
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, int):
        return int(value)
    if hasattr(value, "item"):  # numpy scalar
        return _trace_value(value.item())
    return str(value)


def result_to_jsonable(result: RunResult) -> dict[str, Any]:
    return {
        "apps": [
            {
                "app_id": a.app_id,
                "start_time": float(a.start_time),
                "end_time": float(a.end_time),
                "volume_bytes": float(a.volume_bytes),
                "num_nodes": int(a.num_nodes),
                "ppn": int(a.ppn),
                "stripe_count": int(a.stripe_count),
                "targets": [int(t) for t in a.targets],
                "placement": [int(p) for p in a.placement],
            }
            for a in result.apps
        ],
        "segments": int(result.segments),
        "resource_series": {
            rid: {"times": [float(t) for t in ts.times], "values": [float(v) for v in ts.values]}
            for rid, ts in result.resource_series.items()
        },
        "fault_events": [
            {str(k): _trace_value(v) for k, v in event.items()}
            for event in result.fault_events
        ],
        "retries": int(result.retries),
        "abandoned_flows": int(result.abandoned_flows),
    }


def result_from_jsonable(data: Mapping[str, Any]) -> RunResult:
    return RunResult(
        apps=tuple(
            ApplicationResult(
                app_id=str(a["app_id"]),
                start_time=float(a["start_time"]),
                end_time=float(a["end_time"]),
                volume_bytes=float(a["volume_bytes"]),
                num_nodes=int(a["num_nodes"]),
                ppn=int(a["ppn"]),
                stripe_count=int(a["stripe_count"]),
                targets=tuple(int(t) for t in a["targets"]),
                placement=tuple(int(p) for p in a["placement"]),
            )
            for a in data["apps"]
        ),
        segments=int(data["segments"]),
        resource_series={
            rid: TimeSeries(series["times"], series["values"])
            for rid, series in data["resource_series"].items()
        },
        fault_events=tuple(dict(event) for event in data["fault_events"]),
        retries=int(data["retries"]),
        abandoned_flows=int(data["abandoned_flows"]),
    )
