"""Metadata-performance engine on the DES kernel.

Simulates an mdtest run against the deployment's metadata servers
using :mod:`repro.simcore`: every client process is a simulation
process issuing blocking metadata RPCs; every MDS is a bounded worker
pool (a :class:`~repro.simcore.resources.Resource`) whose service
times reflect the MDT (SSD RAID-1) commit costs.  Directory-to-MDS
ownership follows BeeGFS: a directory's entries live on *one* MDS, so
a shared-directory run serialises on a single server no matter how
many exist — the structural effect this engine exposes.

The service-time constants are *not* calibrated to the paper (it
reports no metadata numbers); they are order-of-magnitude figures for
SSD-backed BeeGFS metadata documented here as an extension substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..beegfs.filesystem import BeeGFS, BeeGFSDeploymentSpec
from ..errors import ExperimentError
from ..rng import SeedTree
from ..simcore.kernel import Simulator, Timeout
from ..simcore.resources import Resource
from ..workload.mdtest import MDTestConfig, MetadataOp

__all__ = ["MDSPerformanceSpec", "MDTestResult", "MetadataEngine"]


@dataclass(frozen=True)
class MDSPerformanceSpec:
    """Service model of one metadata server.

    ``workers`` parallel service slots (BeeGFS ``tuneNumWorkers``);
    per-op service times include the MDT commit; ``rpc_latency_s`` is
    the client-observed network round trip added outside the server.
    """

    workers: int = 8
    create_service_s: float = 450e-6
    stat_service_s: float = 120e-6
    unlink_service_s: float = 350e-6
    rpc_latency_s: float = 120e-6
    service_jitter: float = 0.25  # lognormal sigma on service times

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ExperimentError("MDS needs at least one worker")
        for value in (self.create_service_s, self.stat_service_s, self.unlink_service_s):
            if value <= 0:
                raise ExperimentError("service times must be positive")
        if self.rpc_latency_s < 0 or self.service_jitter < 0:
            raise ExperimentError("negative latency/jitter")

    def service_time(self, op: MetadataOp) -> float:
        return {
            MetadataOp.CREATE: self.create_service_s,
            MetadataOp.STAT: self.stat_service_s,
            MetadataOp.UNLINK: self.unlink_service_s,
        }[op]

    def peak_rate(self, op: MetadataOp) -> float:
        """Saturated single-MDS throughput for one op type (ops/s)."""
        return self.workers / self.service_time(op)


@dataclass
class MDTestResult:
    """Timing summary of one simulated mdtest run."""

    nprocs: int
    config: MDTestConfig
    phase_seconds: dict[MetadataOp, float]
    mds_ops: dict[str, int]

    def rate(self, op: MetadataOp) -> float:
        """Aggregate ops/s of one phase (mdtest's headline numbers)."""
        total = self.config.total_files(self.nprocs)
        return total / self.phase_seconds[op]

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def busiest_mds_share(self) -> float:
        """Fraction of all ops served by the most loaded MDS."""
        total = sum(self.mds_ops.values())
        return max(self.mds_ops.values()) / total if total else 0.0


class MetadataEngine:
    """Run mdtest workloads against a deployment's metadata servers."""

    def __init__(
        self,
        deployment: BeeGFSDeploymentSpec,
        spec: MDSPerformanceSpec = MDSPerformanceSpec(),
        seed: int = 0,
    ):
        self.deployment = deployment
        self.spec = spec
        self.seed = seed

    def run(self, config: MDTestConfig, nprocs: int, rep: int = 0) -> MDTestResult:
        """Simulate one mdtest run and return the per-phase timings.

        Phases run in mdtest's order (create, stat, unlink), separated
        by barriers, exactly like the real tool.
        """
        if nprocs < 1:
            raise ExperimentError("need at least one process")
        fs = BeeGFS(self.deployment, seed=self.seed)
        # Resolve each rank's directory to its owning MDS through the
        # real namespace (round-robin directory ownership).
        fs.mkdir("/mdtest")
        ranks_mds: dict[int, str] = {}
        for rank in range(nprocs):
            directory = config.directory_of(rank)
            if not fs.namespace.is_dir(directory):
                fs.mkdir(directory)
            ranks_mds[rank] = fs.namespace.mds_of(directory)

        rng = SeedTree(self.seed).rng("mdtest", rep=rep)
        phase_seconds: dict[MetadataOp, float] = {}
        mds_ops: dict[str, int] = {m.name: 0 for m in fs.mdses}

        for op in config.ops:
            sim = Simulator()
            servers = {m.name: Resource(sim, self.spec.workers, name=m.name) for m in fs.mdses}
            # Pre-draw jittered service times so process scheduling
            # order cannot perturb the random stream.
            jitter = self.spec.service_jitter
            base = self.spec.service_time(op)
            times = base * np.exp(
                rng.normal(-0.5 * jitter * jitter, jitter, size=(nprocs, config.files_per_process))
            )

            def client(rank: int):
                mds = servers[ranks_mds[rank]]
                for i in range(config.files_per_process):
                    yield Timeout(self.spec.rpc_latency_s / 2)
                    request = mds.request()
                    yield request
                    try:
                        yield Timeout(float(times[rank, i]))
                    finally:
                        mds.release()
                    yield Timeout(self.spec.rpc_latency_s / 2)
                    mds_ops[ranks_mds[rank]] += 1

            for rank in range(nprocs):
                sim.process(client(rank), name=f"rank{rank}")
            phase_seconds[op] = sim.run()

        return MDTestResult(
            nprocs=nprocs,
            config=config,
            phase_seconds=phase_seconds,
            mds_ops=mds_ops,
        )

    def run_concurrent(
        self,
        groups: "list[tuple[str, MDTestConfig, int] | tuple[str, MDTestConfig, int, float]]",
        op: MetadataOp = MetadataOp.CREATE,
        rep: int = 0,
    ) -> dict[str, float]:
        """One phase with several workloads running at once.

        ``groups`` are ``(label, config, nprocs[, start_delay_s])``
        tuples; their processes contend for the metadata servers
        simultaneously (the interference situation the paper cites:
        metadata-intensive neighbours slow everyone's opens).  A start
        delay lets a group arrive while the others' queues are already
        deep.  Returns each group's completion time in seconds,
        measured from its own start.
        """
        if not groups:
            raise ExperimentError("need at least one group")
        fs = BeeGFS(self.deployment, seed=self.seed)
        fs.mkdir("/mdtest")
        rng = SeedTree(self.seed).rng("mdtest-mixed", rep=rep)
        sim = Simulator()
        servers = {m.name: Resource(sim, self.spec.workers, name=m.name) for m in fs.mdses}
        jitter = self.spec.service_jitter
        base = self.spec.service_time(op)
        finished: dict[str, float] = {}
        normalised = [
            (g[0], g[1], g[2], g[3] if len(g) > 3 else 0.0) for g in groups
        ]
        remaining = {label: nprocs for label, _, nprocs, _ in normalised}
        delays = {label: delay for label, _, _, delay in normalised}

        for gi, (label, config, nprocs, delay) in enumerate(normalised):
            for rank in range(nprocs):
                directory = config.directory_of(rank, base=f"/mdtest/g{gi}")
                parent = f"/mdtest/g{gi}"
                if not fs.namespace.is_dir(parent):
                    fs.mkdir(parent)
                if not fs.namespace.is_dir(directory):
                    fs.mkdir(directory)
                mds_name = fs.namespace.mds_of(directory)
                times = base * np.exp(
                    rng.normal(-0.5 * jitter * jitter, jitter, size=config.files_per_process)
                )

                def client(label=label, mds_name=mds_name, times=times, delay=delay):
                    mds = servers[mds_name]
                    if delay > 0:
                        yield Timeout(delay)
                    for service in times:
                        yield Timeout(self.spec.rpc_latency_s / 2)
                        yield mds.request()
                        try:
                            yield Timeout(float(service))
                        finally:
                            mds.release()
                        yield Timeout(self.spec.rpc_latency_s / 2)
                    remaining[label] -= 1
                    if remaining[label] == 0:
                        finished[label] = sim.now - delays[label]

                sim.process(client(), name=f"{label}-r{rank}")
        sim.run()
        return finished
