"""Shared engine machinery: preparing a run.

Both engines perform the same setup — build a fresh file system for the
repetition, create the applications' files through the metadata path
(chooser included), derive per-(node, target) volumes, and wire the
calibrated capacity providers.  :class:`EngineBase` owns that;
subclasses integrate time differently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..beegfs.filesystem import BeeGFS, BeeGFSDeploymentSpec
from ..beegfs.meta import FileInode
from ..beegfs.striping import _bytes_per_position
from ..calibration.plafrim import Calibration
from ..errors import ExperimentError, SimulationError
from ..faults import FaultSchedule, publish_schedule, wrap_providers
from ..netsim.flows import FluidFlow
from ..netsim.fluid import CapacityProvider, ConstantCapacity, NoiseModel, NoNoise
from ..netsim.latency import BlockingRequestModel
from ..rng import SeedTree, stable_hash32
from ..storage.client_model import RetryPolicy
from ..storage.san import SanModel
from ..storage.server import ServerIngestModel, StorageHostSpec, StoragePoolModel
from ..storage.target import StorageTargetModel
from ..telemetry.bus import get_bus
from ..telemetry.profiling import get_profiler
from ..topology.builders import SWITCH_NAME
from ..topology.graph import Topology
from ..verify.invariants import RuntimeChecker, make_checker
from ..verify.level import ValidationLevel
from ..workload.application import Application
from ..workload.patterns import AccessPattern

__all__ = [
    "EngineOptions",
    "PreparedRun",
    "EngineBase",
    "ValidationLevel",
    "FABRIC_RESOURCE",
    "SAN_RESOURCE",
]

# Beyond this many per-rank regions, per-target volumes are computed by
# the uniform-striping approximation instead of exact region walking.
_EXACT_REGION_LIMIT = 4096

FABRIC_RESOURCE = f"fabric:{SWITCH_NAME}"
SAN_RESOURCE = "san:storage"


@lru_cache(maxsize=65536)
def _regions_key(config, rank: int, nprocs: int, period: int) -> tuple[tuple[int, int], ...]:
    """A rank's regions as (offset % period, length) pairs.

    ``IORConfig`` is frozen/hashable and the region list is a pure
    function of (config, rank, nprocs), so generating it — the layout
    walk itself — is cached across repetitions.
    """
    return tuple((r.offset % period, r.length) for r in config.regions(rank, nprocs))


@lru_cache(maxsize=4096)
def _volume_by_position(
    stripe_count: int, chunk_size: int, regions: tuple[tuple[int, int], ...]
) -> tuple[tuple[int, float], ...]:
    """Per stripe *position*, the bytes a rank's regions put there.

    Placements change every repetition but the layout geometry does
    not, so the expensive region walk is keyed on (stripe geometry,
    normalised regions) and shared across repetitions; the caller maps
    positions back to this repetition's target ids.  Positions appear
    in first-contribution order with float accumulation per region, so
    the mapped dict is bit-identical to the per-target walk it replaces.
    """
    out: dict[int, float] = {}
    for offset, length in regions:
        per_position = _bytes_per_position(stripe_count, chunk_size, length, offset)
        for p in range(stripe_count):
            n = per_position[p]
            if n:
                out[p] = out.get(p, 0.0) + n
    return tuple(out.items())


@dataclass(frozen=True)
class EngineOptions:
    """Knobs shared by the engines."""

    noise_enabled: bool = True
    observe_servers: bool = False
    include_metadata_overhead: bool = True
    cap_iterations: int = 4
    # Candidate counts of *other users'* file creations interposed
    # between consecutive application file creations (one draw per
    # gap, uniform over the tuple).  Advances stateful choosers the
    # way a busy production system does: with PlaFRIM's round-robin
    # and (0, 1, 2), two stripe-4 apps share all four targets in 1/3
    # of runs and none otherwise — the paper's Section IV-D mixture.
    interleaved_creations: tuple[int, ...] = ()
    # Fault injection: the schedule drives both the management state at
    # file creation (choosers see only reachable targets) and the
    # capacity timeline during the run.  ``retry`` overrides the client
    # robustness knobs; when None and faults are scheduled, the engines
    # fall back to the default RetryPolicy.  Both must be left at None
    # for byte-identical fault-free behaviour.
    fault_schedule: FaultSchedule | None = None
    retry: RetryPolicy | None = None
    # Runtime invariant checking (repro.verify): OFF is byte-identical
    # to the unchecked engines, BASIC certifies time/capacity/per-flow
    # conservation, PARANOID adds the max-min fairness certificate and
    # per-target byte conservation on every segment.
    validation: ValidationLevel = ValidationLevel.OFF

    @property
    def faults_enabled(self) -> bool:
        return self.fault_schedule is not None and not self.fault_schedule.is_empty

    def effective_retry(self) -> RetryPolicy | None:
        """The client retry policy the engines should run with."""
        if self.retry is not None:
            return self.retry
        return RetryPolicy() if self.faults_enabled else None


@dataclass
class PreparedRun:
    """Everything a repetition needs, ready to integrate."""

    apps: tuple[Application, ...]
    fs: BeeGFS
    providers: dict[str, CapacityProvider]
    flows: list[FluidFlow]
    inodes: dict[str, dict[int | None, FileInode]]
    app_targets: dict[str, tuple[int, ...]]
    app_stripe: dict[str, int]
    target_host: dict[int, str]
    hosts: list[StorageHostSpec]
    noise: NoiseModel
    latency: BlockingRequestModel
    seeds: SeedTree
    routes: dict[tuple[str, int], tuple[str, ...]] = field(default_factory=dict)


def _metadata_overheads(calibration, options, prepared: "PreparedRun"):
    """Per-application metadata/startup overhead draws for one run.

    File create/open/close involves MDS round trips and target
    allocation whose latency varies a lot on a production system; the
    lognormal draw (sigma ``metadata_sigma``) is what makes small data
    sizes far more variable than large ones (Figure 2).  Noise-free
    runs (``noise_enabled=False``) use the deterministic mean.
    """
    if not options.include_metadata_overhead:
        return lambda app_id: 0.0
    base = calibration.metadata_overhead_s
    sigma = calibration.metadata_sigma
    if not options.noise_enabled or sigma == 0:
        return lambda app_id: base
    rng = prepared.seeds.rng("metadata-overhead")
    draws = {
        app.app_id: base * float(np.exp(rng.normal(-0.5 * sigma * sigma, sigma)))
        for app in prepared.apps
    }
    return lambda app_id: draws[app_id]


class EngineBase:
    """Common construction/prepare logic of the engines."""

    def __init__(
        self,
        calibration: Calibration,
        topology: Topology,
        deployment: BeeGFSDeploymentSpec,
        seed: int = 0,
        options: EngineOptions = EngineOptions(),
    ):
        self.calibration = calibration
        self.topology = topology
        self.deployment = deployment
        self.seed = seed
        self.options = options
        self._seeds = SeedTree(seed).child(type(self).__name__)
        # Routes are a pure function of the (static) topology, so the
        # resource tuples are memoised for the engine's lifetime.
        self._route_cache: dict[tuple[str, str, int], tuple[str, ...]] = {}

    # -- helpers ---------------------------------------------------------------

    def _make_checker(self, rep: int) -> RuntimeChecker | None:
        """The run's invariant checker, or ``None`` at ``ValidationLevel.OFF``."""
        return make_checker(
            self.options.validation,
            context=f"{type(self).__name__} seed={self.seed} rep={rep}",
        )

    def _create_files(self, fs: BeeGFS, app: Application) -> dict[int | None, FileInode]:
        """Create the application's files; keys are ranks (None = shared)."""
        if not fs.namespace.is_dir(app.directory):
            fs.mkdir(app.directory)
        if app.config.pattern.shared_file:
            return {None: fs.create_file(app.file_path())}
        return {rank: fs.create_file(app.file_path(rank)) for rank in range(app.nprocs)}

    @staticmethod
    def per_target_volume(app: Application, rank: int, inode: FileInode) -> dict[int, float]:
        """Bytes of ``rank``'s writes landing on each target of its file."""
        pattern = inode.pattern
        total_regions = app.config.segments * (
            app.config.transfers_per_block
            if app.config.pattern is AccessPattern.N1_STRIDED
            else 1
        )
        if total_regions > _EXACT_REGION_LIMIT:
            # Uniform approximation: many transfers round-robin evenly.
            share = app.config.bytes_per_process / pattern.stripe_count
            return {t: share for t in pattern.targets}
        # Region offsets are periodic in the stripe width, so the walk is
        # cached per position and mapped onto this file's target order.
        period = pattern.stripe_count * pattern.chunk_size
        regions_key = _regions_key(app.config, rank, app.nprocs, period)
        by_position = _volume_by_position(pattern.stripe_count, pattern.chunk_size, regions_key)
        return {pattern.targets[p]: v for p, v in by_position}

    def _route_resources(self, node: str, server: str, target_id: int) -> tuple[str, ...]:
        key = (node, server, target_id)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        links = self.topology.route(node, server)
        resources = [f"client:{node}", links[0].resource_id, FABRIC_RESOURCE]
        for link in links[1:]:
            resources.append(link.resource_id)
        resources.extend(
            [f"ingest:{server}", SAN_RESOURCE, f"pool:{server}", f"ost:{target_id}"]
        )
        self._route_cache[key] = tuple(resources)
        return self._route_cache[key]

    def _check_node_ownership(self, apps: tuple[Application, ...]) -> dict[str, str]:
        node_owner: dict[str, str] = {}
        ids = [a.app_id for a in apps]
        if len(set(ids)) != len(ids):
            raise ExperimentError(f"duplicate app ids: {ids}")
        for app in apps:
            for node in app.nodes:
                if node not in self.topology:
                    raise ExperimentError(f"{app.app_id}: unknown node {node!r}")
                if node_owner.setdefault(node, app.app_id) != app.app_id:
                    raise ExperimentError(
                        f"node {node!r} allocated to both {node_owner[node]!r} "
                        f"and {app.app_id!r} (jobs must not share nodes)"
                    )
        return node_owner

    # -- the heavy lifting ----------------------------------------------------------

    def prepare(self, apps: list[Application] | tuple[Application, ...], rep: int = 0) -> PreparedRun:
        """Build the complete simulation input for one repetition."""
        with get_profiler().span("engine.prepare"):
            return self._prepare(apps, rep)

    def _prepare(self, apps: list[Application] | tuple[Application, ...], rep: int) -> PreparedRun:
        apps = tuple(apps)
        if not apps:
            raise ExperimentError("no applications to run")
        node_owner = self._check_node_ownership(apps)

        operations = {a.config.operation for a in apps}
        if len(operations) > 1:
            raise ExperimentError(
                "mixed read/write runs are not supported (storage-side rates differ)"
            )
        operation = operations.pop()

        rep_seeds = self._seeds.child("rep", rep)
        fs = BeeGFS(self.deployment, seed=stable_hash32(self.seed, "fs", rep))
        calib = self.calibration
        schedule = self.options.fault_schedule
        if self.options.faults_enabled:
            # Mark targets unreachable/degraded *before* any file is
            # created, so the choosers allocate around the failures the
            # way a live management service would.
            if schedule is None:  # pragma: no cover - faults_enabled implies a schedule
                raise SimulationError("faults enabled without a fault schedule")
            schedule.apply_to_management(fs.management, time=0.0)

        providers: dict[str, CapacityProvider] = {}
        switch = self.topology.host(SWITCH_NAME)
        providers[FABRIC_RESOURCE] = ConstantCapacity(float(switch.attrs["fabric_mib_s"]))
        hosts = calib.storage_hosts(self.deployment, operation=operation)
        providers[SAN_RESOURCE] = SanModel(calib.san_for(operation))
        target_host: dict[int, str] = {}
        for host_spec in hosts:
            for link in self.topology.route(host_spec.host, SWITCH_NAME):
                providers.setdefault(link.resource_id, ConstantCapacity(link.capacity_mib_s))
            providers[f"ingest:{host_spec.host}"] = ServerIngestModel(
                host_spec.host, host_spec.ingest_spec
            )
            providers[host_spec.pool_resource_id] = StoragePoolModel(
                host_spec.host, host_spec.pool_spec
            )
            for tid in host_spec.target_ids:
                providers[f"ost:{tid}"] = StorageTargetModel(str(tid), host_spec.spec_for(tid))
                target_host[tid] = host_spec.host

        app_by_id = {a.app_id: a for a in apps}
        for node, owner in node_owner.items():
            ppn = app_by_id[owner].ppn
            providers[f"client:{node}"] = ConstantCapacity(calib.client.node_capacity(ppn))
            for link in self.topology.route(node, SWITCH_NAME):
                providers.setdefault(link.resource_id, ConstantCapacity(link.capacity_mib_s))

        flows: list[FluidFlow] = []
        routes: dict[tuple[str, int], tuple[str, ...]] = {}
        inodes_by_app: dict[str, dict[int | None, FileInode]] = {}
        app_targets: dict[str, tuple[int, ...]] = {}
        app_stripe: dict[str, int] = {}
        background_rng = rep_seeds.rng("background-creations")
        for app_index, app in enumerate(apps):
            if app_index > 0 and self.options.interleaved_creations:
                if not fs.namespace.is_dir("/other-users"):
                    fs.mkdir("/other-users")
                gap = int(background_rng.choice(self.options.interleaved_creations))
                for j in range(gap):
                    fs.create_file(f"/other-users/bg-{app_index}-{j}.dat")
            inodes = self._create_files(fs, app)
            inodes_by_app[app.app_id] = inodes
            app_stripe[app.app_id] = next(iter(inodes.values())).pattern.stripe_count
            volumes: dict[tuple[str, int], float] = {}
            weights: dict[tuple[str, int], float] = {}
            nprocs_w: dict[tuple[str, int], float] = {}
            targets: set[int] = set()
            for node in app.nodes:
                for rank in app.ranks_of_node(node):
                    inode = inodes[None] if None in inodes else inodes[rank]
                    k = inode.pattern.stripe_count
                    # A blocking transfer of t bytes holds one chunk
                    # request per crossed chunk concurrently, so each
                    # process contributes e/k outstanding requests to
                    # each of its k targets (e = chunks per transfer) —
                    # clamped below by the node's client RPC slots.
                    e = max(1, app.config.transfer_size // inode.pattern.chunk_size)
                    for tid, nbytes in self.per_target_volume(app, rank, inode).items():
                        volumes[(node, tid)] = volumes.get((node, tid), 0.0) + nbytes
                        weights[(node, tid)] = weights.get((node, tid), 0.0) + e / k
                        nprocs_w[(node, tid)] = nprocs_w.get((node, tid), 0.0) + 1.0 / k
                        targets.add(tid)
            app_targets[app.app_id] = tuple(sorted(targets))
            # The client keeps at most ``max_inflight_requests`` chunk
            # requests outstanding per node: extra processes queue at
            # the client instead of adding storage-side parallelism
            # (Lesson 3), so per-(node, target) depth is clamped.
            slot_cap = calib.client.max_inflight_requests / app_stripe[app.app_id]
            for key in weights:
                weights[key] = min(weights[key], slot_cap)
            for (node, tid), volume in sorted(volumes.items()):
                server = target_host[tid]
                route = self._route_resources(node, server, tid)
                routes[(node, tid)] = route
                flows.append(
                    FluidFlow(
                        flow_id=f"{app.app_id}:{node}:{tid}",
                        resources=route,
                        volume_bytes=volume,
                        weight=weights[(node, tid)],
                        nprocs=nprocs_w[(node, tid)],
                        start_time=app.start_time,
                        request_size_bytes=float(app.config.transfer_size),
                        tags={"app": app.app_id, "node": node, "target": tid, "server": server},
                    )
                )

        latency = BlockingRequestModel(
            request_size_bytes=apps[0].config.transfer_size,
            round_trip_latency_s=calib.request_rtt_s,
        )
        noise: NoiseModel = calib.make_noise() if self.options.noise_enabled else NoNoise()
        if self.options.faults_enabled:
            if schedule is None:  # pragma: no cover - faults_enabled implies a schedule
                raise SimulationError("faults enabled without a fault schedule")
            providers = wrap_providers(providers, schedule)

        bus = get_bus()
        if bus.enabled:
            if self.options.faults_enabled and schedule is not None:
                publish_schedule(schedule, bus)
            # Per-OST planned write volumes: the allocation-balance signal
            # behind the paper's (min, max) placements, as a histogram.
            ost_bytes: dict[int, float] = {}
            for flow in flows:
                tid = int(flow.tags["target"])
                ost_bytes[tid] = ost_bytes.get(tid, 0.0) + flow.volume_bytes
            hist = bus.metrics.histogram("ost.bytes_written")
            for tid in sorted(ost_bytes):
                hist.observe(ost_bytes[tid])

        return PreparedRun(
            apps=apps,
            fs=fs,
            providers=providers,
            flows=flows,
            inodes=inodes_by_app,
            app_targets=app_targets,
            app_stripe=app_stripe,
            target_host=target_host,
            hosts=hosts,
            noise=noise,
            latency=latency,
            seeds=rep_seeds,
            routes=routes,
        )
