"""Text rendering of the paper's figures.

Every experiment regenerates its figure as plain text (the offline
environment has no plotting stack): scatter/line panels for the
bandwidth curves, box panels for the allocation figures, bar panels
for the concurrency study, plus small tables.  The renderers are pure
functions of data, so they are unit-testable and stable.
"""

from .ascii import (
    bar_panel,
    box_panel,
    render_table,
    series_panel,
    timeline_panel,
)

__all__ = [
    "series_panel",
    "box_panel",
    "bar_panel",
    "timeline_panel",
    "render_table",
]
