"""ASCII chart primitives.

Conventions shared by all panels:

* y axes auto-scale to the data and do *not* start at zero — exactly
  like the paper's figures (which the captions call out every time);
* every panel carries a title line and a y-axis legend;
* widths stay under ~100 columns so panels render in terminals, logs
  and Markdown code fences alike.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..errors import AnalysisError
from ..stats.boxplot import BoxplotStats

__all__ = ["series_panel", "box_panel", "bar_panel", "timeline_panel", "render_table"]

_HEIGHT = 16
_MARKERS = "ox+*#@%&"


def _scale(lo: float, hi: float) -> tuple[float, float]:
    if hi <= lo:
        pad = abs(hi) * 0.05 + 1.0
        return lo - pad, hi + pad
    pad = (hi - lo) * 0.08
    return lo - pad, hi + pad


def _row_of(value: float, lo: float, hi: float, height: int) -> int:
    frac = (value - lo) / (hi - lo)
    return min(height - 1, max(0, int(round(frac * (height - 1)))))


def series_panel(
    series: Mapping[str, Sequence[tuple[float, Sequence[float]]]],
    title: str,
    xlabel: str = "",
    ylabel: str = "MiB/s",
    height: int = _HEIGHT,
) -> str:
    """Scatter panel: named series of (x, samples-at-x).

    Each series plots every individual sample (the paper's dots) with
    its own marker and a mean marker ``=`` per x position.
    """
    if not series:
        raise AnalysisError("no series to plot")
    xs: list[float] = sorted({x for pts in series.values() for x, _ in pts})
    if not xs:
        raise AnalysisError("series contain no points")
    all_values = [v for pts in series.values() for _, vals in pts for v in vals]
    if not all_values:
        raise AnalysisError("series contain no samples")
    lo, hi = _scale(min(all_values), max(all_values))

    col_width = max(7, max(len(f"{x:g}") for x in xs) + 2)
    grid = [[" "] * (col_width * len(xs)) for _ in range(height)]
    for si, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[si % len(_MARKERS)]
        by_x = {x: vals for x, vals in pts}
        for xi, x in enumerate(xs):
            vals = by_x.get(x)
            if not vals:
                continue
            center = xi * col_width + col_width // 2
            for vi, v in enumerate(sorted(vals)):
                row = height - 1 - _row_of(v, lo, hi, height)
                offset = (vi % 3) - 1  # spread ties slightly
                col = min(len(grid[0]) - 1, max(0, center + offset))
                grid[row][col] = marker
            mean_row = height - 1 - _row_of(float(np.mean(vals)), lo, hi, height)
            grid[mean_row][center] = "="

    lines = [title]
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{hi:8.0f} |"
        elif i == height - 1:
            label = f"{lo:8.0f} |"
        else:
            label = "         |"
        lines.append(label + "".join(row))
    axis = "         +" + "-" * (col_width * len(xs))
    ticks = "          " + "".join(f"{x:^{col_width}g}" for x in xs)
    lines.append(axis)
    lines.append(ticks)
    footer = f"          x: {xlabel}   y: {ylabel} (axis does not start at zero)"
    legend = "          legend: " + "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(series)
    ) + "  (= mean)"
    lines.append(footer)
    lines.append(legend)
    return "\n".join(lines)


def box_panel(
    boxes: Mapping[str, BoxplotStats],
    title: str,
    ylabel: str = "MiB/s",
    width: int = 40,
) -> str:
    """Horizontal boxplot panel, one row per group."""
    if not boxes:
        raise AnalysisError("no boxes to plot")
    lo = min(min(b.whisker_low, *(b.outliers or (b.whisker_low,))) for b in boxes.values())
    hi = max(max(b.whisker_high, *(b.outliers or (b.whisker_high,))) for b in boxes.values())
    lo, hi = _scale(lo, hi)
    span = hi - lo

    def col(v: float) -> int:
        return min(width - 1, max(0, int(round((v - lo) / span * (width - 1)))))

    label_width = max(len(str(k)) for k in boxes)
    lines = [title]
    for key, b in boxes.items():
        row = [" "] * width
        for c in range(col(b.whisker_low), col(b.whisker_high) + 1):
            row[c] = "-"
        for c in range(col(b.q1), col(b.q3) + 1):
            row[c] = "="
        row[col(b.median)] = "|"
        for o in b.outliers:
            row[col(o)] = "o"
        lines.append(f"  {str(key):>{label_width}} [{''.join(row)}] n={b.n} median={b.median:.0f}")
    lines.append(f"  {'':>{label_width}}  {lo:<12.0f}{'':^{max(0, width - 24)}}{hi:>12.0f}")
    lines.append(f"  y: {ylabel} ('=' box, '|' median, '-' whiskers, 'o' outliers)")
    return "\n".join(lines)


def bar_panel(
    bars: Mapping[str, Sequence[tuple[str, float]]],
    title: str,
    ylabel: str = "MiB/s",
    width: int = 46,
) -> str:
    """Stacked horizontal bars: each bar is a list of (segment, value).

    Used for Figure 12: one bar per configuration, the segments being
    the concurrent applications' individual bandwidths (their sum is
    the stack height the paper plots).
    """
    if not bars:
        raise AnalysisError("no bars to plot")
    totals = {k: sum(v for _, v in segs) for k, segs in bars.items()}
    hi = max(totals.values())
    if hi <= 0:
        raise AnalysisError("bar totals must be positive")
    label_width = max(len(str(k)) for k in bars)
    lines = [title]
    for key, segs in bars.items():
        row = ""
        for si, (_name, value) in enumerate(segs):
            cols = int(round(value / hi * width))
            row += _MARKERS[si % len(_MARKERS)] * cols
        lines.append(f"  {str(key):>{label_width}} |{row:<{width}}| total={totals[key]:8.1f}")
    seg_names = {name for segs in bars.values() for name, _ in segs}
    lines.append(f"  y: {ylabel}; segments: " + ", ".join(sorted(seg_names)))
    return "\n".join(lines)


def timeline_panel(
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str,
    ylabel: str = "MiB/s",
    width: int = 64,
    height: int = 10,
) -> str:
    """Step-function timelines (Figure 9's per-server bandwidth)."""
    if not series:
        raise AnalysisError("no timelines to plot")
    t_max = max(t for pts in series.values() for t, _ in pts)
    if t_max <= 0:
        raise AnalysisError("timelines must span positive time")
    v_max = max(v for pts in series.values() for _, v in pts)
    lines = [title]
    for si, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[si % len(_MARKERS)]
        row = [" "] * width
        pts = sorted(pts)
        for c in range(width):
            t = c / (width - 1) * t_max
            value = 0.0
            for pt, pv in pts:
                if pt <= t:
                    value = pv
                else:
                    break
            if value > 0:
                level = "#" if value > 0.66 * v_max else (marker if value > 0.33 * v_max else ".")
                row[c] = level
        lines.append(f"  {name:>12} |{''.join(row)}|")
    lines.append(f"  {'':>12}  0{'':^{width - 10}}t={t_max:.1f}s")
    lines.append(f"  y: {ylabel} ('#' high, marker mid, '.' low, ' ' idle)")
    return "\n".join(lines)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """A compact fixed-width table."""
    if not headers:
        raise AnalysisError("table needs headers")
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise AnalysisError("row length does not match headers")
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  " + "-+-".join("-" * w for w in widths))
    for row in str_rows:
        if len(row) != len(headers):
            raise AnalysisError("row length does not match headers")
        lines.append("  " + " | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
