"""Chaos harness: inject real faults, prove the orchestrator absorbs them.

``repro chaos`` runs a small but real campaign (two scenarios through
the simulation service, four repetitions each) and attacks it with one
fault class at a time:

``worker-kill``         SIGKILL a worker process mid-run;
``worker-hang``         a worker falls asleep forever mid-run;
``process-kill``        SIGKILL the *campaign driver* mid-lease, then
                        resume from its checkpoint + journal;
``checkpoint-truncate`` tear the checkpoint file in half, then resume;
``cache-truncate``      corrupt result-cache entries under a warm run;
``cache-deny``          make the cache directory unusable (every open
                        fails with ``NotADirectoryError``);
``server-kill``         SIGKILL the orchestrator *server* subprocess
                        mid-campaign with a job journaled, restart it,
                        and let client retries bridge the gap;
``conn-reset``          hard-reset (RST) the client's TCP connection
                        mid-result-stream through a byte-level proxy;
``half-frame``          truncate a server->client frame mid-body, then
                        reset — the client holds a torn frame;
``slow-client``         a slow-loris client dribbles a request one byte
                        at a time; the server must evict it, not stall.

The verdict for every injection is the same two-part contract the rest
of the repo is built on: the campaign must still *complete*, and the
surviving record store must be **byte-identical** to an undisturbed
serial baseline.  Each injection also re-runs one (scenario, rep) pair
and compares its replay fingerprint against the pre-chaos value, so a
fault can't silently poison engine determinism either.

Faults are real — actual ``SIGKILL``, actual ``sleep``, actual torn
bytes on disk — not mocks.  One-shot injection across worker respawns
is coordinated through ``O_CREAT | O_EXCL`` sentinel files.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.errors import ChaosError
from repro.methodology.parallel import ParallelProtocolRunner
from repro.methodology.plan import ExperimentPlan, ExperimentSpec
from repro.methodology.protocol import ProtocolConfig
from repro.methodology.records import RecordStore
from repro.methodology.runner import ProtocolRunner
from repro.orchestrator.supervise import CircuitBreaker, SupervisionPolicy
from repro.scenario.compile import compile_scenario
from repro.service import ServiceExecutor, cache_stats, get_service
from repro.telemetry.bus import session
from repro.telemetry.events import validate_event
from repro.verify.replay import result_fingerprint

__all__ = ["INJECTIONS", "ChaosReport", "InjectionResult", "run_chaos"]

INJECTIONS = (
    "worker-kill",
    "worker-hang",
    "process-kill",
    "checkpoint-truncate",
    "cache-truncate",
    "cache-deny",
    "server-kill",
    "conn-reset",
    "half-frame",
    "slow-client",
)

# Tight supervision so injected hangs/crashes resolve in seconds: a
# real chaos run should finish in well under a minute.
_POLICY = SupervisionPolicy(
    run_timeout_s=5.0,
    heartbeat_s=0.1,
    max_retries=3,
    backoff_base_s=0.05,
    backoff_cap_s=0.2,
)


# -- the campaign under attack -----------------------------------------------------


def _campaign(seed: int) -> tuple[ExperimentPlan, dict]:
    """A small real campaign: 2 scenarios x 4 reps through the service."""
    specs = [
        ExperimentSpec("chaos", "scenario1", {"num_nodes": n, "stripe_count": 4})
        for n in (2, 4)
    ]
    scenarios = {s.key: compile_scenario(s, seed=seed, max_nodes=4) for s in specs}
    plan = ExperimentPlan.build(
        specs,
        ProtocolConfig(repetitions=4, block_size=2, min_wait_s=0, max_wait_s=0),
        seed=seed,
    )
    return plan, scenarios


def _executor(
    scenarios: dict, seed: int, cache: bool = False, cache_dir: str | None = None
) -> ServiceExecutor:
    return ServiceExecutor(
        scenarios=scenarios, cache=cache, cache_dir=cache_dir, seed=seed
    )


def _store_text(store: RecordStore, tmp: Path, name: str) -> str:
    path = Path(tmp) / f"{name}.json"
    store.write_json(path)
    return path.read_text()


def _probe_fingerprint(scenarios: dict) -> str:
    """Replay fingerprint of one (scenario, rep) pair, cache off."""
    scenario = scenarios[sorted(scenarios)[0]]
    return result_fingerprint(get_service().run(scenario, 0, cache=False))


def _reset_breaker() -> None:
    # Injections that abuse the cache leave the process-wide service
    # breaker open; give the next injection a closed one.  Tier state
    # (hot LRUs, remote connections, the remote breaker) is dropped too:
    # injections reuse fingerprints across fresh cache directories, and
    # a stale hot tier would serve phantom hits.
    get_service().breaker = CircuitBreaker()
    get_service().reset_tiers()


# -- fault-injecting executors -----------------------------------------------------


class FaultingExecutor:
    """Wraps a real executor; the first run matching ``victim_rep`` faults.

    The sentinel file is claimed with ``O_CREAT | O_EXCL`` so exactly
    one process — across worker respawns and retries — takes the fault;
    every later attempt of the same (spec, rep) executes normally.
    """

    def __init__(
        self,
        inner: ServiceExecutor,
        mode: str,
        sentinel: str,
        victim_rep: int = 1,
        hang_s: float = 3600.0,
    ):
        self.inner = inner
        self.mode = mode
        self.sentinel = sentinel
        self.victim_rep = victim_rep
        self.hang_s = hang_s

    def _claim(self) -> bool:
        try:
            fd = os.open(self.sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def __call__(self, spec, rep):
        if rep == self.victim_rep and self._claim():
            if self.mode == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            time.sleep(self.hang_s)
        return self.inner(spec, rep)


class _KillDriverExecutor:
    """Kills its *own process* on the Nth call — used by the subprocess
    driver so the whole campaign dies mid-lease, deterministically."""

    def __init__(self, inner: ServiceExecutor, kill_on_call: int):
        self.inner = inner
        self.kill_on_call = kill_on_call
        self.calls = 0

    def __call__(self, spec, rep):
        self.calls += 1
        if self.calls == self.kill_on_call:
            os.kill(os.getpid(), signal.SIGKILL)
        return self.inner(spec, rep)


def _driver_main(checkpoint: str, seed: str | int = 0) -> None:
    """Entry point for the process-kill subprocess driver.

    Runs the chaos campaign *serially* with per-run checkpoints and an
    executor that SIGKILLs the process on its third call — so the
    campaign dies with exactly two records checkpointed and the third
    job leased in the journal.
    """
    plan, scenarios = _campaign(int(seed))
    runner = ProtocolRunner(
        _KillDriverExecutor(_executor(scenarios, int(seed)), kill_on_call=3),
        checkpoint_path=checkpoint,
        checkpoint_every=1,
    )
    runner.run(plan)


# -- injections --------------------------------------------------------------------


class _Checks:
    """Accumulates named pass/fail checks for one injection."""

    def __init__(self) -> None:
        self.problems: list[str] = []
        self.notes: list[str] = []

    def expect(self, ok: bool, label: str) -> None:
        (self.notes if ok else self.problems).append(
            label if ok else f"FAILED: {label}"
        )

    @property
    def ok(self) -> bool:
        return not self.problems

    def detail(self) -> str:
        return "; ".join(self.problems if self.problems else self.notes)


def _inject_worker_fault(
    mode: str, plan, scenarios, baseline: str, workers: int, seed: int, tmp: Path
) -> _Checks:
    checks = _Checks()
    executor = FaultingExecutor(
        _executor(scenarios, seed), mode=mode, sentinel=str(tmp / "fault.sentinel")
    )
    runner = ParallelProtocolRunner(
        executor, n_workers=workers, seed=seed, supervise=True, policy=_POLICY
    )
    store = runner.run(plan)
    checks.expect(len(store) == plan.num_runs, f"all {plan.num_runs} runs recorded")
    checks.expect(
        _store_text(store, tmp, mode) == baseline, "store byte-identical to baseline"
    )
    requeues = runner.supervision_stats["requeues"]
    checks.expect(requeues >= 1, f"fault requeued (requeues={requeues})")
    return checks


def _inject_process_kill(
    plan, scenarios, baseline: str, workers: int, seed: int, tmp: Path
) -> _Checks:
    checks = _Checks()
    ckpt = tmp / "campaign.json"
    code = (
        "import sys\n"
        "from repro.orchestrator.chaos import _driver_main\n"
        "_driver_main(sys.argv[1], sys.argv[2])\n"
    )
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parent.parent.parent)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code, str(ckpt), str(seed)],
        env=env,
        capture_output=True,
        timeout=180,
    )
    checks.expect(
        proc.returncode == -signal.SIGKILL,
        f"driver died by SIGKILL (rc={proc.returncode})",
    )
    partial = RecordStore.read_json(ckpt)
    checks.expect(
        len(partial) == 2, f"checkpoint holds 2 pre-kill records ({len(partial)})"
    )
    checks.expect(
        Path(str(ckpt) + ".journal").exists(), "journal survives the dead driver"
    )
    runner = ParallelProtocolRunner(
        _executor(scenarios, seed),
        n_workers=workers,
        seed=seed,
        supervise=True,
        policy=_POLICY,
        checkpoint_path=ckpt,
        checkpoint_every=1,
    )
    store = runner.resume(plan)
    reclaimed = runner.supervision_stats["reclaimed"]
    checks.expect(reclaimed >= 1, f"dead owner's lease reclaimed ({reclaimed})")
    checks.expect(len(store) == plan.num_runs, f"all {plan.num_runs} runs recorded")
    checks.expect(
        _store_text(store, tmp, "pk") == baseline, "store byte-identical to baseline"
    )
    checks.expect(
        not Path(str(ckpt) + ".journal").exists(),
        "journal removed after clean completion",
    )
    return checks


def _inject_checkpoint_truncate(
    plan, scenarios, baseline: str, workers: int, seed: int, tmp: Path
) -> _Checks:
    checks = _Checks()
    ckpt = tmp / "campaign.json"
    ProtocolRunner(
        _executor(scenarios, seed), checkpoint_path=ckpt, checkpoint_every=1
    ).run(plan)
    blob = ckpt.read_bytes()
    ckpt.write_bytes(blob[: len(blob) // 2])
    checks.expect(len(ckpt.read_bytes()) < len(blob), "checkpoint torn in half")
    runner = ParallelProtocolRunner(
        _executor(scenarios, seed),
        n_workers=workers,
        seed=seed,
        supervise=True,
        policy=_POLICY,
        checkpoint_path=ckpt,
    )
    store = runner.resume(plan)
    checks.expect(
        len(store) == plan.num_runs, "resume degraded to a fresh store and re-ran"
    )
    checks.expect(
        _store_text(store, tmp, "ct") == baseline, "store byte-identical to baseline"
    )
    return checks


def _inject_cache_truncate(
    plan, scenarios, baseline: str, workers: int, seed: int, tmp: Path
) -> _Checks:
    checks = _Checks()
    cache_dir = tmp / "cache"
    cold = ProtocolRunner(
        _executor(scenarios, seed, cache=True, cache_dir=str(cache_dir))
    ).run(plan)
    checks.expect(
        _store_text(cold, tmp, "cold") == baseline,
        "cold cached run byte-identical to baseline",
    )
    entries = sorted(cache_dir.glob("*/*/*.json"))
    checks.expect(len(entries) >= 2, f"cache populated ({len(entries)} entries)")
    if len(entries) >= 2:
        blob = entries[0].read_bytes()
        entries[0].write_bytes(blob[: len(blob) // 2])
        entries[1].write_text('{"torn":')
    # The disk was torn behind the process's back; drop the hot tier so
    # the warm run probes the (corrupted) tier of record like a fresh
    # process would, instead of serving pre-corruption entries from
    # memory.
    get_service().drop_memory_tiers(cache_dir)
    before = cache_stats()
    warm = ParallelProtocolRunner(
        _executor(scenarios, seed, cache=True, cache_dir=str(cache_dir)),
        n_workers=workers,
        seed=seed,
        supervise=True,
        policy=_POLICY,
    ).run(plan)
    delta = {k: v - before.get(k, 0) for k, v in cache_stats().items()}
    checks.expect(
        _store_text(warm, tmp, "warm") == baseline,
        "warm run over torn cache byte-identical to baseline",
    )
    checks.expect(
        delta.get("miss", 0) >= 2,
        f"torn entries re-executed as misses (misses={delta.get('miss', 0)})",
    )
    return checks


def _inject_cache_deny(
    plan, scenarios, baseline: str, workers: int, seed: int, tmp: Path
) -> _Checks:
    checks = _Checks()
    # A cache root *under a regular file*: every open in it raises
    # NotADirectoryError (an OSError), even when running as root —
    # chmod-based denial is a no-op for uid 0.
    denyfile = tmp / "denyfile"
    denyfile.write_text("not a directory\n")
    cache_dir = str(denyfile / "cache")
    before = cache_stats()
    serial = ProtocolRunner(
        _executor(scenarios, seed, cache=True, cache_dir=cache_dir)
    ).run(plan)
    delta = {k: v - before.get(k, 0) for k, v in cache_stats().items()}
    checks.expect(
        _store_text(serial, tmp, "deny-serial") == baseline,
        "serial campaign completed byte-identical under cache denial",
    )
    checks.expect(
        delta.get("error", 0) >= 1, f"cache faults counted ({delta.get('error', 0)})"
    )
    checks.expect(
        delta.get("degraded", 0) >= 1,
        f"breaker opened, runs degraded to cache-off ({delta.get('degraded', 0)})",
    )
    _reset_breaker()
    before = cache_stats()
    parallel = ParallelProtocolRunner(
        _executor(scenarios, seed, cache=True, cache_dir=cache_dir),
        n_workers=workers,
        seed=seed,
        supervise=True,
        policy=_POLICY,
    ).run(plan)
    delta = {k: v - before.get(k, 0) for k, v in cache_stats().items()}
    checks.expect(
        _store_text(parallel, tmp, "deny-par") == baseline,
        f"parallel ({workers}w) campaign completed byte-identical under denial",
    )
    checks.expect(
        delta.get("error", 0) >= 1,
        f"worker cache faults shipped back ({delta.get('error', 0)})",
    )
    return checks


# -- network injections (the orchestrator server under attack) ---------------------


def _remote_campaign(plan, scenarios, port: int, seed: int, **client_kw):
    """Run the chaos campaign against a server; returns (store, client stats)."""
    from repro.client import RemoteExecutor

    executor = RemoteExecutor(
        scenarios=scenarios,
        host="127.0.0.1",
        port=port,
        seed=seed,
        fallback=False,  # a masked fault must fail loudly, not run locally
        **client_kw,
    )
    try:
        store = ProtocolRunner(executor).run(plan)
        stats = dict(executor.client().stats)
    finally:
        executor.close()
    return store, stats


def _count_admits(events) -> int:
    return sum(1 for e in events if e.get("event") == "server.admit")


def _free_port() -> int:
    import socket as socketlib

    with socketlib.socket(socketlib.AF_INET, socketlib.SOCK_STREAM) as s:
        s.setsockopt(socketlib.SOL_SOCKET, socketlib.SO_REUSEADDR, 1)
        s.bind(("127.0.0.1", 0))
        return int(s.getsockname()[1])


def _start_serve(port: int, state: Path, telemetry: Path) -> subprocess.Popen:
    """A ``repro serve`` subprocess; blocks until it prints its banner."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parent.parent.parent)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--state-dir",
            str(state),
            "--port",
            str(port),
            "--telemetry",
            str(telemetry),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    banner = proc.stdout.readline() if proc.stdout else ""
    if "serving on" not in banner:
        proc.kill()
        raise ChaosError(f"serve subprocess failed to start: {banner!r}")
    return proc


class _KillServerExecutor:
    """Wraps a RemoteExecutor; on the Nth run it journals a submit on the
    server, SIGKILLs the server subprocess, and restarts it — so the WAL
    holds an unfinished job and client retries must bridge the outage."""

    def __init__(self, inner, holder: dict, kill_on_call: int = 3):
        self.inner = inner
        self.holder = holder
        self.kill_on_call = kill_on_call
        self.calls = 0

    def __call__(self, spec, rep):
        self.calls += 1
        if self.calls == self.kill_on_call and not self.holder.get("killed"):
            scenario = self.inner.scenarios[spec.key]
            self.inner.client().submit(scenario, rep)  # journaled server-side
            self.holder["killed"] = True
            proc = self.holder["proc"]
            proc.kill()
            self.holder["first_rc"] = proc.wait(timeout=30)
            self.holder["proc"] = self.holder["restart"]()
        return self.inner(spec, rep)


def _inject_server_kill(
    plan, scenarios, baseline: str, workers: int, seed: int, tmp: Path
) -> _Checks:
    from repro.client import RemoteExecutor

    checks = _Checks()
    state = tmp / "server-state"
    telemetry = tmp / "server.jsonl"
    port = _free_port()
    holder: dict = {"restart": lambda: _start_serve(port, state, telemetry)}
    holder["proc"] = holder["restart"]()
    inner = RemoteExecutor(
        scenarios=scenarios,
        host="127.0.0.1",
        port=port,
        seed=seed,
        fallback=False,
        max_attempts=30,  # generous: must outlast the ~1s restart window
    )
    try:
        store = ProtocolRunner(_KillServerExecutor(inner, holder)).run(plan)
        stats = dict(inner.client().stats)
    finally:
        inner.close()
        proc = holder.get("proc")
    checks.expect(
        holder.get("first_rc") == -signal.SIGKILL,
        f"server died by SIGKILL mid-campaign (rc={holder.get('first_rc')})",
    )
    checks.expect(len(store) == plan.num_runs, f"all {plan.num_runs} runs recorded")
    checks.expect(
        _store_text(store, tmp, "server-kill") == baseline,
        "store byte-identical to baseline across the restart",
    )
    checks.expect(
        stats.get("retries", 0) >= 1,
        f"client retries bridged the outage (retries={stats.get('retries', 0)})",
    )
    # Graceful drain: SIGTERM must finish the tail and exit 0.
    if proc is not None and proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            rc = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            rc = proc.wait(timeout=10)
        checks.expect(rc == 0, f"SIGTERM drained and exited 0 (rc={rc})")
    # Idempotency across both server generations: the telemetry file is
    # appended by both processes; each unique (fingerprint, rep) may be
    # admitted exactly once, resubmissions and recovery notwithstanding.
    admits = 0
    try:
        import json as jsonlib

        for line in telemetry.read_text().splitlines():
            if line.strip() and jsonlib.loads(line).get("event") == "server.admit":
                admits += 1
    except OSError:
        pass
    checks.expect(
        admits == plan.num_runs,
        f"each job admitted exactly once across restart (admits={admits})",
    )
    return checks


def _inject_proxy_fault(
    mode: str, plan, scenarios, baseline: str, workers: int, seed: int, tmp: Path
) -> _Checks:
    from repro.server import ServerConfig
    from repro.server.netchaos import ChaosProxy, serve_in_thread
    from repro.telemetry.bus import RingBufferSink, get_bus

    checks = _Checks()
    config = ServerConfig(
        state_dir=tmp / "state", workers=2, io_timeout_s=5.0, wait_cap_s=5.0
    )
    ring = RingBufferSink(65536)
    bus = get_bus()
    bus.attach(ring)
    try:
        with serve_in_thread(config) as server:
            # Fault after ~300 forwarded server->client bytes: past the
            # welcome and accepted frames, inside the first result frame.
            with ChaosProxy(server.port, mode=mode, fault_after_bytes=300) as proxy:
                store, stats = _remote_campaign(
                    plan, scenarios, proxy.port, seed, max_attempts=10
                )
                faulted = proxy.faulted
    finally:
        bus.detach(ring)
    checks.expect(faulted, f"proxy injected the {mode} fault")
    checks.expect(len(store) == plan.num_runs, f"all {plan.num_runs} runs recorded")
    checks.expect(
        _store_text(store, tmp, mode) == baseline,
        "store byte-identical to baseline through the fault",
    )
    checks.expect(
        stats.get("retries", 0) >= 1,
        f"client retried through the fault (retries={stats.get('retries', 0)})",
    )
    admits = _count_admits(ring.events)
    checks.expect(
        admits == plan.num_runs,
        f"resubmissions were idempotent (admits={admits})",
    )
    return checks


def _inject_slow_client(
    plan, scenarios, baseline: str, workers: int, seed: int, tmp: Path
) -> _Checks:
    import threading

    from repro.server import ServerConfig
    from repro.server.netchaos import serve_in_thread, slow_loris

    checks = _Checks()
    # A read deadline far below the loris's dribble rate: the server must
    # cut the connection instead of pinning a handler thread on it.
    config = ServerConfig(
        state_dir=tmp / "state", workers=2, io_timeout_s=0.3, wait_cap_s=5.0
    )
    outcome: dict = {}

    with serve_in_thread(config) as server:

        def _loris() -> None:
            sent, evicted = slow_loris(server.port, dribble_s=0.8)
            outcome.update(sent=sent, evicted=evicted)

        attacker = threading.Thread(target=_loris, daemon=True)
        attacker.start()
        store, _stats = _remote_campaign(
            plan, scenarios, server.port, seed, max_attempts=10
        )
        attacker.join(timeout=60)
    checks.expect(
        outcome.get("evicted") is True,
        f"slow-loris evicted by the read deadline (sent {outcome.get('sent')} bytes)",
    )
    checks.expect(
        len(store) == plan.num_runs,
        f"campaign unaffected by the loris ({len(store)} runs)",
    )
    checks.expect(
        _store_text(store, tmp, "slow") == baseline,
        "store byte-identical to baseline",
    )
    return checks


_RUNNERS: dict[str, Callable] = {
    "worker-kill": lambda *a: _inject_worker_fault("kill", *a),
    "worker-hang": lambda *a: _inject_worker_fault("hang", *a),
    "process-kill": _inject_process_kill,
    "checkpoint-truncate": _inject_checkpoint_truncate,
    "cache-truncate": _inject_cache_truncate,
    "cache-deny": _inject_cache_deny,
    "server-kill": _inject_server_kill,
    "conn-reset": lambda *a: _inject_proxy_fault("reset", *a),
    "half-frame": lambda *a: _inject_proxy_fault("truncate", *a),
    "slow-client": _inject_slow_client,
}


# -- report ------------------------------------------------------------------------


@dataclass
class InjectionResult:
    kind: str
    ok: bool
    detail: str


@dataclass
class ChaosReport:
    results: list[InjectionResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.results) and all(r.ok for r in self.results)

    def render(self) -> str:
        lines = ["chaos harness:"]
        for r in self.results:
            mark = "ok" if r.ok else "FAIL"
            lines.append(f"  [{mark:>4}] {r.kind}: {r.detail}")
        survived = sum(1 for r in self.results if r.ok)
        lines.append(f"{survived}/{len(self.results)} injections survived")
        return "\n".join(lines)


def run_chaos(
    workers: int = 4,
    seed: int = 0,
    only: list[str] | None = None,
    progress: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Run every (or the selected) fault injection; see module docstring."""
    kinds = tuple(only) if only else INJECTIONS
    unknown = [k for k in kinds if k not in INJECTIONS]
    if unknown:
        raise ChaosError(
            f"unknown injection(s) {unknown}; choose from {list(INJECTIONS)}"
        )
    if workers < 1:
        raise ChaosError(f"workers must be >= 1, got {workers}")

    report = ChaosReport()
    note = progress if progress is not None else (lambda msg: None)
    plan, scenarios = _campaign(seed)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmpdir:
        tmp = Path(tmpdir)
        note("building undisturbed serial baseline")
        baseline = _store_text(
            ProtocolRunner(_executor(scenarios, seed)).run(plan), tmp, "baseline"
        )
        baseline_fp = _probe_fingerprint(scenarios)
        for kind in kinds:
            note(f"injecting {kind}")
            with tempfile.TemporaryDirectory(prefix=f"repro-chaos-{kind}-") as sub:
                with session(ring=65536) as bus:
                    bus.emit("chaos.inject", kind=kind, target=str(sub))
                    try:
                        checks = _RUNNERS[kind](
                            plan, scenarios, baseline, workers, seed, Path(sub)
                        )
                    except Exception as exc:  # a fault escaped containment
                        checks = _Checks()
                        checks.expect(
                            False, f"campaign survived ({type(exc).__name__}: {exc})"
                        )
                    checks.expect(
                        _probe_fingerprint(scenarios) == baseline_fp,
                        "replay fingerprint unchanged",
                    )
                    bad_events = [
                        p for e in bus.ring.events for p in validate_event(e)
                    ]
                    checks.expect(
                        not bad_events,
                        f"telemetry schema-clean ({len(bad_events)} problems)",
                    )
                    bus.emit(
                        "chaos.verdict",
                        kind=kind,
                        ok=checks.ok,
                        detail=checks.detail()[:500],
                    )
            _reset_breaker()
            report.results.append(InjectionResult(kind, checks.ok, checks.detail()))
            note(f"{kind}: {'survived' if checks.ok else 'FAILED'}")
    return report
