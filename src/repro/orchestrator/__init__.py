"""Durable campaign orchestration: job queue, supervision, interrupts.

This package is the execution substrate between
:class:`repro.service.SimulationService` and the campaign runners:

* :mod:`repro.orchestrator.journal` — fsync'd JSONL write-ahead log and
  directory-sync helpers shared by the queue, record store and cache;
* :mod:`repro.orchestrator.queue` — a crash-safe persistent job queue
  of (spec key, rep) entries with queued/leased/done/failed states and
  lease reclaim for dead owners;
* :mod:`repro.orchestrator.supervise` — supervision policy (timeouts,
  heartbeats, bounded retries with backoff + jitter, in-flight window)
  and the cache-tier circuit breaker;
* :mod:`repro.orchestrator.interrupts` — flag-based SIGINT/SIGTERM
  handling for drain-then-checkpoint shutdown.

The chaos harness lives in :mod:`repro.orchestrator.chaos` but is *not*
re-exported here: it imports the runners (which import this package),
so eager re-export would create a cycle.  The CLI imports it lazily.
"""

from __future__ import annotations

from repro.orchestrator.interrupts import handle_signals, pending_signal
from repro.orchestrator.journal import Journal, fsync_dir, read_records
from repro.orchestrator.queue import DurableJobQueue, JobEntry
from repro.orchestrator.supervise import CircuitBreaker, SupervisionPolicy

__all__ = [
    "Journal",
    "fsync_dir",
    "read_records",
    "DurableJobQueue",
    "JobEntry",
    "SupervisionPolicy",
    "CircuitBreaker",
    "handle_signals",
    "pending_signal",
]
