"""Supervision policy and circuit breaker for campaign execution.

:class:`SupervisionPolicy` bundles the knobs of the worker watchdog:
per-run wall-clock timeout, heartbeat cadence and stall threshold, the
bounded retry budget with exponential backoff + deterministic jitter,
and the in-flight admission window.  It is a plain dataclass so tests
and the chaos harness can shrink every timescale without monkeypatching.

:class:`CircuitBreaker` protects the result-cache tier: repeated
``OSError``s (full disk, dead mount, permission loss) trip it open and
the campaign degrades to cache-off instead of failing; after a cooldown
it half-opens and a single success closes it again.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

from repro.errors import ConfigError

__all__ = ["SupervisionPolicy", "CircuitBreaker"]


@dataclass(frozen=True)
class SupervisionPolicy:
    """Watchdog, retry and admission-control knobs for parallel campaigns.

    ``run_timeout_s``    hard wall-clock ceiling for one (spec, rep) run;
    ``heartbeat_s``      worker heartbeat period on the telemetry bus;
    ``stall_after_s``    silence threshold before a worker is presumed
                         frozen (default: max(10 heartbeats, 5 s));
    ``max_retries``      infra-fault retries per run before quarantine;
    ``backoff_base_s``   first retry delay (doubles per attempt);
    ``backoff_cap_s``    ceiling for the exponential delay;
    ``window``           max runs in flight ahead of the merge frontier
                         (default: 4 x workers, set by the runner);
    ``max_batch``        max (spec, rep) runs dispatched to one worker
                         in a single batch message — the adaptive chunk
                         size never exceeds it (1 disables batching);
    ``lease_s``          job-queue lease duration (default: derived
                         from the run timeout with slack).
    """

    run_timeout_s: float = 120.0
    heartbeat_s: float = 0.5
    stall_after_s: float | None = None
    max_retries: int = 2
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 5.0
    window: int | None = None
    max_batch: int = 16

    def __post_init__(self) -> None:
        if self.run_timeout_s <= 0:
            raise ConfigError("run_timeout_s must be positive")
        if self.heartbeat_s <= 0:
            raise ConfigError("heartbeat_s must be positive")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ConfigError("backoff delays must be >= 0")
        if self.window is not None and self.window < 1:
            raise ConfigError("window must be >= 1")
        if self.max_batch < 1:
            raise ConfigError("max_batch must be >= 1")

    @property
    def stall_threshold_s(self) -> float:
        if self.stall_after_s is not None:
            return float(self.stall_after_s)
        return max(10.0 * self.heartbeat_s, 5.0)

    @property
    def lease_s(self) -> float:
        # A lease should comfortably outlive one timed-out attempt.
        return 2.0 * self.run_timeout_s + 30.0

    def window_for(self, n_workers: int) -> int:
        if self.window is not None:
            return int(self.window)
        return max(4 * int(n_workers), int(n_workers))

    def backoff_s(self, key: str, rep: int, attempt: int, seed: int = 0) -> float:
        """Retry delay for a given attempt: exponential + deterministic jitter.

        Jitter is derived from a hash of (key, rep, attempt, seed)
        rather than ``random`` so replays of the same campaign make the
        same scheduling decisions — determinism is the repo's core
        contract and the orchestrator must not be the layer that breaks it.
        """
        if attempt <= 0:
            return 0.0
        base = min(self.backoff_base_s * (2.0 ** (attempt - 1)), self.backoff_cap_s)
        digest = hashlib.sha256(
            f"{key}|{rep}|{attempt}|{seed}".encode()
        ).digest()
        # Jitter in [0, 0.5) of the base delay.
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return base * (1.0 + 0.5 * fraction)


@dataclass
class CircuitBreaker:
    """Classic closed → open → half-open breaker for the cache tier.

    ``record_failure`` on ``threshold`` *consecutive* failures opens the
    circuit; ``allow()`` then answers False until ``cooldown_s`` has
    elapsed, after which one probe call is let through (half-open).  A
    success closes the circuit; a failure re-opens it for another
    cooldown.  ``transitions`` collects (state, failures) tuples so the
    caller can emit telemetry without the breaker importing the bus.

    ``half_open_probes`` counts every probe the breaker let through
    while half-open.  A probe *failure* re-opens with a **fresh**
    window: ``opened_at`` restarts at the failure time and ``failures``
    resets to ``threshold`` instead of accumulating across probe
    cycles, so a breaker that has been probing for hours reports the
    same state a freshly-opened one would.
    """

    threshold: int = 3
    cooldown_s: float = 60.0
    state: str = "closed"
    failures: int = 0
    opened_at: float | None = None
    half_open_probes: int = 0
    transitions: list[tuple[str, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ConfigError("breaker threshold must be >= 1")
        if self.cooldown_s < 0:
            raise ConfigError("breaker cooldown_s must be >= 0")

    def _transition(self, state: str) -> None:
        if state != self.state:
            self.state = state
            self.transitions.append((state, self.failures))

    def allow(self, now: float | None = None) -> bool:
        """May the protected tier be touched right now?"""
        if self.state == "closed":
            return True
        clock = time.time() if now is None else now
        if self.state == "open":
            if self.opened_at is not None and clock - self.opened_at >= self.cooldown_s:
                self._transition("half-open")
                self.half_open_probes += 1
                return True
            return False
        # half-open: one probe at a time is enough; allow it.
        self.half_open_probes += 1
        return True

    def record_success(self) -> None:
        self.failures = 0
        if self.state != "closed":
            self._transition("closed")

    def record_failure(self, now: float | None = None) -> None:
        clock = time.time() if now is None else now
        if self.state == "half-open":
            # A failed probe re-opens with a *fresh* window: the count
            # restarts at the threshold (not threshold + probe cycles)
            # and the cooldown restarts at the probe-failure time.
            self.failures = self.threshold
            self.opened_at = clock
            self._transition("open")
            return
        self.failures += 1
        if self.failures >= self.threshold:
            self.opened_at = clock
            self._transition("open")

    def drain_transitions(self) -> list[tuple[str, int]]:
        """Pop accumulated state changes (for telemetry emission)."""
        out = self.transitions[:]
        self.transitions.clear()
        return out
