"""Flag-based SIGINT/SIGTERM handling for drain-then-checkpoint shutdown.

Signal handlers here never do work: they record which signal arrived and
return.  The campaign runner polls :func:`pending_signal` between merges
and, when set, stops dispatching, drains in-flight runs, checkpoints,
and raises :class:`~repro.errors.CampaignInterrupted` — the CLI turns
that into a one-line resume hint and a distinct exit code instead of a
traceback.  A second delivery of the same signal falls back to the
default disposition (immediate exit) so an impatient Ctrl-C Ctrl-C
still works.
"""

from __future__ import annotations

import contextlib
import signal
from typing import Iterator

__all__ = ["pending_signal", "clear", "handle_signals", "EXIT_INTERRUPTED"]

# Conventional "terminated by SIGINT" exit code (128 + SIGINT).
EXIT_INTERRUPTED = 130

_PENDING: str | None = None


def pending_signal() -> str | None:
    """Name of the signal received since the last :func:`clear`, if any."""
    return _PENDING


def clear() -> None:
    global _PENDING
    _PENDING = None


@contextlib.contextmanager
def handle_signals(
    signals: tuple[int, ...] = (signal.SIGINT, signal.SIGTERM),
) -> Iterator[None]:
    """Install drain-requesting handlers for the duration of a campaign.

    First delivery sets the pending flag; a repeat of the *same* signal
    restores the previous handler and re-raises it, so the process dies
    the ordinary way if draining is too slow for the operator.
    """
    previous: dict[int, object] = {}

    def _handler(signum: int, frame: object) -> None:
        global _PENDING
        name = signal.Signals(signum).name
        if _PENDING == name:
            # Second hit: give up on graceful drain.
            signal.signal(signum, previous[signum])  # type: ignore[arg-type]
            signal.raise_signal(signum)
            return
        _PENDING = name

    installed: list[int] = []
    try:
        for signum in signals:
            try:
                previous[signum] = signal.signal(signum, _handler)
            except (ValueError, OSError):
                # Not the main thread, or an unsupported signal on this
                # platform: run without graceful shutdown rather than fail.
                continue
            installed.append(signum)
        yield
    finally:
        for signum in installed:
            try:
                signal.signal(signum, previous[signum])  # type: ignore[arg-type]
            except (ValueError, OSError):
                pass
        clear()
