"""A crash-safe persistent job queue for campaign runs.

Each job is one ``(spec key, rep)`` pair of a campaign plan.  State
transitions are journaled to a JSONL write-ahead log (one fsync'd line
per transition) so that after a crash the queue can be replayed to the
exact last acknowledged state:

``queued``  → the run is planned and nobody owns it;
``leased``  → an owner (a runner process) is executing it, with a
              wall-clock lease deadline;
``done``    → the run was merged into the record store;
``failed``  → the run exhausted its retry budget (quarantined).

Recovery rule: on open, any ``leased`` entry whose lease expired *or*
whose owner pid provably no longer exists is reclaimed to ``queued``.
The journal is an optimization over the checkpoint — a torn or missing
journal only means runs are re-executed, never that results are lost —
so all reads are tolerant.
"""

from __future__ import annotations

import os
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import OrchestratorError
from repro.orchestrator.journal import Journal, read_records

__all__ = ["JobEntry", "DurableJobQueue", "default_owner", "process_start_ticks"]

_STATES = ("queued", "leased", "done", "failed")


def process_start_ticks(pid: int) -> int | None:
    """The kernel start time (clock ticks since boot) of ``pid``, or None.

    Field 22 of ``/proc/<pid>/stat`` — the one pid attribute that
    survives nothing: a reused pid gets a fresh start time, so
    ``(pid, start_ticks)`` identifies a process where a bare pid does
    not.  Returns ``None`` off Linux or when the process is gone.
    """
    try:
        text = Path(f"/proc/{pid}/stat").read_text()
        # comm (field 2) may contain spaces and parens: split after the
        # *last* ')' — everything beyond is whitespace-separated fields
        # 3.., so starttime (field 22) is index 19 of the remainder.
        rest = text[text.rindex(")") + 2 :].split()
        return int(rest[19])
    except (OSError, ValueError, IndexError):
        return None


def default_owner() -> str:
    """The owner token for this process: ``pid:<n>@<host>#<start-ticks>``.

    A bare pid misidentifies dead owners after pid reuse (the number
    comes back as someone else) and across hosts (a shared filesystem
    shows host A's journal to host B, whose pid table says nothing
    about A's processes) — so the token carries the hostname and the
    process start time too.  Legacy ``pid:<n>`` tokens from older
    journals still parse, and are treated as local.
    """
    start = process_start_ticks(os.getpid())
    return f"pid:{os.getpid()}@{socket.gethostname()}#{start if start is not None else 0}"


def _owner_parts(owner: str | None) -> tuple[int | None, str | None, int | None]:
    """``(pid, host, start_ticks)`` of an owner token; Nones where absent."""
    if not owner or not owner.startswith("pid:"):
        return None, None, None
    body = owner[len("pid:") :]
    host: str | None = None
    start: int | None = None
    if "@" in body:
        pid_text, _, rest = body.partition("@")
        host, _, start_text = rest.partition("#")
        host = host or None
        if start_text:
            try:
                start = int(start_text)
            except ValueError:
                start = None
    else:
        pid_text = body
    try:
        return int(pid_text), host, start
    except ValueError:
        return None, host, start


def _owner_pid(owner: str | None) -> int | None:
    return _owner_parts(owner)[0]


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        # EPERM etc.: the pid exists but is not ours.  Treat as alive —
        # reclaiming work from a live process would double-execute it.
        return True
    return True


def _owner_provably_dead(owner: str | None) -> bool:
    """May a lease from ``owner`` be reclaimed before it expires?

    Only when the owner is a *local* process we can prove is gone:

    * a foreign-host token is never provably dead — this host's pid
      table says nothing about another machine, so the lease must ride
      out its expiry instead;
    * a local pid that no longer exists is dead;
    * a local pid that exists but with a *different* start time is a
      pid-reuse impostor — the original owner is dead.
    """
    pid, host, start = _owner_parts(owner)
    if pid is None or pid == os.getpid():
        return False
    if host is not None and host != socket.gethostname():
        return False
    if not _pid_alive(pid):
        return True
    if start is not None and start != 0:
        current = process_start_ticks(pid)
        if current is not None and current != start:
            return True
    return False


@dataclass
class JobEntry:
    """One (spec key, rep) job and its journaled state.

    ``trace`` is the job's deterministic distributed-trace id (see
    :mod:`repro.telemetry.trace`) when the submitter carried one; it
    rides every journal record so a recovered job resumes under the
    same trace it was admitted with.
    """

    key: str
    rep: int
    state: str = "queued"
    attempt: int = 0
    owner: str | None = None
    lease_expires: float | None = None
    trace: str | None = None

    @property
    def job_id(self) -> tuple[str, int]:
        return (self.key, self.rep)


@dataclass
class DurableJobQueue:
    """Persistent (spec key, rep) job queue over a JSONL journal.

    ``open()`` replays the journal, reclaims stale leases, and records
    how many entries were reclaimed/torn so the runner can surface them
    on the telemetry bus.  All mutating methods append one journal line
    before returning, so an acknowledged transition is crash-safe.
    """

    path: Path
    owner: str = field(default_factory=default_owner)
    lease_s: float = 600.0

    def __post_init__(self) -> None:
        self.path = Path(self.path)
        self.entries: dict[tuple[str, int], JobEntry] = {}
        self.reclaimed: list[JobEntry] = []
        self.torn_lines = 0
        self._journal = Journal(self.path)
        self._opened = False

    # -- lifecycle ---------------------------------------------------------

    def open(self, now: float | None = None) -> "DurableJobQueue":
        """Replay the journal and reclaim leases from dead/expired owners."""
        if self._opened:
            return self
        records, self.torn_lines = read_records(self.path)
        for record in records:
            self._apply(record)
        clock = time.time() if now is None else now
        for entry in self.entries.values():
            if entry.state != "leased":
                continue
            expired = entry.lease_expires is not None and clock >= entry.lease_expires
            if expired or _owner_provably_dead(entry.owner):
                self.reclaimed.append(
                    JobEntry(
                        entry.key, entry.rep, "leased", entry.attempt, entry.owner
                    )
                )
                entry.state = "queued"
                entry.owner = None
                entry.lease_expires = None
                self._append(entry, op="reclaim")
        self._opened = True
        return self

    def close(self, remove: bool = False) -> None:
        """Release the journal handle; ``remove=True`` deletes the log.

        Remove only on clean campaign completion — the checkpoint is
        then authoritative and the journal would just shadow it.
        """
        if remove:
            self._journal.unlink()
        else:
            self._journal.close()
        self._opened = False

    # -- journal plumbing --------------------------------------------------

    def _record(self, entry: JobEntry, op: str) -> dict[str, Any]:
        record = {
            "op": op,
            "key": entry.key,
            "rep": entry.rep,
            "state": entry.state,
            "attempt": entry.attempt,
            "owner": entry.owner,
            "lease_expires": entry.lease_expires,
        }
        # Written only when present, so journals from trace-off
        # campaigns stay byte-for-byte what they always were.
        if entry.trace is not None:
            record["trace"] = entry.trace
        return record

    def _append(self, entry: JobEntry, op: str) -> None:
        self._journal.append(self._record(entry, op))

    def _apply(self, record: dict[str, Any]) -> None:
        try:
            key = str(record["key"])
            rep = int(record["rep"])
            state = str(record["state"])
        except (KeyError, TypeError, ValueError):
            self.torn_lines += 1
            return
        if state not in _STATES:
            self.torn_lines += 1
            return
        owner = record.get("owner")
        lease = record.get("lease_expires")
        trace = record.get("trace")
        entry = JobEntry(
            key=key,
            rep=rep,
            state=state,
            attempt=int(record.get("attempt", 0) or 0),
            owner=str(owner) if owner is not None else None,
            lease_expires=float(lease) if lease is not None else None,
            trace=str(trace) if trace is not None else None,
        )
        self.entries[entry.job_id] = entry

    # -- state transitions -------------------------------------------------

    def _require_open(self) -> None:
        if not self._opened:
            raise OrchestratorError("job queue used before open()")

    def _admit(self, key: str, rep: int, trace: str | None = None) -> JobEntry | None:
        """Make (key, rep) pending; returns the entry when it changed.

        The caller (the runner) declares this work *is* planned and not
        in the record store — so an entry a previous campaign attempt
        marked ``done`` or ``failed`` is reopened to ``queued`` (resume
        retries quarantined failures; the store, not the journal, is
        authoritative about completed work).
        """
        entry = self.entries.get((key, int(rep)))
        if entry is None:
            entry = JobEntry(key=key, rep=int(rep), trace=trace)
            self.entries[entry.job_id] = entry
            return entry
        if trace is not None and entry.trace is None:
            entry.trace = trace
        if entry.state in ("done", "failed"):
            entry.state = "queued"
            entry.owner = None
            entry.lease_expires = None
            return entry
        return None

    def enqueue(self, key: str, rep: int, trace: str | None = None) -> JobEntry:
        """Add a job as ``queued``; idempotent for already-pending jobs."""
        self._require_open()
        changed = self._admit(key, rep, trace=trace)
        if changed is not None:
            self._append(changed, op="enqueue")
        return self.entries[(key, int(rep))]

    def enqueue_many(self, jobs: list[tuple[str, int]] | list[tuple[str, int, str | None]]) -> int:
        """Batch enqueue under one fsync; returns how many changed state.

        Accepts ``(key, rep)`` pairs or ``(key, rep, trace)`` triples.
        """
        self._require_open()
        fresh: list[JobEntry] = []
        for job in jobs:
            key, rep = job[0], job[1]
            trace = job[2] if len(job) > 2 else None
            changed = self._admit(key, rep, trace=trace)
            if changed is not None:
                fresh.append(changed)
        self._journal.append_many([self._record(e, "enqueue") for e in fresh])
        return len(fresh)

    def lease(self, key: str, rep: int, now: float | None = None) -> JobEntry:
        """Take ownership of a queued job for ``lease_s`` seconds."""
        self._require_open()
        entry = self.entries.get((key, int(rep)))
        if entry is None:
            entry = self.enqueue(key, rep)
        if entry.state in ("done", "failed"):
            raise OrchestratorError(
                f"cannot lease {entry.state} job ({key!r}, rep {rep})"
            )
        clock = time.time() if now is None else now
        entry.state = "leased"
        entry.owner = self.owner
        entry.lease_expires = clock + float(self.lease_s)
        self._append(entry, op="lease")
        return entry

    def lease_many(
        self, jobs: list[tuple[str, int]], now: float | None = None
    ) -> list[JobEntry]:
        """Lease a batch of queued jobs under one fsync.

        Batched dispatch hands a whole chunk of runs to one worker; the
        journal still records one lease per job (resume sees the same
        per-job states either way), but they are appended and fsync'd as
        a single write, like :meth:`enqueue_many`.
        """
        self._require_open()
        clock = time.time() if now is None else now
        records: list[dict[str, Any]] = []
        leased: list[JobEntry] = []
        for key, rep in jobs:
            entry = self.entries.get((key, int(rep)))
            if entry is None:
                entry = JobEntry(key=key, rep=int(rep))
                self.entries[entry.job_id] = entry
                records.append(self._record(entry, "enqueue"))
            if entry.state in ("done", "failed"):
                raise OrchestratorError(
                    f"cannot lease {entry.state} job ({key!r}, rep {rep})"
                )
            entry.state = "leased"
            entry.owner = self.owner
            entry.lease_expires = clock + float(self.lease_s)
            records.append(self._record(entry, "lease"))
            leased.append(entry)
        self._journal.append_many(records)
        return leased

    def requeue(self, key: str, rep: int, attempt: int | None = None) -> JobEntry:
        """Return a leased job to ``queued`` (retry after a worker fault)."""
        self._require_open()
        entry = self.entries.get((key, int(rep)))
        if entry is None:
            entry = self.enqueue(key, rep)
        entry.state = "queued"
        entry.owner = None
        entry.lease_expires = None
        if attempt is not None:
            entry.attempt = int(attempt)
        else:
            entry.attempt += 1
        self._append(entry, op="requeue")
        return entry

    def mark_done(self, key: str, rep: int) -> JobEntry:
        """Record that a job's result was merged into the store."""
        return self._finish(key, rep, "done")

    def mark_failed(self, key: str, rep: int) -> JobEntry:
        """Record that a job was quarantined (retry budget exhausted)."""
        return self._finish(key, rep, "failed")

    def _finish(self, key: str, rep: int, state: str) -> JobEntry:
        self._require_open()
        entry = self.entries.get((key, int(rep)))
        if entry is None:
            entry = JobEntry(key=key, rep=int(rep))
            self.entries[entry.job_id] = entry
        entry.state = state
        entry.owner = None
        entry.lease_expires = None
        self._append(entry, op=state)
        return entry

    # -- introspection -----------------------------------------------------

    def counts(self) -> dict[str, int]:
        out = {state: 0 for state in _STATES}
        for entry in self.entries.values():
            out[entry.state] += 1
        return out

    def pending(self) -> list[JobEntry]:
        """Jobs still to execute (queued or leased), in insertion order."""
        return [e for e in self.entries.values() if e.state in ("queued", "leased")]
