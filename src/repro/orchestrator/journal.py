"""Write-ahead journaling primitives: fsync'd appends, tolerant reads.

The durability contract the orchestrator is built on:

* :func:`fsync_dir` — after an ``os.replace`` the *parent directory*
  must be fsynced too, or a crash can lose the rename itself (the file
  data is safe but the directory entry may still point at the old
  inode, or at nothing for a freshly created file);
* :class:`Journal` — an append-only JSONL log where every record is
  flushed *and fsynced* before the append returns, so a record the
  caller saw acknowledged survives a power cut;
* :func:`read_records` — a reader that treats a torn final line (the
  signature of a crash mid-append) as end-of-log instead of an error,
  and counts any interior garbage instead of raising.

These helpers are deliberately dependency-free so the record store and
the result cache can share them without import cycles.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator

__all__ = ["fsync_dir", "Journal", "read_records"]


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so renames/creations inside it are durable.

    Best effort: some file systems (and some CI sandboxes) refuse to
    open directories for fsync — losing the *extra* durability there is
    acceptable, failing the write that already succeeded is not.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class Journal:
    """An append-only JSONL log with per-append fsync.

    Used as the durable job queue's write-ahead log: one JSON object
    per line, appended with a **single ``os.write`` on an ``O_APPEND``
    descriptor** and fsynced before the append returns, so an
    acknowledged state transition is crash-safe.  The unbuffered
    whole-line write also makes concurrent appenders safe: POSIX
    ``O_APPEND`` writes are atomic with respect to each other, so two
    processes journaling to the same WAL can interleave *lines* but
    never the bytes inside a line (a buffered text handle would split
    large records across multiple write syscalls and could).  The
    descriptor stays open across appends; :meth:`close` releases it.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fd: int | None = None

    def _handle(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            created = not self.path.exists()
            self._fd = os.open(
                str(self.path), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
            )
            if created:
                # The journal file itself must survive a crash, not just
                # its contents: sync the directory entry.
                fsync_dir(self.path.parent)
        return self._fd

    @staticmethod
    def _encode(record: dict[str, Any]) -> bytes:
        return (
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")

    @staticmethod
    def _write_all(fd: int, blob: bytes) -> None:
        # A single os.write normally takes the whole line; a short write
        # (signal, quota edge) is continued — the O_APPEND atomicity we
        # rely on holds per syscall, and every record fits one syscall
        # on regular files in practice.
        view = memoryview(blob)
        while view:
            written = os.write(fd, view)
            view = view[written:]

    def append(self, record: dict[str, Any]) -> None:
        """Append one record; returns only after it is on stable storage."""
        fd = self._handle()
        self._write_all(fd, self._encode(record))
        os.fsync(fd)

    def append_many(self, records: list[dict[str, Any]]) -> None:
        """Append a batch under a single fsync (one barrier, not N)."""
        if not records:
            return
        fd = self._handle()
        self._write_all(fd, b"".join(self._encode(r) for r in records))
        os.fsync(fd)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def unlink(self) -> None:
        """Close and remove the journal file (campaign completed cleanly)."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass
        else:
            fsync_dir(self.path.parent)

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_records(path: str | Path) -> tuple[list[dict[str, Any]], int]:
    """Replay a journal tolerantly: ``(records, torn_lines)``.

    A line that fails to decode — the torn tail of a crashed append, or
    interior corruption — is counted and skipped, never raised: the
    journal is an optimization over re-executing work, so a damaged
    record must degrade to "that work is requeued", not to a crash.
    A missing file is simply an empty journal.
    """
    records: list[dict[str, Any]] = []
    torn = 0
    try:
        text = Path(path).read_text()
    except OSError:
        return records, torn
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            torn += 1
            continue
        if isinstance(obj, dict):
            records.append(obj)
        else:
            torn += 1
    return records, torn


def iter_jsonl(path: str | Path) -> Iterator[dict[str, Any]]:  # pragma: no cover
    """Convenience: yield the decodable records of a JSONL file."""
    records, _ = read_records(path)
    yield from records
