"""Flow-level network/storage simulation.

The engine models each steady data stream (one compute node writing to
one storage target) as a *fluid flow* crossing a set of capacitated
resources (NIC links, switch fabric, server ingest, server backplane,
target service).  At every instant the rates of all active flows are
the **max-min fair** allocation subject to the resource capacities —
the standard fluid abstraction of TCP-like fair sharing (progressive
filling).  The simulation advances through piecewise-constant segments
delimited by flow arrivals, flow completions and noise epochs.

A per-flow cap derived from the blocking-request latency model
(:mod:`repro.netsim.latency`) accounts for the fact that IOR processes
issue synchronous POSIX writes and therefore cannot fully pipeline.
"""

from .flows import FluidFlow, FlowStats
from .latency import BlockingRequestModel, NoLatency
from .maxmin import max_min_rates, solve_with_caps
from .fluid import (
    CapacityProvider,
    ConstantCapacity,
    FlowTraceEvent,
    FluidSimulation,
    FluidResult,
    NoiseModel,
    NoNoise,
    ResourceContext,
)

__all__ = [
    "FluidFlow",
    "FlowStats",
    "max_min_rates",
    "solve_with_caps",
    "BlockingRequestModel",
    "NoLatency",
    "CapacityProvider",
    "ConstantCapacity",
    "ResourceContext",
    "NoiseModel",
    "NoNoise",
    "FlowTraceEvent",
    "FluidSimulation",
    "FluidResult",
]
