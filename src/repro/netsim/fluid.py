"""The fluid (piecewise-constant-rate) simulation engine.

Time is partitioned into segments delimited by flow arrivals, flow
completions and noise epochs.  Within a segment every capacity is
constant, so rates are the max-min fair allocation and volumes advance
linearly; the engine finds the earliest next boundary, integrates, and
repeats.  Complexity is ``O(segments * maxmin)``, which for the paper's
experiments (a few hundred flows, tens of segments) is sub-millisecond
per run — this is what makes 100-repetition protocols practical.

Capacities may depend on the set of active flows through the resource
(e.g. a storage target whose service rate grows with the number of
outstanding requests) and on multiplicative noise resampled every
*epoch* (the production-system variability of Section III-C).
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_right
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any, Iterable, Protocol, Sequence

import numpy as np

from ..errors import FlowError, SimulationError
from ..simcore.monitor import TimeSeries
from ..telemetry.bus import get_bus
from ..telemetry.profiling import get_profiler
from .flows import FlowStats, FluidFlow
from .latency import BlockingRequestModel, NoLatency
from .maxmin import MaxMinSolver

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.client_model import RetryPolicy
    from ..verify.invariants import RuntimeChecker

__all__ = [
    "ResourceContext",
    "CapacityProvider",
    "ConstantCapacity",
    "NoiseModel",
    "NoNoise",
    "FlowTraceEvent",
    "FluidSimulation",
    "FluidResult",
    "SegmentDetail",
]

_BYTES_EPS = 1e-3  # a flow with less than this many bytes left is done
# Segment solve-cache entries kept per flow population before clearing.
# Keyed on the capacity vector's bytes: noise epochs revisit the same
# levels, and noiseless runs hit the same key every segment.
_SEG_CACHE_SIZE = 128
# A resource counts as *binding* in a segment when its usage reaches
# this fraction of capacity: blocking-request latency caps legitimately
# hold flows a few percent below the saturating resource, so exact
# saturation would under-attribute (see analysis.bottleneck).
_BINDING_UTILIZATION = 0.94
_TIME_EPS = 1e-12
_RATE_EPS = 1e-9  # MiB/s below which a flow counts as stalled (no progress)


@dataclass(frozen=True)
class ResourceContext:
    """What a capacity provider may depend on, for one segment."""

    time: float
    depth: float  # sum of depth weights of active flows through the resource
    nflows: int  # number of active flows through the resource
    noise: float  # multiplicative noise for this epoch (1.0 when noiseless)
    distinct: int = 1  # distinct values of the provider's ``distinct_tag``


def _distinct_tag_of(provider: object) -> str | None:
    """Tag key a provider wants counted across its active flows, if any."""
    return getattr(provider, "distinct_tag", None)


class CapacityProvider(Protocol):
    """Anything that yields a capacity (MiB/s) for a segment context."""

    def capacity(self, ctx: ResourceContext) -> float:  # pragma: no cover
        ...


@dataclass(frozen=True)
class ConstantCapacity:
    """A fixed-capacity resource (a plain link); noise still applies."""

    mib_s: float

    def __post_init__(self) -> None:
        if self.mib_s < 0:
            raise FlowError(f"negative capacity {self.mib_s}")

    def capacity(self, ctx: ResourceContext) -> float:
        return self.mib_s * ctx.noise


class NoiseModel(Protocol):
    """Multiplicative capacity noise, piecewise-constant per epoch."""

    @property
    def epoch_length_s(self) -> float:  # pragma: no cover
        """Correlation time of the noise (``inf`` = one draw per run)."""
        ...

    def multiplier(
        self, resource_id: str, epoch: int, rng: np.random.Generator
    ) -> float:  # pragma: no cover
        ...


class NoNoise:
    """The noiseless model: every multiplier is exactly 1."""

    epoch_length_s = math.inf

    def multiplier(self, resource_id: str, epoch: int, rng: np.random.Generator) -> float:
        return 1.0


@dataclass(frozen=True)
class SegmentDetail:
    """One piecewise-constant segment's constraint picture.

    ``binding`` lists the resources that were saturated during the
    segment (the constraints that set the rates); ``utilization`` maps
    every resource with active flows to usage/capacity;
    ``latency_capped`` counts flows held below their fair share by the
    blocking-request cap rather than by any resource.
    """

    start: float
    duration: float
    binding: tuple[str, ...]
    utilization: dict[str, float]
    latency_capped: int


@dataclass(frozen=True)
class FlowTraceEvent:
    """One client robustness decision: a chunk-request timeout outcome.

    ``action`` is ``"retry"`` (the flow backs off and will be retried)
    or ``"abandon"`` (retries exhausted; the flow ends incomplete).
    ``attempt`` is the 1-based count of timeouts the flow has suffered.
    """

    time: float
    flow_id: str
    action: str
    attempt: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "time": float(self.time),
            "flow_id": self.flow_id,
            "action": self.action,
            "attempt": int(self.attempt),
        }


@dataclass
class FluidResult:
    """Outcome of a fluid simulation run."""

    stats: list[FlowStats]
    makespan: float
    segments: int
    resource_series: dict[str, TimeSeries] = field(default_factory=dict)
    segment_details: list[SegmentDetail] = field(default_factory=list)
    trace: list[FlowTraceEvent] = field(default_factory=list)

    def total_delivered(self, stats: Sequence[FlowStats] | None = None) -> float:
        """Bytes that actually moved (equals total_volume when no faults)."""
        chosen = self.stats if stats is None else list(stats)
        return float(sum(s.payload_bytes for s in chosen))

    def stats_by_tag(self, key: str, value: object) -> list[FlowStats]:
        """Completion records of flows tagged ``key=value``."""
        return [s for s in self.stats if s.tags.get(key) == value]

    def span(self, stats: Sequence[FlowStats] | None = None) -> tuple[float, float]:
        """(earliest start, latest finish) over the given flows (or all)."""
        chosen = self.stats if stats is None else list(stats)
        if not chosen:
            raise FlowError("no flows to span")
        return (min(s.started_at for s in chosen), max(s.finished_at for s in chosen))

    def total_volume(self, stats: Sequence[FlowStats] | None = None) -> float:
        chosen = self.stats if stats is None else list(stats)
        return float(sum(s.volume_bytes for s in chosen))


class FluidSimulation:
    """Build-and-run container for one fluid simulation.

    Typical use::

        sim = FluidSimulation()
        sim.add_resource("link:a", 1100.0)
        sim.add_flow(FluidFlow("f1", ("link:a",), volume_bytes=32 * GiB))
        result = sim.run()
    """

    def __init__(
        self,
        noise: NoiseModel | None = None,
        latency: BlockingRequestModel | NoLatency | None = None,
        cap_iterations: int = 4,
        retry: "RetryPolicy | None" = None,
        checker: "RuntimeChecker | None" = None,
    ):
        self._providers: dict[str, CapacityProvider] = {}
        self._flows: list[FluidFlow] = []
        self._flow_ids: set[str] = set()
        self.noise: NoiseModel = noise if noise is not None else NoNoise()
        self.latency = latency if latency is not None else NoLatency()
        self.cap_iterations = cap_iterations
        # Runtime invariant checker (see repro.verify.invariants): when
        # set, every segment's solve is certified and byte conservation
        # is enforced at the end of the run.  ``None`` costs nothing.
        self.checker = checker
        # Client robustness: when set, a flow whose rate stays at zero
        # for ``retry.timeout_s`` is pulled off the wire, backs off, and
        # re-enters; after ``retry.max_retries`` timeouts it is abandoned
        # and the run degrades to a partial result.  When ``None`` (the
        # default) a permanently-stalled flow is a loud SimulationError,
        # exactly as before fault injection existed.
        self.retry = retry

    # -- construction --------------------------------------------------------

    def add_resource(self, resource_id: str, capacity: CapacityProvider | float) -> None:
        """Register a resource; a bare float means a constant capacity."""
        if resource_id in self._providers:
            raise FlowError(f"duplicate resource {resource_id!r}")
        if isinstance(capacity, (int, float)):
            capacity = ConstantCapacity(float(capacity))
        self._providers[resource_id] = capacity

    def has_resource(self, resource_id: str) -> bool:
        return resource_id in self._providers

    def add_flow(self, flow: FluidFlow) -> None:
        missing = [r for r in flow.resources if r not in self._providers]
        if missing:
            raise FlowError(f"flow {flow.flow_id!r}: unknown resources {missing}")
        if flow.flow_id in self._flow_ids:
            raise FlowError(f"duplicate flow id {flow.flow_id!r}")
        self._flow_ids.add(flow.flow_id)
        self._flows.append(flow)

    def add_flows(self, flows: Iterable[FluidFlow]) -> None:
        for flow in flows:
            self.add_flow(flow)

    # -- execution -------------------------------------------------------------

    def run(
        self,
        rng: np.random.Generator | None = None,
        observe: Sequence[str] = (),
        max_time: float = 1e7,
        detail: bool = False,
        breakpoints: Sequence[float] = (),
    ) -> FluidResult:
        """Run to completion (or abandonment) of all flows.

        Parameters
        ----------
        rng:
            Generator for the noise model (unused when noiseless).
        observe:
            Resource ids whose aggregate throughput should be recorded
            as a :class:`~repro.simcore.monitor.TimeSeries` (this is the
            data behind the paper's Figure 9).
        max_time:
            Hard stop to turn accidental stalls into loud errors.
        detail:
            Record a :class:`SegmentDetail` per segment (binding
            resources, utilizations) for bottleneck attribution.
        breakpoints:
            Extra segment boundaries (instants at which time-dependent
            capacities change, e.g. fault starts/recoveries), so no
            capacity transition is averaged into a segment.
        """
        trace: list[FlowTraceEvent] = []
        try:
            return self._run(rng, observe, max_time, detail, breakpoints, trace)
        except Exception as exc:
            # A failed run has no FluidResult to carry its trace, so the
            # retry/abandon history rides on the exception instead —
            # ProtocolRunner persists it into FailedRunRecord so resumed
            # campaign reports stay complete.
            exc.flow_trace = tuple(e.to_dict() for e in trace)
            exc.flow_retries = sum(1 for e in trace if e.action == "retry")
            raise

    def _run(
        self,
        rng: np.random.Generator | None,
        observe: Sequence[str],
        max_time: float,
        detail: bool,
        breakpoints: Sequence[float],
        trace: list[FlowTraceEvent],
    ) -> FluidResult:
        if not self._flows:
            raise FlowError("no flows to simulate")
        for rid in observe:
            if rid not in self._providers:
                raise FlowError(f"cannot observe unknown resource {rid!r}")

        # Telemetry handles, hoisted once per run.  With no sinks and no
        # profiler these reduce to boolean attribute checks in the loop;
        # neither touches the RNG or any simulation state, which is what
        # keeps telemetry-off runs byte-identical.
        bus = get_bus()
        prof = get_profiler()
        profiled = prof.enabled
        solver_iterations = 0
        solve_cache_hits = 0

        rids = list(self._providers)
        rid_index = {rid: i for i, rid in enumerate(rids)}
        tag_by_index = [_distinct_tag_of(self._providers[rid]) for rid in rids]
        flows = sorted(self._flows, key=lambda f: (f.start_time, f.flow_id))
        checker = self.checker
        if checker is not None:
            checker.bind_resources(rids)
            for flow in flows:
                checker.expect_bytes(
                    [rid_index[r] for r in flow.resources], flow.volume_bytes
                )
        pending = list(flows)
        active: list[FluidFlow] = []
        series = {rid: TimeSeries() for rid in observe}
        bounds = tuple(sorted({float(b) for b in breakpoints}))
        # Flows sleeping out a retry backoff: (ready_time, seq, flow).
        retry_heap: list[tuple[float, int, FluidFlow]] = []
        retry_seq = 0

        epoch_len = self.noise.epoch_length_s
        has_epochs = math.isfinite(epoch_len)
        noise_rng = rng
        multipliers = np.ones(len(rids))
        current_epoch = -1

        def resample_noise(epoch: int) -> None:
            nonlocal current_epoch
            if epoch == current_epoch:
                return
            current_epoch = epoch
            if isinstance(self.noise, NoNoise) or noise_rng is None:
                return
            for i, rid in enumerate(rids):
                multipliers[i] = self.noise.multiplier(rid, epoch, noise_rng)

        now = pending[0].start_time
        segments = 0
        details: list[SegmentDetail] = []
        # Membership-dependent state, rebuilt only when the active flow
        # population changes (arrival, retry re-entry, completion,
        # abandonment).  Capacities still vary per segment with time and
        # noise, so the solved rates are cached per capacity vector.
        members_dirty = True
        memberships: list[list[int]] = []
        depth = np.zeros(len(rids))
        nflows = np.zeros(len(rids), dtype=int)
        distinct: dict[int, set] = {}
        nprocs = np.zeros(0, dtype=int)
        req_sizes = np.zeros(0)
        solver: MaxMinSolver | None = None
        seg_cache: dict[bytes, tuple] = {}
        while pending or active or retry_heap:
            # Admit arrivals and due retries.
            while pending and pending[0].start_time <= now + _TIME_EPS:
                flow = pending.pop(0)
                flow.started_at = now
                active.append(flow)
                members_dirty = True
                if bus.debug:
                    bus.emit("flow.start", t=now, flow_id=flow.flow_id)
            while retry_heap and retry_heap[0][0] <= now + _TIME_EPS:
                active.append(heapq.heappop(retry_heap)[2])
                members_dirty = True
            if not active:
                # Idle gap until the next arrival or retry wake-up: the
                # observed series must record zero throughput, or
                # integration would extend the previous segment's rate
                # across the gap.
                for rid in observe:
                    series[rid].append(now, 0.0)
                next_times = [pending[0].start_time] if pending else []
                if retry_heap:
                    next_times.append(retry_heap[0][0])
                now = min(next_times)
                continue

            epoch = int(now / epoch_len) if has_epochs else 0
            resample_noise(epoch)

            # Per-resource context: depth, flow count and distinct tags.
            # All of it — and the solver's incidence matrix — depends
            # only on the active population, not on time or noise.
            if members_dirty:
                depth = np.zeros(len(rids))
                nflows = np.zeros(len(rids), dtype=int)
                distinct = {}
                memberships = []
                for flow in active:
                    idxs = [rid_index[r] for r in flow.resources]
                    memberships.append(idxs)
                    for i in idxs:
                        depth[i] += flow.weight
                        nflows[i] += 1
                        tag = tag_by_index[i]
                        if tag is not None:
                            distinct.setdefault(i, set()).add(flow.tags.get(tag))
                nprocs = np.array([f.nprocs for f in active])
                req_sizes = np.array(
                    [
                        f.request_size_bytes if f.request_size_bytes is not None else np.nan
                        for f in active
                    ]
                )
                solver = MaxMinSolver(memberships, len(rids))
                seg_cache = {}
                members_dirty = False

            capacities = np.array(
                [
                    self._providers[rid].capacity(
                        ResourceContext(
                            now,
                            depth[i],
                            int(nflows[i]),
                            multipliers[i],
                            len(distinct.get(i, ())) or 1,
                        )
                    )
                    for i, rid in enumerate(rids)
                ]
            )
            if np.any(capacities < 0):
                raise SimulationError("capacity provider returned a negative capacity")

            # Latency caps are seeded from the uncapped (offered) shares
            # and only allowed to rise afterwards (see solve_with_caps).
            # ``caps_used`` is the cap vector the final ``rates`` were
            # solved against (``caps`` may already hold the next
            # iterate), which is what the fairness certificate needs.
            # Identical capacity vectors (same noise level, unchanged
            # population) reuse the previous fixed point wholesale.
            solve_t0 = perf_counter() if profiled else 0.0
            seg_key = capacities.tobytes()
            cached = seg_cache.get(seg_key)
            if cached is not None:
                rates, caps, caps_used, iterations = cached
                solve_cache_hits += 1
            else:
                iterations = 1
                rates = solver.solve(capacities)
                caps = self.latency.flow_caps(rates, nprocs, req_sizes)
                caps_used = None
                for _ in range(self.cap_iterations):
                    caps_used = caps
                    iterations += 1
                    rates = solver.solve(capacities, caps)
                    new_caps = np.maximum(caps, self.latency.flow_caps(rates, nprocs, req_sizes))
                    if np.allclose(new_caps, caps, rtol=1e-6, atol=1e-9):
                        break
                    caps = new_caps
                if len(seg_cache) >= _SEG_CACHE_SIZE:
                    seg_cache.clear()
                seg_cache[seg_key] = (rates, caps, caps_used, iterations)
            solver_iterations += iterations
            if profiled:
                prof.record("fluid.solve", perf_counter() - solve_t0)
            for flow, rate in zip(active, rates):
                flow.rate_mib_s = float(rate)
            if self.retry is not None:
                # A zero-rate flow is a chunk request making no progress:
                # start (or keep) its stall clock; any progress clears it.
                for flow, rate in zip(active, rates):
                    if rate <= _RATE_EPS:
                        if flow.stalled_since is None:
                            flow.stalled_since = now
                    else:
                        flow.stalled_since = None

            # Segment boundary: earliest of completion / arrival / epoch
            # end / capacity breakpoint / retry wake-up / stall timeout.
            dt = math.inf
            rates_bytes = rates * 1024.0**2
            for flow, rb in zip(active, rates_bytes):
                if rb > 0:
                    dt = min(dt, flow.remaining_bytes / rb)
            if pending:
                dt = min(dt, pending[0].start_time - now)
            if has_epochs:
                dt = min(dt, (epoch + 1) * epoch_len - now)
            if bounds:
                nxt = bisect_right(bounds, now + _TIME_EPS)
                if nxt < len(bounds):
                    dt = min(dt, bounds[nxt] - now)
            if retry_heap:
                dt = min(dt, retry_heap[0][0] - now)
            if self.retry is not None:
                for flow in active:
                    if flow.stalled_since is not None:
                        dt = min(dt, flow.stalled_since + self.retry.timeout_s - now)
            if not math.isfinite(dt) or dt < 0:
                stuck = [f.flow_id for f in active]
                raise SimulationError(f"fluid simulation stalled at t={now}: flows {stuck}")
            dt = max(dt, 0.0)

            if bus.debug:
                bus.emit(
                    "segment.solve",
                    t=now,
                    dt=float(dt),
                    active=len(active),
                    iterations=iterations,
                )

            if checker is not None:
                checker.on_segment(
                    now,
                    dt,
                    capacities,
                    memberships,
                    rates,
                    flow_caps=caps_used,
                    flow_labels=[f.flow_id for f in active],
                )

            for rid in observe:
                i = rid_index[rid]
                throughput = sum(r for idxs, r in zip(memberships, rates) if i in idxs)
                series[rid].append(now, float(throughput))

            if detail:
                usage = np.zeros(len(rids))
                for idxs, rate in zip(memberships, rates):
                    for i in idxs:
                        usage[i] += rate
                utilization = {}
                binding = []
                for i, rid in enumerate(rids):
                    if nflows[i] == 0:
                        continue
                    cap = capacities[i]
                    utilization[rid] = float(usage[i] / cap) if cap > 0 else 1.0
                    if usage[i] >= _BINDING_UTILIZATION * cap:
                        binding.append(rid)
                latency_capped = int(np.sum((caps < np.inf) & (rates >= caps - 1e-9)))
                details.append(
                    SegmentDetail(
                        start=now,
                        duration=dt,
                        binding=tuple(binding),
                        utilization=utilization,
                        latency_capped=latency_capped,
                    )
                )

            # Integrate the segment.
            now += dt
            if now > max_time:
                raise SimulationError(f"fluid simulation exceeded max_time={max_time}")
            still_active: list[FluidFlow] = []
            for flow, rb in zip(active, rates_bytes):
                flow.remaining_bytes -= rb * dt
                if flow.remaining_bytes <= _BYTES_EPS:
                    flow.remaining_bytes = 0.0
                    flow.finished_at = now
                elif (
                    self.retry is not None
                    and flow.stalled_since is not None
                    and now >= flow.stalled_since + self.retry.timeout_s - _TIME_EPS
                ):
                    # Chunk-request timeout: back off and retry, or give
                    # up once the retry budget is spent.
                    flow.attempts += 1
                    flow.stalled_since = None
                    if flow.attempts > self.retry.max_retries:
                        flow.abandoned = True
                        flow.finished_at = now
                        trace.append(FlowTraceEvent(now, flow.flow_id, "abandon", flow.attempts))
                        if bus.enabled:
                            bus.emit(
                                "flow.abandon", t=now, flow_id=flow.flow_id, attempt=flow.attempts
                            )
                        if checker is not None:
                            checker.retract_bytes(
                                [rid_index[r] for r in flow.resources], flow.remaining_bytes
                            )
                    else:
                        trace.append(FlowTraceEvent(now, flow.flow_id, "retry", flow.attempts))
                        if bus.enabled:
                            bus.emit(
                                "flow.retry", t=now, flow_id=flow.flow_id, attempt=flow.attempts
                            )
                        retry_seq += 1
                        ready = now + self.retry.backoff_s(flow.attempts)
                        heapq.heappush(retry_heap, (ready, retry_seq, flow))
                else:
                    still_active.append(flow)
            if len(still_active) != len(active):
                members_dirty = True
            active = still_active
            segments += 1

        for rid in observe:
            series[rid].append(now, 0.0)

        if checker is not None:
            for flow in flows:
                checker.flow_complete(
                    flow.flow_id, flow.volume_bytes, flow.remaining_bytes, flow.abandoned
                )
            checker.finish()

        if bus.enabled:
            bus.metrics.counter("engine.segments_solved", engine="fluid").inc(segments)
            bus.metrics.counter("engine.solver_iterations", engine="fluid").inc(
                solver_iterations
            )
            bus.metrics.counter("engine.solve_cache_hits", engine="fluid").inc(
                solve_cache_hits
            )

        stats = [f.stats() for f in flows]
        makespan = max(s.finished_at for s in stats)
        return FluidResult(
            stats=stats,
            makespan=makespan,
            segments=segments,
            resource_series=series,
            segment_details=details,
            trace=trace,
        )
