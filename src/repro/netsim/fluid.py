"""The fluid (piecewise-constant-rate) simulation engine.

Time is partitioned into segments delimited by flow arrivals, flow
completions and noise epochs.  Within a segment every capacity is
constant, so rates are the max-min fair allocation and volumes advance
linearly; the engine finds the earliest next boundary, integrates, and
repeats.  Complexity is ``O(segments * maxmin)``, which for the paper's
experiments (a few hundred flows, tens of segments) is sub-millisecond
per run — this is what makes 100-repetition protocols practical.

Capacities may depend on the set of active flows through the resource
(e.g. a storage target whose service rate grows with the number of
outstanding requests) and on multiplicative noise resampled every
*epoch* (the production-system variability of Section III-C).
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_right
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Any, Iterable, Protocol, Sequence

import numpy as np

from ..errors import FlowError, SimulationError
from ..simcore.monitor import TimeSeries
from ..telemetry.bus import get_bus
from ..telemetry.profiling import get_profiler
from .flows import FlowStats, FluidFlow
from .latency import BlockingRequestModel, NoLatency
from .maxmin import MaxMinSolver

if TYPE_CHECKING:  # pragma: no cover
    from ..storage.client_model import RetryPolicy
    from ..verify.invariants import RuntimeChecker

__all__ = [
    "ResourceContext",
    "CapacityProvider",
    "ConstantCapacity",
    "NoiseModel",
    "NoNoise",
    "FlowTraceEvent",
    "FluidSimulation",
    "FluidResult",
    "SegmentDetail",
]

_BYTES_EPS = 1e-3  # a flow with less than this many bytes left is done
# Segment solve-cache entries kept per flow population before clearing.
# Keyed on the capacity vector's bytes: noise epochs revisit the same
# levels, and noiseless runs hit the same key every segment.
_SEG_CACHE_SIZE = 128
# A resource counts as *binding* in a segment when its usage reaches
# this fraction of capacity: blocking-request latency caps legitimately
# hold flows a few percent below the saturating resource, so exact
# saturation would under-attribute (see analysis.bottleneck).
_BINDING_UTILIZATION = 0.94
_TIME_EPS = 1e-12
_RATE_EPS = 1e-9  # MiB/s below which a flow counts as stalled (no progress)
# Noise epochs presolved ahead per batch when the population is stable:
# their capacity vectors are predicted, solved in one stacked
# ``MaxMinSolver.solve_batch`` call, and seeded into the segment cache.
_PRESOLVE_EPOCHS = 8


@dataclass(frozen=True)
class ResourceContext:
    """What a capacity provider may depend on, for one segment."""

    time: float
    depth: float  # sum of depth weights of active flows through the resource
    nflows: int  # number of active flows through the resource
    noise: float  # multiplicative noise for this epoch (1.0 when noiseless)
    distinct: int = 1  # distinct values of the provider's ``distinct_tag``


def _distinct_tag_of(provider: object) -> str | None:
    """Tag key a provider wants counted across its active flows, if any."""
    return getattr(provider, "distinct_tag", None)


class CapacityProvider(Protocol):
    """Anything that yields a capacity (MiB/s) for a segment context.

    A provider may additionally declare ``noise_scaled = True`` as a
    promise that its capacity is a constant times ``ctx.noise`` for any
    fixed active-flow population — i.e. it ignores ``ctx.time`` and
    ``capacity(ctx) == capacity(ctx with noise=1.0) * ctx.noise`` bit
    for bit (``x * 1.0 == x`` in IEEE arithmetic, so returning
    ``f(ctx) * ctx.noise`` satisfies this automatically).  The fluid
    engine folds declared providers into one per-population base vector
    and evaluates whole segments — and batches of future noise epochs —
    with a single elementwise multiply instead of per-resource Python
    calls.  Providers that do not declare it are evaluated exactly as
    before, one call per segment.
    """

    def capacity(self, ctx: ResourceContext) -> float:  # pragma: no cover
        ...


@dataclass(frozen=True)
class ConstantCapacity:
    """A fixed-capacity resource (a plain link); noise still applies."""

    mib_s: float

    noise_scaled = True

    def __post_init__(self) -> None:
        if self.mib_s < 0:
            raise FlowError(f"negative capacity {self.mib_s}")

    def capacity(self, ctx: ResourceContext) -> float:
        return self.mib_s * ctx.noise


class NoiseModel(Protocol):
    """Multiplicative capacity noise, piecewise-constant per epoch."""

    @property
    def epoch_length_s(self) -> float:  # pragma: no cover
        """Correlation time of the noise (``inf`` = one draw per run)."""
        ...

    def multiplier(
        self, resource_id: str, epoch: int, rng: np.random.Generator
    ) -> float:  # pragma: no cover
        ...


class NoNoise:
    """The noiseless model: every multiplier is exactly 1."""

    epoch_length_s = math.inf

    def multiplier(self, resource_id: str, epoch: int, rng: np.random.Generator) -> float:
        return 1.0


@dataclass(frozen=True)
class SegmentDetail:
    """One piecewise-constant segment's constraint picture.

    ``binding`` lists the resources that were saturated during the
    segment (the constraints that set the rates); ``utilization`` maps
    every resource with active flows to usage/capacity;
    ``latency_capped`` counts flows held below their fair share by the
    blocking-request cap rather than by any resource.
    """

    start: float
    duration: float
    binding: tuple[str, ...]
    utilization: dict[str, float]
    latency_capped: int


@dataclass(frozen=True)
class FlowTraceEvent:
    """One client robustness decision: a chunk-request timeout outcome.

    ``action`` is ``"retry"`` (the flow backs off and will be retried)
    or ``"abandon"`` (retries exhausted; the flow ends incomplete).
    ``attempt`` is the 1-based count of timeouts the flow has suffered.
    """

    time: float
    flow_id: str
    action: str
    attempt: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "time": float(self.time),
            "flow_id": self.flow_id,
            "action": self.action,
            "attempt": int(self.attempt),
        }


@dataclass
class FluidResult:
    """Outcome of a fluid simulation run."""

    stats: list[FlowStats]
    makespan: float
    segments: int
    resource_series: dict[str, TimeSeries] = field(default_factory=dict)
    segment_details: list[SegmentDetail] = field(default_factory=list)
    trace: list[FlowTraceEvent] = field(default_factory=list)

    def total_delivered(self, stats: Sequence[FlowStats] | None = None) -> float:
        """Bytes that actually moved (equals total_volume when no faults)."""
        chosen = self.stats if stats is None else list(stats)
        return float(sum(s.payload_bytes for s in chosen))

    def stats_by_tag(self, key: str, value: object) -> list[FlowStats]:
        """Completion records of flows tagged ``key=value``."""
        return [s for s in self.stats if s.tags.get(key) == value]

    def span(self, stats: Sequence[FlowStats] | None = None) -> tuple[float, float]:
        """(earliest start, latest finish) over the given flows (or all)."""
        chosen = self.stats if stats is None else list(stats)
        if not chosen:
            raise FlowError("no flows to span")
        return (min(s.started_at for s in chosen), max(s.finished_at for s in chosen))

    def total_volume(self, stats: Sequence[FlowStats] | None = None) -> float:
        chosen = self.stats if stats is None else list(stats)
        return float(sum(s.volume_bytes for s in chosen))


class FluidSimulation:
    """Build-and-run container for one fluid simulation.

    Typical use::

        sim = FluidSimulation()
        sim.add_resource("link:a", 1100.0)
        sim.add_flow(FluidFlow("f1", ("link:a",), volume_bytes=32 * GiB))
        result = sim.run()
    """

    def __init__(
        self,
        noise: NoiseModel | None = None,
        latency: BlockingRequestModel | NoLatency | None = None,
        cap_iterations: int = 4,
        retry: "RetryPolicy | None" = None,
        checker: "RuntimeChecker | None" = None,
    ):
        self._providers: dict[str, CapacityProvider] = {}
        self._flows: list[FluidFlow] = []
        self._flow_ids: set[str] = set()
        self.noise: NoiseModel = noise if noise is not None else NoNoise()
        self.latency = latency if latency is not None else NoLatency()
        self.cap_iterations = cap_iterations
        # Runtime invariant checker (see repro.verify.invariants): when
        # set, every segment's solve is certified and byte conservation
        # is enforced at the end of the run.  ``None`` costs nothing.
        self.checker = checker
        # Client robustness: when set, a flow whose rate stays at zero
        # for ``retry.timeout_s`` is pulled off the wire, backs off, and
        # re-enters; after ``retry.max_retries`` timeouts it is abandoned
        # and the run degrades to a partial result.  When ``None`` (the
        # default) a permanently-stalled flow is a loud SimulationError,
        # exactly as before fault injection existed.
        self.retry = retry

    # -- construction --------------------------------------------------------

    def add_resource(self, resource_id: str, capacity: CapacityProvider | float) -> None:
        """Register a resource; a bare float means a constant capacity."""
        if resource_id in self._providers:
            raise FlowError(f"duplicate resource {resource_id!r}")
        if isinstance(capacity, (int, float)):
            capacity = ConstantCapacity(float(capacity))
        self._providers[resource_id] = capacity

    def has_resource(self, resource_id: str) -> bool:
        return resource_id in self._providers

    def add_flow(self, flow: FluidFlow) -> None:
        missing = [r for r in flow.resources if r not in self._providers]
        if missing:
            raise FlowError(f"flow {flow.flow_id!r}: unknown resources {missing}")
        if flow.flow_id in self._flow_ids:
            raise FlowError(f"duplicate flow id {flow.flow_id!r}")
        self._flow_ids.add(flow.flow_id)
        self._flows.append(flow)

    def add_flows(self, flows: Iterable[FluidFlow]) -> None:
        for flow in flows:
            self.add_flow(flow)

    # -- execution -------------------------------------------------------------

    def run(
        self,
        rng: np.random.Generator | None = None,
        observe: Sequence[str] = (),
        max_time: float = 1e7,
        detail: bool = False,
        breakpoints: Sequence[float] = (),
    ) -> FluidResult:
        """Run to completion (or abandonment) of all flows.

        Parameters
        ----------
        rng:
            Generator for the noise model (unused when noiseless).
        observe:
            Resource ids whose aggregate throughput should be recorded
            as a :class:`~repro.simcore.monitor.TimeSeries` (this is the
            data behind the paper's Figure 9).
        max_time:
            Hard stop to turn accidental stalls into loud errors.
        detail:
            Record a :class:`SegmentDetail` per segment (binding
            resources, utilizations) for bottleneck attribution.
        breakpoints:
            Extra segment boundaries (instants at which time-dependent
            capacities change, e.g. fault starts/recoveries), so no
            capacity transition is averaged into a segment.
        """
        trace: list[FlowTraceEvent] = []
        try:
            return self._run(rng, observe, max_time, detail, breakpoints, trace)
        except Exception as exc:
            # A failed run has no FluidResult to carry its trace, so the
            # retry/abandon history rides on the exception instead —
            # ProtocolRunner persists it into FailedRunRecord so resumed
            # campaign reports stay complete.
            exc.flow_trace = tuple(e.to_dict() for e in trace)
            exc.flow_retries = sum(1 for e in trace if e.action == "retry")
            raise

    def _run(
        self,
        rng: np.random.Generator | None,
        observe: Sequence[str],
        max_time: float,
        detail: bool,
        breakpoints: Sequence[float],
        trace: list[FlowTraceEvent],
    ) -> FluidResult:
        if not self._flows:
            raise FlowError("no flows to simulate")
        for rid in observe:
            if rid not in self._providers:
                raise FlowError(f"cannot observe unknown resource {rid!r}")

        # Telemetry handles, hoisted once per run.  With no sinks and no
        # profiler these reduce to boolean attribute checks in the loop;
        # neither touches the RNG or any simulation state, which is what
        # keeps telemetry-off runs byte-identical.
        bus = get_bus()
        prof = get_profiler()
        profiled = prof.enabled
        solver_iterations = 0
        solve_cache_hits = 0

        rids = list(self._providers)
        rid_index = {rid: i for i, rid in enumerate(rids)}
        tag_by_index = [_distinct_tag_of(self._providers[rid]) for rid in rids]
        flows = sorted(self._flows, key=lambda f: (f.start_time, f.flow_id))
        checker = self.checker
        if checker is not None:
            checker.bind_resources(rids)
            for flow in flows:
                checker.expect_bytes(
                    [rid_index[r] for r in flow.resources], flow.volume_bytes
                )
        pending = list(flows)
        active: list[FluidFlow] = []
        series = {rid: TimeSeries() for rid in observe}
        bounds = tuple(sorted({float(b) for b in breakpoints}))
        # Flows sleeping out a retry backoff: (ready_time, seq, flow).
        retry_heap: list[tuple[float, int, FluidFlow]] = []
        retry_seq = 0

        epoch_len = self.noise.epoch_length_s
        has_epochs = math.isfinite(epoch_len)
        noise_rng = rng
        multipliers = np.ones(len(rids))
        current_epoch = -1
        # Noise epochs drawn ahead for presolved segments.  The
        # per-(resource, epoch) draw order is exactly the lazy order, so
        # pre-drawing is byte-safe whenever epochs are consumed
        # consecutively — which the presolve gate guarantees (no future
        # arrivals and no retries means no idle gap can skip an epoch).
        # The rng is the per-run "noise" stream and is never touched
        # after the run, so draws beyond the final epoch are inert.
        predrawn: dict[int, np.ndarray] = {}
        drawn_max = -1

        def resample_noise(epoch: int) -> None:
            nonlocal current_epoch, drawn_max
            if epoch == current_epoch:
                return
            current_epoch = epoch
            if isinstance(self.noise, NoNoise) or noise_rng is None:
                return
            row = predrawn.pop(epoch, None)
            if row is not None:
                multipliers[:] = row
                return
            for i, rid in enumerate(rids):
                multipliers[i] = self.noise.multiplier(rid, epoch, noise_rng)
            if epoch > drawn_max:
                drawn_max = epoch

        def draw_ahead(upto: int) -> None:
            nonlocal drawn_max
            for e in range(drawn_max + 1, upto + 1):
                row = np.empty(len(rids))
                for i, rid in enumerate(rids):
                    row[i] = self.noise.multiplier(rid, e, noise_rng)
                predrawn[e] = row
                drawn_max = e

        now = pending[0].start_time
        segments = 0
        details: list[SegmentDetail] = []
        # Membership-dependent state, rebuilt only when the active flow
        # population changes (arrival, retry re-entry, completion,
        # abandonment).  Capacities still vary per segment with time and
        # noise, so the solved rates are cached per capacity vector.
        members_dirty = True
        memberships: list[list[int]] = []
        depth = np.zeros(len(rids))
        nflows = np.zeros(len(rids), dtype=int)
        distinct: dict[int, set] = {}
        nprocs = np.zeros(0, dtype=int)
        req_sizes = np.zeros(0)
        solver: MaxMinSolver | None = None
        seg_cache: dict[bytes, tuple] = {}
        # Segment keys seeded by the epoch presolve that the main loop
        # has not reached yet: their first use is accounted as the
        # inline solve it replaced, not as a cache hit, so telemetry
        # counters are unchanged by presolving.
        presolved: set[bytes] = set()
        # Per-population vectorized state: base capacities of the
        # noise-scaled providers (one elementwise multiply per segment
        # replaces per-resource Python calls), the providers that still
        # need a call per segment, per-flow remaining-bytes and
        # stall-clock arrays (authoritative between rebuilds; flushed
        # back into the flow objects whenever the population changes),
        # and per-observed-resource member index lists.
        providers_list = [self._providers[rid] for rid in rids]
        era_base = np.zeros(len(rids))
        era_dyn: list[tuple[int, str, CapacityProvider, int]] = []
        rem_arr = np.zeros(0)
        stalled = np.zeros(0)
        obs_members: list[tuple[str, list[int]]] = []
        arrays_valid = False
        presolve_horizon = -1
        pending_i = 0
        retry_policy = self.retry

        def flush_flow_state() -> None:
            # Write the authoritative arrays back into the flow objects
            # (exactly the values the scalar loop would have left there).
            for j, flow in enumerate(active):
                flow.remaining_bytes = float(rem_arr[j])
            if retry_policy is not None:
                for j, flow in enumerate(active):
                    s = stalled[j]
                    flow.stalled_since = None if math.isnan(s) else float(s)

        while pending_i < len(pending) or active or retry_heap:
            # Admit arrivals and due retries.
            admit = (
                pending_i < len(pending)
                and pending[pending_i].start_time <= now + _TIME_EPS
            ) or (retry_heap and retry_heap[0][0] <= now + _TIME_EPS)
            if admit and arrays_valid:
                flush_flow_state()
                arrays_valid = False
            while pending_i < len(pending) and pending[pending_i].start_time <= now + _TIME_EPS:
                flow = pending[pending_i]
                pending_i += 1
                flow.started_at = now
                active.append(flow)
                members_dirty = True
                if bus.debug:
                    bus.emit("flow.start", t=now, flow_id=flow.flow_id)
            while retry_heap and retry_heap[0][0] <= now + _TIME_EPS:
                active.append(heapq.heappop(retry_heap)[2])
                members_dirty = True
            if not active:
                # Idle gap until the next arrival or retry wake-up: the
                # observed series must record zero throughput, or
                # integration would extend the previous segment's rate
                # across the gap.
                for rid in observe:
                    series[rid].append(now, 0.0)
                next_times = (
                    [pending[pending_i].start_time] if pending_i < len(pending) else []
                )
                if retry_heap:
                    next_times.append(retry_heap[0][0])
                now = min(next_times)
                continue

            epoch = int(now / epoch_len) if has_epochs else 0
            resample_noise(epoch)

            # Per-resource context: depth, flow count and distinct tags.
            # All of it — and the solver's incidence matrix — depends
            # only on the active population, not on time or noise.
            if members_dirty:
                depth = np.zeros(len(rids))
                nflows = np.zeros(len(rids), dtype=int)
                distinct = {}
                memberships = []
                for flow in active:
                    idxs = [rid_index[r] for r in flow.resources]
                    memberships.append(idxs)
                    for i in idxs:
                        depth[i] += flow.weight
                        nflows[i] += 1
                        tag = tag_by_index[i]
                        if tag is not None:
                            distinct.setdefault(i, set()).add(flow.tags.get(tag))
                nprocs = np.array([f.nprocs for f in active])
                req_sizes = np.array(
                    [
                        f.request_size_bytes if f.request_size_bytes is not None else np.nan
                        for f in active
                    ]
                )
                # Fold noise-scaled providers into one base vector: for
                # them ``capacity == base * noise`` bit for bit, so each
                # segment needs a single elementwise multiply.  The rest
                # keep their per-segment Python call.
                era_base = np.zeros(len(rids))
                era_dyn = []
                for i, rid in enumerate(rids):
                    provider = providers_list[i]
                    ctx_distinct = len(distinct.get(i, ())) or 1
                    if getattr(provider, "noise_scaled", False):
                        era_base[i] = provider.capacity(
                            ResourceContext(now, depth[i], int(nflows[i]), 1.0, ctx_distinct)
                        )
                    else:
                        era_dyn.append((i, rid, provider, ctx_distinct))
                obs_members = [
                    (rid, [j for j, idxs in enumerate(memberships) if rid_index[rid] in idxs])
                    for rid in observe
                ]
                rem_arr = np.array([f.remaining_bytes for f in active], dtype=float)
                if retry_policy is not None:
                    stalled = np.array(
                        [
                            np.nan if f.stalled_since is None else f.stalled_since
                            for f in active
                        ],
                        dtype=float,
                    )
                arrays_valid = True
                presolve_horizon = -1
                solver = MaxMinSolver(memberships, len(rids))
                seg_cache = {}
                presolved = set()
                members_dirty = False

            capacities = era_base * multipliers
            for i, rid, provider, ctx_distinct in era_dyn:
                capacities[i] = provider.capacity(
                    ResourceContext(now, depth[i], int(nflows[i]), multipliers[i], ctx_distinct)
                )
            if np.any(capacities < 0):
                raise SimulationError("capacity provider returned a negative capacity")

            # Latency caps are seeded from the uncapped (offered) shares
            # and only allowed to rise afterwards (see solve_with_caps).
            # ``caps_used`` is the cap vector the final ``rates`` were
            # solved against (``caps`` may already hold the next
            # iterate), which is what the fairness certificate needs.
            # Identical capacity vectors (same noise level, unchanged
            # population) reuse the previous fixed point wholesale.
            solve_t0 = perf_counter() if profiled else 0.0
            seg_key = capacities.tobytes()
            cached = seg_cache.get(seg_key)
            if cached is not None:
                rates, caps, caps_used, iterations = cached
                if seg_key in presolved:
                    # First use of a presolved segment: account it as the
                    # inline solve it replaced, not as a cache hit.
                    presolved.discard(seg_key)
                else:
                    solve_cache_hits += 1
            else:
                iterations = 1
                rates = solver.solve(capacities)
                caps = self.latency.flow_caps(rates, nprocs, req_sizes)
                caps_used = None
                for _ in range(self.cap_iterations):
                    caps_used = caps
                    iterations += 1
                    rates = solver.solve(capacities, caps)
                    new_caps = np.maximum(caps, self.latency.flow_caps(rates, nprocs, req_sizes))
                    if np.allclose(new_caps, caps, rtol=1e-6, atol=1e-9):
                        break
                    caps = new_caps
                if len(seg_cache) >= _SEG_CACHE_SIZE:
                    seg_cache.clear()
                    presolved.clear()
                seg_cache[seg_key] = (rates, caps, caps_used, iterations)
            solver_iterations += iterations
            if profiled:
                prof.record("fluid.solve", perf_counter() - solve_t0)
            stall_mask = None
            if retry_policy is not None:
                # A zero-rate flow is a chunk request making no progress:
                # start (or keep) its stall clock; any progress clears it.
                stalled = np.where(
                    rates <= _RATE_EPS,
                    np.where(np.isnan(stalled), now, stalled),
                    np.nan,
                )
                stall_mask = ~np.isnan(stalled)

            # Segment boundary: earliest of completion / arrival / epoch
            # end / capacity breakpoint / retry wake-up / stall timeout.
            dt = math.inf
            first_done = math.inf
            rates_bytes = rates * 1024.0**2
            moving = rates_bytes > 0
            if moving.any():
                first_done = (rem_arr[moving] / rates_bytes[moving]).min()
                dt = min(dt, first_done)
            if pending_i < len(pending):
                dt = min(dt, pending[pending_i].start_time - now)
            if has_epochs:
                dt = min(dt, (epoch + 1) * epoch_len - now)
            if bounds:
                nxt = bisect_right(bounds, now + _TIME_EPS)
                if nxt < len(bounds):
                    dt = min(dt, bounds[nxt] - now)
            if retry_heap:
                dt = min(dt, retry_heap[0][0] - now)
            if stall_mask is not None and stall_mask.any():
                dt = min(dt, ((stalled[stall_mask] + retry_policy.timeout_s) - now).min())
            if not math.isfinite(dt) or dt < 0:
                stuck = [f.flow_id for f in active]
                raise SimulationError(f"fluid simulation stalled at t={now}: flows {stuck}")
            dt = max(dt, 0.0)

            if (
                has_epochs
                and not era_dyn
                and retry_policy is None
                and pending_i >= len(pending)
                and not retry_heap
                and noise_rng is not None
                and not isinstance(self.noise, NoNoise)
                and math.isfinite(first_done)
            ):
                # Stable population, predictable capacities: pre-draw the
                # noise of the epochs up to the estimated first
                # completion (a membership change retires the cache
                # anyway), predict their capacity vectors, and solve them
                # as one stacked batch seeding the segment cache.  A
                # prediction that turns out wrong is merely a cache miss
                # — never a wrong result.
                start_e = max(epoch, presolve_horizon) + 1
                horizon = min(
                    epoch + _PRESOLVE_EPOCHS, int((now + first_done) / epoch_len)
                )
                if horizon >= start_e:
                    presolve_t0 = perf_counter() if profiled else 0.0
                    draw_ahead(horizon)
                    lane_caps: list[np.ndarray] = []
                    lane_keys: list[bytes] = []
                    seen_keys: set[bytes] = set()
                    for e in range(start_e, horizon + 1):
                        mult = predrawn.get(e)
                        if mult is None:  # pragma: no cover - draw_ahead covers these
                            break
                        caps_e = era_base * mult
                        if np.any(caps_e < 0):
                            # Leave it to the main loop to surface the
                            # usual SimulationError at that epoch.
                            break
                        key_e = caps_e.tobytes()
                        if key_e in seg_cache or key_e in seen_keys:
                            continue
                        seen_keys.add(key_e)
                        lane_caps.append(caps_e)
                        lane_keys.append(key_e)
                    if lane_caps:
                        entries = self._solve_lanes(
                            solver, np.stack(lane_caps), nprocs, req_sizes
                        )
                        for key_e, entry in zip(lane_keys, entries):
                            if len(seg_cache) >= _SEG_CACHE_SIZE:
                                seg_cache.clear()
                                presolved.clear()
                            seg_cache[key_e] = entry
                            presolved.add(key_e)
                    if profiled:
                        prof.record("fluid.presolve", perf_counter() - presolve_t0)
                    presolve_horizon = horizon

            if bus.debug:
                bus.emit(
                    "segment.solve",
                    t=now,
                    dt=float(dt),
                    active=len(active),
                    iterations=iterations,
                )

            if checker is not None:
                checker.on_segment(
                    now,
                    dt,
                    capacities,
                    memberships,
                    rates,
                    flow_caps=caps_used,
                    flow_labels=[f.flow_id for f in active],
                )

            for rid, member_js in obs_members:
                series[rid].append(now, float(sum(rates[j] for j in member_js)))

            if detail:
                usage = np.zeros(len(rids))
                for idxs, rate in zip(memberships, rates):
                    for i in idxs:
                        usage[i] += rate
                utilization = {}
                binding = []
                for i, rid in enumerate(rids):
                    if nflows[i] == 0:
                        continue
                    cap = capacities[i]
                    utilization[rid] = float(usage[i] / cap) if cap > 0 else 1.0
                    if usage[i] >= _BINDING_UTILIZATION * cap:
                        binding.append(rid)
                latency_capped = int(np.sum((caps < np.inf) & (rates >= caps - 1e-9)))
                details.append(
                    SegmentDetail(
                        start=now,
                        duration=dt,
                        binding=tuple(binding),
                        utilization=utilization,
                        latency_capped=latency_capped,
                    )
                )

            # Integrate the segment (elementwise, identical to the
            # per-flow updates it replaces).
            now += dt
            if now > max_time:
                raise SimulationError(f"fluid simulation exceeded max_time={max_time}")
            rem_arr = rem_arr - rates_bytes * dt
            done_mask = rem_arr <= _BYTES_EPS
            if stall_mask is not None:
                timed_mask = (
                    ~done_mask
                    & stall_mask
                    & (now >= (stalled + retry_policy.timeout_s) - _TIME_EPS)
                )
                changed = bool(done_mask.any() or timed_mask.any())
            else:
                changed = bool(done_mask.any())
            if changed:
                # Some flow completes or times out this segment: flush
                # the arrays back and take the per-flow slow path so the
                # completion/retry/abandon bookkeeping stays verbatim.
                flush_flow_state()
                arrays_valid = False
                still_active: list[FluidFlow] = []
                for flow in active:
                    if flow.remaining_bytes <= _BYTES_EPS:
                        flow.remaining_bytes = 0.0
                        flow.finished_at = now
                    elif (
                        retry_policy is not None
                        and flow.stalled_since is not None
                        and now >= flow.stalled_since + retry_policy.timeout_s - _TIME_EPS
                    ):
                        # Chunk-request timeout: back off and retry, or
                        # give up once the retry budget is spent.
                        flow.attempts += 1
                        flow.stalled_since = None
                        if flow.attempts > retry_policy.max_retries:
                            flow.abandoned = True
                            flow.finished_at = now
                            trace.append(
                                FlowTraceEvent(now, flow.flow_id, "abandon", flow.attempts)
                            )
                            if bus.enabled:
                                bus.emit(
                                    "flow.abandon",
                                    t=now,
                                    flow_id=flow.flow_id,
                                    attempt=flow.attempts,
                                )
                            if checker is not None:
                                checker.retract_bytes(
                                    [rid_index[r] for r in flow.resources],
                                    flow.remaining_bytes,
                                )
                        else:
                            trace.append(
                                FlowTraceEvent(now, flow.flow_id, "retry", flow.attempts)
                            )
                            if bus.enabled:
                                bus.emit(
                                    "flow.retry",
                                    t=now,
                                    flow_id=flow.flow_id,
                                    attempt=flow.attempts,
                                )
                            retry_seq += 1
                            ready = now + retry_policy.backoff_s(flow.attempts)
                            heapq.heappush(retry_heap, (ready, retry_seq, flow))
                    else:
                        still_active.append(flow)
                if len(still_active) != len(active):
                    members_dirty = True
                active = still_active
            segments += 1

        for rid in observe:
            series[rid].append(now, 0.0)

        if checker is not None:
            for flow in flows:
                checker.flow_complete(
                    flow.flow_id, flow.volume_bytes, flow.remaining_bytes, flow.abandoned
                )
            checker.finish()

        if bus.enabled:
            bus.metrics.counter("engine.segments_solved", engine="fluid").inc(segments)
            bus.metrics.counter("engine.solver_iterations", engine="fluid").inc(
                solver_iterations
            )
            bus.metrics.counter("engine.solve_cache_hits", engine="fluid").inc(
                solve_cache_hits
            )

        stats = [f.stats() for f in flows]
        makespan = max(s.finished_at for s in stats)
        return FluidResult(
            stats=stats,
            makespan=makespan,
            segments=segments,
            resource_series=series,
            segment_details=details,
            trace=trace,
        )

    def _solve_lanes(
        self,
        solver: MaxMinSolver,
        lane_caps: np.ndarray,
        nprocs: np.ndarray,
        req_sizes: np.ndarray,
    ) -> list[tuple]:
        """Solve a stacked batch of segment capacity vectors.

        Runs the same latency-cap fixed point as the inline segment
        solve, but with every lane's max-min allocation computed in one
        :meth:`MaxMinSolver.solve_batch` call per iteration.  Each
        lane's trajectory — rates, caps, the cap vector solved against,
        iteration count — is bit-identical to the scalar path, so
        seeding the segment cache with these entries leaves results
        unchanged.
        """
        lanes = lane_caps.shape[0]
        first = solver.solve_batch(lane_caps)
        out_rates = [first[b] for b in range(lanes)]
        caps = [self.latency.flow_caps(first[b], nprocs, req_sizes) for b in range(lanes)]
        caps_used: list[np.ndarray | None] = [None] * lanes
        iters = [1] * lanes
        live = list(range(lanes))
        for _ in range(self.cap_iterations):
            if not live:
                break
            solved = solver.solve_batch(
                lane_caps[np.array(live)], np.stack([caps[b] for b in live])
            )
            nxt: list[int] = []
            for k, b in enumerate(live):
                caps_used[b] = caps[b]
                iters[b] += 1
                out_rates[b] = solved[k]
                new_caps = np.maximum(
                    caps[b], self.latency.flow_caps(solved[k], nprocs, req_sizes)
                )
                if np.allclose(new_caps, caps[b], rtol=1e-6, atol=1e-9):
                    continue
                caps[b] = new_caps
                nxt.append(b)
            live = nxt
        return [(out_rates[b], caps[b], caps_used[b], iters[b]) for b in range(lanes)]
