"""Per-flow rate caps from the blocking-request latency model.

IOR issues synchronous POSIX writes: each process keeps exactly one
transfer in flight, so between two transfers it pays a full
request/response round trip during which it moves no data.  With a
transfer of ``s`` bytes and a per-request overhead of ``L`` seconds, a
process whose in-flight transfers are served at rate ``r`` achieves

    throughput = s / (s / r + L)  =  r * s / (s + L * r)

which approaches ``r`` for large transfers (the paper's motivation for
using 1 MiB transfers and 32 GiB files) and collapses for small ones
(the latency-dominated left side of Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigError
from ..units import MiB

__all__ = ["BlockingRequestModel", "NoLatency"]


@dataclass(frozen=True)
class BlockingRequestModel:
    """Cap flows at what blocking requests of a given size can sustain.

    Parameters
    ----------
    request_size_bytes:
        The application transfer size (IOR ``-t``), in bytes.
    round_trip_latency_s:
        Fixed per-request overhead: network round trip plus client and
        server per-request processing.
    """

    request_size_bytes: float
    round_trip_latency_s: float

    def __post_init__(self) -> None:
        if self.request_size_bytes <= 0:
            raise ConfigError("request size must be positive")
        if self.round_trip_latency_s < 0:
            raise ConfigError("negative per-request latency")

    def per_process_rate(self, allocated_mib_s: float) -> float:
        """Achieved rate of one process given its allocated share."""
        if allocated_mib_s <= 0:
            return 0.0
        size_mib = self.request_size_bytes / MiB
        return allocated_mib_s * size_mib / (size_mib + self.round_trip_latency_s * allocated_mib_s)

    def flow_caps(
        self,
        rates_mib_s: np.ndarray,
        nprocs: Sequence[float],
        request_sizes_bytes: Sequence[float] | None = None,
    ) -> np.ndarray:
        """Vectorised cap for each flow given tentative allocated rates.

        Each flow aggregates ``nprocs`` independent blocking processes;
        the cap is the sum of their individually achievable rates under
        an even split of the flow's allocation.  ``request_sizes_bytes``
        overrides the model's request size per flow (NaN/None entries
        fall back to the default).
        """
        rates = np.asarray(rates_mib_s, dtype=float)
        procs = np.asarray(nprocs, dtype=float)
        if rates.shape != procs.shape:
            raise ConfigError("rates and nprocs must align")
        if request_sizes_bytes is None:
            size_mib = np.full(rates.shape, self.request_size_bytes / MiB)
        else:
            sizes = np.asarray(request_sizes_bytes, dtype=float)
            if sizes.shape != rates.shape:
                raise ConfigError("request sizes and rates must align")
            size_mib = np.where(np.isnan(sizes), self.request_size_bytes, sizes) / MiB
        with np.errstate(divide="ignore", invalid="ignore"):
            per_proc = np.where(procs > 0, rates / procs, 0.0)
            achieved = per_proc * size_mib / (size_mib + self.round_trip_latency_s * per_proc)
        return np.where(rates > 0, procs * achieved, np.inf)

    def efficiency(self, allocated_mib_s: float) -> float:
        """Fraction of the allocated rate actually achieved (0..1]."""
        if allocated_mib_s <= 0:
            return 1.0
        return self.per_process_rate(allocated_mib_s) / allocated_mib_s


class NoLatency:
    """A latency model that never caps anything (pure fluid limit)."""

    def per_process_rate(self, allocated_mib_s: float) -> float:
        return max(allocated_mib_s, 0.0)

    def flow_caps(
        self,
        rates_mib_s: np.ndarray,
        nprocs: Sequence[float],
        request_sizes_bytes: Sequence[float] | None = None,
    ) -> np.ndarray:
        return np.full(np.asarray(rates_mib_s).shape, np.inf)

    def efficiency(self, allocated_mib_s: float) -> float:
        return 1.0
