"""Max-min fair rate allocation (progressive filling / water-filling).

Given flows, each crossing a subset of capacitated resources, the
max-min fair allocation raises all rates together until a resource
saturates, freezes the flows crossing it, and continues with the rest.
This is the classic fluid model of fair bandwidth sharing; it is what
makes the paper's Figure 9 argument quantitative (an unbalanced (1,3)
allocation leaves one server link idle for part of the run).

Per-flow rate caps are supported both directly (``flow_caps``) and as
rate-dependent callables through :func:`solve_with_caps`, which runs a
short damped fixed-point iteration (caps only ever shrink, so the
iteration converges monotonically).

The implementation is vectorised with NumPy over an incidence matrix.
The fluid engine solves thousands of segments over the *same* flow
population — flows enter and leave far less often than capacities
change — so :class:`MaxMinSolver` builds the incidence matrix once per
population and reuses it across solves, with a small keyed cache for
repeated ``(capacities, flow_caps)`` instances (noise epochs revisit
the same capacity levels).  :func:`max_min_rates` remains the one-shot
functional entry point.
"""

from __future__ import annotations

from itertools import chain
from typing import Callable, Sequence

import numpy as np

from ..errors import FlowError

__all__ = ["MaxMinSolver", "max_min_rates", "solve_with_caps", "fairness_violations"]

# Hard ceiling on the lanes of one stacked solve; callers chunk above it.
_MAX_BATCH_LANES = 4096

_EPS = 1e-9


def _membership_arrays(
    memberships: Sequence[Sequence[int]],
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten memberships to ``(counts, flat_indices)`` arrays."""
    nflows = len(memberships)
    counts = np.fromiter((len(m) for m in memberships), dtype=np.intp, count=nflows)
    flat = np.fromiter(
        chain.from_iterable(memberships), dtype=np.intp, count=int(counts.sum())
    )
    return counts, flat


def _build_incidence(
    memberships: Sequence[Sequence[int]], nres: int, allow_empty: bool = False
) -> np.ndarray:
    """The boolean flows x resources incidence matrix, validated."""
    nflows = len(memberships)
    counts, flat = _membership_arrays(memberships)
    if not allow_empty and nflows and (counts == 0).any():
        f = int(np.argmax(counts == 0))
        raise FlowError(f"flow {f} crosses no resources")
    incidence = np.zeros((nflows, nres), dtype=bool)
    if flat.size:
        bad = (flat < 0) | (flat >= nres)
        if bad.any():
            pos = int(np.argmax(bad))
            f = int(np.searchsorted(np.cumsum(counts), pos, side="right"))
            raise FlowError(f"flow {f}: resource index {int(flat[pos])} out of range")
        incidence[np.repeat(np.arange(nflows), counts), flat] = True
    return incidence


class MaxMinSolver:
    """Progressive-filling solver with a cached incidence matrix.

    Built once for a fixed flow population (``memberships`` over
    ``num_resources`` resources), then solved repeatedly for varying
    capacities and per-flow caps.  Compared with calling
    :func:`max_min_rates` per segment this avoids re-validating and
    re-building the incidence matrix — the dominant cost for the fluid
    engine's problem sizes — and adds a keyed cache so identical
    ``(capacities, flow_caps)`` inputs (noise epochs revisiting the same
    level, repeated cap-iteration fixpoints) return instantly.

    Returned rate arrays are shared with the cache and marked
    read-only; copy before mutating.
    """

    def __init__(
        self,
        memberships: Sequence[Sequence[int]],
        num_resources: int,
        cache_size: int = 64,
    ):
        self.num_resources = int(num_resources)
        self.num_flows = len(memberships)
        self._incidence = _build_incidence(memberships, self.num_resources)
        self._incidence.setflags(write=False)
        # Per-resource active-flow counts when *every* flow is active —
        # the common case at the top of a solve (no dead resources, no
        # zero caps), saved so the fill loop can start incrementally.
        self._users_all = self._incidence.sum(axis=0)
        # Integer view of the incidence for exact batched matmuls (the
        # products are sums of 0/1 integers, so they match the
        # boolean-mask reductions of the scalar path bit for bit).
        # Built lazily: only batched solves need it.
        self._inc_int_cache: np.ndarray | None = None
        self._cache: dict[tuple[bytes, bytes | None], np.ndarray] = {}
        self._cache_size = int(cache_size)

    @property
    def _inc_int(self) -> np.ndarray:
        if self._inc_int_cache is None:
            self._inc_int_cache = self._incidence.astype(np.intp)
        return self._inc_int_cache

    @property
    def incidence(self) -> np.ndarray:
        """The (read-only) boolean flows x resources matrix."""
        return self._incidence

    @property
    def cache_len(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        self._cache.clear()

    def solve(
        self,
        capacities: np.ndarray | Sequence[float],
        flow_caps: np.ndarray | Sequence[float] | None = None,
    ) -> np.ndarray:
        """Max-min fair rates for this population under ``capacities``.

        Semantics are identical to :func:`max_min_rates`; the returned
        array is cached and read-only.
        """
        caps = np.asarray(capacities, dtype=float)
        if caps.shape != (self.num_resources,):
            raise FlowError(
                f"capacities must have shape ({self.num_resources},), got {caps.shape}"
            )
        if np.any(caps < 0):
            raise FlowError("negative resource capacity")
        fc: np.ndarray | None = None
        fc_key: bytes | None = None
        if flow_caps is not None:
            fc = np.asarray(flow_caps, dtype=float)
            if fc.shape != (self.num_flows,):
                raise FlowError("flow_caps must have one entry per flow")
            if np.any(fc < 0):
                raise FlowError("negative flow cap")
            fc_key = fc.tobytes()
        key = (caps.tobytes(), fc_key)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        rates = self._fill(caps, fc)
        rates.setflags(write=False)
        if len(self._cache) >= self._cache_size:
            self._cache.clear()
        self._cache[key] = rates
        return rates

    def solve_batch(
        self,
        capacities: np.ndarray | Sequence[Sequence[float]],
        flow_caps: np.ndarray | Sequence[Sequence[float]] | None = None,
    ) -> np.ndarray:
        """Max-min fair rates for a stacked batch of capacity vectors.

        ``capacities`` is ``(lanes, num_resources)``; ``flow_caps``,
        when given, is ``(lanes, num_flows)``.  Lane ``b`` of the
        returned ``(lanes, num_flows)`` array is **bit-identical** to
        ``solve(capacities[b], flow_caps[b])``: the batched fill runs
        every lane through the same elementwise arithmetic the scalar
        loop performs, and its only reductions (mins, 0/1 integer sums)
        are exact.  Lanes hit the same keyed cache as :meth:`solve`, so
        mixing batched and scalar calls stays coherent.
        """
        caps = np.asarray(capacities, dtype=float)
        if caps.ndim != 2 or caps.shape[1] != self.num_resources:
            raise FlowError(
                f"capacities must have shape (lanes, {self.num_resources}), "
                f"got {caps.shape}"
            )
        if caps.shape[0] > _MAX_BATCH_LANES:
            raise FlowError(f"batch of {caps.shape[0]} lanes exceeds {_MAX_BATCH_LANES}")
        if np.any(caps < 0):
            raise FlowError("negative resource capacity")
        fc: np.ndarray | None = None
        if flow_caps is not None:
            fc = np.asarray(flow_caps, dtype=float)
            if fc.shape != (caps.shape[0], self.num_flows):
                raise FlowError(
                    f"flow_caps must have shape ({caps.shape[0]}, {self.num_flows}), "
                    f"got {fc.shape}"
                )
            if np.any(fc < 0):
                raise FlowError("negative flow cap")
        lanes = caps.shape[0]
        out = np.zeros((lanes, self.num_flows))
        keys: list[tuple[bytes, bytes | None]] = []
        misses: list[int] = []
        for b in range(lanes):
            key = (caps[b].tobytes(), fc[b].tobytes() if fc is not None else None)
            keys.append(key)
            hit = self._cache.get(key)
            if hit is not None:
                out[b] = hit
            else:
                misses.append(b)
        if misses:
            fresh = self._fill_batch(
                caps[misses], None if fc is None else fc[misses]
            )
            for row, b in enumerate(misses):
                rates = fresh[row].copy()
                rates.setflags(write=False)
                if len(self._cache) >= self._cache_size:
                    self._cache.clear()
                self._cache[keys[b]] = rates
                out[b] = rates
        return out

    def _fill_batch(self, caps: np.ndarray, flow_caps: np.ndarray | None) -> np.ndarray:
        """Progressive filling over stacked lanes (validated inputs only).

        Every operation below is either elementwise per lane or an exact
        reduction (min, 0/1 integer sum), so each lane's trajectory —
        deltas, freeze order, final rates — reproduces the scalar
        :meth:`_fill` bit for bit.  Finished lanes are masked out of the
        updates and keep their values.
        """
        lanes = caps.shape[0]
        nflows, nres = self.num_flows, self.num_resources
        incidence = self._incidence
        inc_int = self._inc_int
        rates = np.zeros((lanes, nflows))
        if nflows == 0 or lanes == 0:
            return rates

        if flow_caps is None:
            cap_rem = np.full((lanes, nflows), np.inf)
        else:
            cap_rem = flow_caps.astype(float, copy=True)

        active = np.ones((lanes, nflows), dtype=bool)
        rem = caps.astype(float).copy()

        zero_res = rem <= _EPS
        if zero_res.any():
            active &= ~((zero_res.astype(np.intp) @ inc_int.T) > 0)
        active &= cap_rem > _EPS

        users = active.astype(np.intp) @ inc_int  # (lanes, nres), exact

        for _ in range(nflows + nres + 1):
            live = active.any(axis=1)
            if not live.any():
                break
            with np.errstate(divide="ignore", invalid="ignore"):
                headroom = np.where(users > 0, rem / np.maximum(users, 1), np.inf)
            delta_res = headroom.min(axis=1)
            delta_cap = np.where(active, cap_rem, np.inf).min(axis=1)
            delta = np.minimum(delta_res, delta_cap)
            if not np.isfinite(delta[live]).all():
                raise FlowError("unbounded max-min allocation (no finite constraint)")
            delta = np.where(live, np.maximum(delta, 0.0), 0.0)

            rates += np.where(active, delta[:, None], 0.0)
            rem -= delta[:, None] * users
            cap_rem -= np.where(active, delta[:, None], 0.0)

            saturated_res = (rem <= _EPS) & (users > 0)
            freeze = active & (
                ((saturated_res.astype(np.intp) @ inc_int.T) > 0) | (cap_rem <= _EPS)
            )
            stuck = live & ~freeze.any(axis=1)
            if stuck.any():
                # Numerical corner, per lane: force-freeze the flow at
                # the tightest constraint so progress is guaranteed.
                for b in np.flatnonzero(stuck):
                    tight = int(np.argmin(np.where(active[b], cap_rem[b], np.inf)))
                    freeze[b, tight] = True
            removed = active & freeze
            if removed.any():
                users -= removed.astype(np.intp) @ inc_int
            active &= ~freeze
        else:  # pragma: no cover - loop bound is a hard invariant
            raise FlowError("max-min allocation did not converge")
        return rates

    def _fill(self, caps: np.ndarray, flow_caps: np.ndarray | None) -> np.ndarray:
        """The progressive-filling loop (validated inputs only)."""
        nflows, nres = self.num_flows, self.num_resources
        incidence = self._incidence
        rates = np.zeros(nflows)
        if nflows == 0:
            return rates

        if flow_caps is None:
            cap_rem = np.full(nflows, np.inf)
        else:
            cap_rem = flow_caps.astype(float, copy=True)

        active = np.ones(nflows, dtype=bool)
        rem = caps.astype(float).copy()

        # Flows through zero-capacity resources can never move.
        zero_res = rem <= _EPS
        if zero_res.any():
            active &= ~incidence[:, zero_res].any(axis=1)
        # Flows capped at zero are immediately frozen at rate 0.
        active &= cap_rem > _EPS

        # Active flows per resource, maintained incrementally: integer
        # subtraction of frozen flows' rows is exact, so the counts (and
        # therefore every float that follows) match a from-scratch
        # recompute bit for bit.
        if active.all():
            users = self._users_all.copy()
        else:
            users = incidence[active].sum(axis=0)

        # Each iteration freezes at least one flow, so this terminates in
        # at most ``nflows`` iterations.
        for _ in range(nflows + nres + 1):
            if not active.any():
                break
            with np.errstate(divide="ignore", invalid="ignore"):
                headroom = np.where(users > 0, rem / np.maximum(users, 1), np.inf)
            delta_res = headroom.min() if np.isfinite(headroom).any() else np.inf
            delta_cap = cap_rem[active].min()
            delta = min(delta_res, delta_cap)
            if not np.isfinite(delta):
                raise FlowError("unbounded max-min allocation (no finite constraint)")
            delta = max(delta, 0.0)

            rates[active] += delta
            rem -= delta * users
            cap_rem[active] -= delta

            saturated_res = (rem <= _EPS) & (users > 0)
            freeze = active & (incidence[:, saturated_res].any(axis=1) | (cap_rem <= _EPS))
            if not freeze.any():
                # Numerical corner: force-freeze the flows at the tightest
                # constraint so progress is guaranteed.
                tight = np.argmin(np.where(active, cap_rem, np.inf))
                freeze = np.zeros(nflows, dtype=bool)
                freeze[tight] = True
            removed = active & freeze
            if removed.any():
                users -= incidence[removed].sum(axis=0)
            active &= ~freeze
        else:  # pragma: no cover - loop bound is a hard invariant
            raise FlowError("max-min allocation did not converge")
        return rates


def max_min_rates(
    memberships: Sequence[Sequence[int]],
    capacities: np.ndarray | Sequence[float],
    flow_caps: np.ndarray | Sequence[float] | None = None,
) -> np.ndarray:
    """Compute the max-min fair rates of ``F`` flows over ``R`` resources.

    Parameters
    ----------
    memberships:
        For each flow, the indices of the resources it crosses.
    capacities:
        Capacity of each resource (same unit as the returned rates).
    flow_caps:
        Optional hard per-flow rate caps (``inf`` for uncapped).

    Returns
    -------
    numpy.ndarray
        The rate of each flow.  Flows crossing a zero-capacity resource
        get rate 0.  The allocation saturates at least one constraint
        per flow (resource or cap), the defining property of max-min
        fairness.
    """
    caps = np.asarray(capacities, dtype=float)
    nres = caps.shape[0]
    nflows = len(memberships)
    if np.any(caps < 0):
        raise FlowError("negative resource capacity")
    if nflows == 0:
        return np.zeros(0)
    solver = MaxMinSolver(memberships, nres, cache_size=1)
    return solver.solve(caps, flow_caps).copy()


def solve_with_caps(
    memberships: Sequence[Sequence[int]],
    capacities: np.ndarray | Sequence[float],
    cap_fn: Callable[[np.ndarray], np.ndarray] | None,
    iterations: int = 4,
) -> np.ndarray:
    """Max-min allocation with rate-dependent per-flow caps.

    ``cap_fn(rates)`` returns, for each flow, the maximum rate it can
    actually sustain when offered that share (e.g. the blocking-request
    model of :mod:`repro.netsim.latency`).  Because ``cap_fn`` maps an
    offered share to a strictly smaller achieved rate, naively iterating
    it on its own output spirals to zero; the physically meaningful cap
    is the one evaluated at the *offered* (uncapped) share.  So the caps
    are seeded from the uncapped allocation and afterwards only allowed
    to **rise** — a flow whose share grows when others are capped may
    achieve more — which converges monotonically.
    """
    rates = max_min_rates(memberships, capacities, None)
    if cap_fn is None:
        return rates
    caps = np.asarray(cap_fn(rates), dtype=float)
    if caps.shape != rates.shape:
        raise FlowError("cap_fn returned wrong shape")
    for _ in range(max(1, iterations)):
        rates = max_min_rates(memberships, capacities, caps)
        new_caps = np.maximum(caps, np.asarray(cap_fn(rates), dtype=float))
        if np.allclose(new_caps, caps, rtol=1e-6, atol=1e-9):
            break
        caps = new_caps
    return rates


def fairness_violations(
    memberships: Sequence[Sequence[int]],
    capacities: np.ndarray | Sequence[float],
    rates: np.ndarray | Sequence[float],
    flow_caps: np.ndarray | Sequence[float] | None = None,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> list[int]:
    """Indices of flows that saturate *no* constraint — the max-min certificate.

    A max-min fair allocation has a simple machine-checkable witness:
    every flow is held back by *something* — either one of its resources
    is saturated (its usage reaches capacity) or the flow sits at its own
    rate cap.  A flow constrained by neither could be raised without
    hurting anyone, so the allocation would not be max-min fair.  The
    returned list is empty for a fair allocation; non-empty means the
    solver (or the capacities handed to it) is inconsistent.

    Zero-capacity resources count as saturated (their flows are pinned at
    rate 0 by a binding constraint).  Tolerances absorb the progressive
    filling epsilon; they are deliberately loose enough that only genuine
    solver bugs trip the certificate.
    """
    caps = np.asarray(capacities, dtype=float)
    rates_arr = np.asarray(rates, dtype=float)
    nflows = len(memberships)
    if nflows != rates_arr.shape[0]:
        raise FlowError("rates must have one entry per flow")
    counts, flat = _membership_arrays(memberships)
    # ``np.add.at`` accumulates unbuffered in membership order, so the
    # usage vector rounds identically to the scalar loop it replaces
    # (and duplicate resource indices still count once per occurrence).
    usage = np.zeros(caps.shape[0])
    if flat.size:
        np.add.at(usage, flat, np.repeat(rates_arr, counts))
    saturated = usage >= caps * (1.0 - rtol) - atol
    caps_arr = None
    if flow_caps is not None:
        caps_arr = np.asarray(flow_caps, dtype=float)
        if caps_arr.shape != rates_arr.shape:
            raise FlowError("flow_caps must have one entry per flow")
    # A flow is held back when any of its resources is saturated...
    held = np.zeros(nflows, dtype=bool)
    if flat.size:
        np.logical_or.at(held, np.repeat(np.arange(nflows), counts), saturated[flat])
    # ...or when it sits at its own (finite) rate cap.
    if caps_arr is not None:
        with np.errstate(invalid="ignore"):
            held |= np.isfinite(caps_arr) & (rates_arr >= caps_arr * (1.0 - rtol) - atol)
    return [int(f) for f in np.flatnonzero(~held)]
