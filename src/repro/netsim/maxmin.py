"""Max-min fair rate allocation (progressive filling / water-filling).

Given flows, each crossing a subset of capacitated resources, the
max-min fair allocation raises all rates together until a resource
saturates, freezes the flows crossing it, and continues with the rest.
This is the classic fluid model of fair bandwidth sharing; it is what
makes the paper's Figure 9 argument quantitative (an unbalanced (1,3)
allocation leaves one server link idle for part of the run).

Per-flow rate caps are supported both directly (``flow_caps``) and as
rate-dependent callables through :func:`solve_with_caps`, which runs a
short damped fixed-point iteration (caps only ever shrink, so the
iteration converges monotonically).

The implementation is vectorised with NumPy over an incidence matrix;
problem sizes here are a few hundred flows over a few dozen resources,
for which this is effectively instantaneous.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import FlowError

__all__ = ["max_min_rates", "solve_with_caps", "fairness_violations"]

_EPS = 1e-9


def max_min_rates(
    memberships: Sequence[Sequence[int]],
    capacities: np.ndarray | Sequence[float],
    flow_caps: np.ndarray | Sequence[float] | None = None,
) -> np.ndarray:
    """Compute the max-min fair rates of ``F`` flows over ``R`` resources.

    Parameters
    ----------
    memberships:
        For each flow, the indices of the resources it crosses.
    capacities:
        Capacity of each resource (same unit as the returned rates).
    flow_caps:
        Optional hard per-flow rate caps (``inf`` for uncapped).

    Returns
    -------
    numpy.ndarray
        The rate of each flow.  Flows crossing a zero-capacity resource
        get rate 0.  The allocation saturates at least one constraint
        per flow (resource or cap), the defining property of max-min
        fairness.
    """
    caps = np.asarray(capacities, dtype=float)
    nres = caps.shape[0]
    nflows = len(memberships)
    if np.any(caps < 0):
        raise FlowError("negative resource capacity")
    rates = np.zeros(nflows)
    if nflows == 0:
        return rates

    incidence = np.zeros((nflows, nres), dtype=bool)
    for f, res in enumerate(memberships):
        if len(res) == 0:
            raise FlowError(f"flow {f} crosses no resources")
        for r in res:
            if not 0 <= r < nres:
                raise FlowError(f"flow {f}: resource index {r} out of range")
            incidence[f, r] = True

    if flow_caps is None:
        cap_rem = np.full(nflows, np.inf)
    else:
        cap_rem = np.asarray(flow_caps, dtype=float).copy()
        if cap_rem.shape != (nflows,):
            raise FlowError("flow_caps must have one entry per flow")
        if np.any(cap_rem < 0):
            raise FlowError("negative flow cap")

    active = np.ones(nflows, dtype=bool)
    rem = caps.astype(float).copy()

    # Flows through zero-capacity resources can never move.
    dead = incidence[:, rem <= _EPS].any(axis=1)
    active &= ~dead
    # Flows capped at zero are immediately frozen at rate 0.
    active &= cap_rem > _EPS

    # Each iteration freezes at least one flow, so this terminates in at
    # most ``nflows`` iterations.
    for _ in range(nflows + nres + 1):
        if not active.any():
            break
        users = incidence[active].sum(axis=0)  # active flows per resource
        with np.errstate(divide="ignore", invalid="ignore"):
            headroom = np.where(users > 0, rem / np.maximum(users, 1), np.inf)
        delta_res = headroom.min() if np.isfinite(headroom).any() else np.inf
        delta_cap = cap_rem[active].min()
        delta = min(delta_res, delta_cap)
        if not np.isfinite(delta):
            raise FlowError("unbounded max-min allocation (no finite constraint)")
        delta = max(delta, 0.0)

        rates[active] += delta
        rem -= delta * users
        cap_rem[active] -= delta

        saturated_res = (rem <= _EPS) & (users > 0)
        freeze = active & (incidence[:, saturated_res].any(axis=1) | (cap_rem <= _EPS))
        if not freeze.any():
            # Numerical corner: force-freeze the flows at the tightest
            # constraint so progress is guaranteed.
            tight = np.argmin(np.where(active, cap_rem, np.inf))
            freeze = np.zeros(nflows, dtype=bool)
            freeze[tight] = True
        active &= ~freeze
    else:  # pragma: no cover - loop bound is a hard invariant
        raise FlowError("max-min allocation did not converge")
    return rates


def solve_with_caps(
    memberships: Sequence[Sequence[int]],
    capacities: np.ndarray | Sequence[float],
    cap_fn: Callable[[np.ndarray], np.ndarray] | None,
    iterations: int = 4,
) -> np.ndarray:
    """Max-min allocation with rate-dependent per-flow caps.

    ``cap_fn(rates)`` returns, for each flow, the maximum rate it can
    actually sustain when offered that share (e.g. the blocking-request
    model of :mod:`repro.netsim.latency`).  Because ``cap_fn`` maps an
    offered share to a strictly smaller achieved rate, naively iterating
    it on its own output spirals to zero; the physically meaningful cap
    is the one evaluated at the *offered* (uncapped) share.  So the caps
    are seeded from the uncapped allocation and afterwards only allowed
    to **rise** — a flow whose share grows when others are capped may
    achieve more — which converges monotonically.
    """
    rates = max_min_rates(memberships, capacities, None)
    if cap_fn is None:
        return rates
    caps = np.asarray(cap_fn(rates), dtype=float)
    if caps.shape != rates.shape:
        raise FlowError("cap_fn returned wrong shape")
    for _ in range(max(1, iterations)):
        rates = max_min_rates(memberships, capacities, caps)
        new_caps = np.maximum(caps, np.asarray(cap_fn(rates), dtype=float))
        if np.allclose(new_caps, caps, rtol=1e-6, atol=1e-9):
            break
        caps = new_caps
    return rates


def fairness_violations(
    memberships: Sequence[Sequence[int]],
    capacities: np.ndarray | Sequence[float],
    rates: np.ndarray | Sequence[float],
    flow_caps: np.ndarray | Sequence[float] | None = None,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> list[int]:
    """Indices of flows that saturate *no* constraint — the max-min certificate.

    A max-min fair allocation has a simple machine-checkable witness:
    every flow is held back by *something* — either one of its resources
    is saturated (its usage reaches capacity) or the flow sits at its own
    rate cap.  A flow constrained by neither could be raised without
    hurting anyone, so the allocation would not be max-min fair.  The
    returned list is empty for a fair allocation; non-empty means the
    solver (or the capacities handed to it) is inconsistent.

    Zero-capacity resources count as saturated (their flows are pinned at
    rate 0 by a binding constraint).  Tolerances absorb the progressive
    filling epsilon; they are deliberately loose enough that only genuine
    solver bugs trip the certificate.
    """
    caps = np.asarray(capacities, dtype=float)
    rates_arr = np.asarray(rates, dtype=float)
    if len(memberships) != rates_arr.shape[0]:
        raise FlowError("rates must have one entry per flow")
    usage = np.zeros(caps.shape[0])
    for idxs, rate in zip(memberships, rates_arr):
        for i in idxs:
            usage[i] += rate
    saturated = usage >= caps * (1.0 - rtol) - atol
    caps_arr = None
    if flow_caps is not None:
        caps_arr = np.asarray(flow_caps, dtype=float)
        if caps_arr.shape != rates_arr.shape:
            raise FlowError("flow_caps must have one entry per flow")
    out: list[int] = []
    for f, idxs in enumerate(memberships):
        if caps_arr is not None and np.isfinite(caps_arr[f]):
            if rates_arr[f] >= caps_arr[f] * (1.0 - rtol) - atol:
                continue
        if any(saturated[i] for i in idxs):
            continue
        out.append(f)
    return out
