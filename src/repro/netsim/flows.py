"""Fluid flow descriptions and per-flow statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import FlowError
from ..units import bandwidth_mib_s

__all__ = ["FluidFlow", "FlowStats"]


@dataclass
class FluidFlow:
    """One steady data stream across a fixed set of resources.

    Attributes
    ----------
    flow_id:
        Unique identifier within a simulation.
    resources:
        Resource ids the flow crosses (every byte consumes capacity on
        each of them simultaneously).
    volume_bytes:
        Total bytes to move; the flow completes when they are done.
    weight:
        *Depth weight*: the average number of outstanding requests this
        flow keeps at a service-type resource.  For an N-1 IOR write
        with ``ppn`` processes per node striped over ``k`` targets, the
        per-(node, target) flow has weight ``ppn / k`` — summing over a
        target's flows recovers the paper's total-concurrency argument.
    nprocs:
        Number of client processes behind the flow (used by the
        blocking-request latency cap).
    start_time:
        Simulated arrival time (supports staggered concurrent apps).
    tags:
        Free-form labels (application id, server name, target id, ...)
        used by analyses to group flows.
    """

    flow_id: str
    resources: tuple[str, ...]
    volume_bytes: float
    weight: float = 1.0
    nprocs: float = 1.0
    start_time: float = 0.0
    request_size_bytes: float | None = None
    tags: Mapping[str, Any] = field(default_factory=dict)

    # Runtime state managed by the simulation.
    remaining_bytes: float = field(init=False)
    started_at: float | None = field(init=False, default=None)
    finished_at: float | None = field(init=False, default=None)
    # Robustness state (fault injection): when the flow last dropped to
    # zero rate, how many timeouts it has suffered, and whether the
    # client finally gave up on it.
    stalled_since: float | None = field(init=False, default=None)
    attempts: int = field(init=False, default=0)
    abandoned: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        if not self.flow_id:
            raise FlowError("flow_id must be non-empty")
        if not self.resources:
            raise FlowError(f"flow {self.flow_id!r}: needs at least one resource")
        if len(set(self.resources)) != len(self.resources):
            raise FlowError(f"flow {self.flow_id!r}: duplicate resources {self.resources}")
        if self.volume_bytes <= 0:
            raise FlowError(f"flow {self.flow_id!r}: volume must be positive")
        if self.weight <= 0 or self.nprocs <= 0:
            raise FlowError(f"flow {self.flow_id!r}: weight/nprocs must be positive")
        if self.start_time < 0:
            raise FlowError(f"flow {self.flow_id!r}: negative start time")
        if self.request_size_bytes is not None and self.request_size_bytes <= 0:
            raise FlowError(f"flow {self.flow_id!r}: request size must be positive")
        self.remaining_bytes = float(self.volume_bytes)
        self.resources = tuple(self.resources)
        self.tags = dict(self.tags)

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    @property
    def duration(self) -> float:
        """Wall time from start to completion; raises if not finished."""
        if self.started_at is None or self.finished_at is None:
            raise FlowError(f"flow {self.flow_id!r} has not completed")
        return self.finished_at - self.started_at

    def stats(self) -> "FlowStats":
        """Summary of a completed (or abandoned) flow."""
        return FlowStats(
            flow_id=self.flow_id,
            volume_bytes=self.volume_bytes,
            started_at=self.started_at if self.started_at is not None else float("nan"),
            finished_at=self.finished_at if self.finished_at is not None else float("nan"),
            tags=dict(self.tags),
            # Only an abandoned flow delivers less than its volume; for
            # completed flows None keeps payload_bytes == volume_bytes.
            delivered_bytes=(
                float(self.volume_bytes) - float(self.remaining_bytes) if self.abandoned else None
            ),
            retries=self.attempts,
            abandoned=self.abandoned,
        )


@dataclass(frozen=True)
class FlowStats:
    """Immutable completion record of one flow.

    ``delivered_bytes`` equals ``volume_bytes`` for a flow that ran to
    completion and falls short of it for one the client abandoned after
    exhausting its retries (``abandoned=True``); ``retries`` counts the
    timeouts the flow suffered on the way.  ``None`` means the record
    predates fault tracking and the flow is complete.
    """

    flow_id: str
    volume_bytes: float
    started_at: float
    finished_at: float
    tags: Mapping[str, Any]
    delivered_bytes: float | None = None
    retries: int = 0
    abandoned: bool = False

    @property
    def payload_bytes(self) -> float:
        """Bytes that actually moved (volume for a complete flow)."""
        return self.volume_bytes if self.delivered_bytes is None else self.delivered_bytes

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def mean_bandwidth_mib_s(self) -> float:
        return bandwidth_mib_s(self.payload_bytes, self.duration)
