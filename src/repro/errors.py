"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
mistakes (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "UnitParseError",
    "SimulationError",
    "DeadlockError",
    "TopologyError",
    "RoutingError",
    "FlowError",
    "StorageError",
    "BeeGFSError",
    "NoSuchEntityError",
    "EntityExistsError",
    "NotADirectoryBeeGFSError",
    "IsADirectoryBeeGFSError",
    "StripingError",
    "TargetChooserError",
    "InsufficientTargetsError",
    "WorkloadError",
    "FaultError",
    "ExperimentError",
    "CheckpointError",
    "OrchestratorError",
    "CampaignInterrupted",
    "ChaosError",
    "ServerError",
    "ProtocolError",
    "RemoteError",
    "AnalysisError",
    "TelemetryError",
    "VerificationError",
    "InvariantViolation",
    "ConformanceError",
    "GoldenMismatchError",
    "ReplayDivergenceError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError, ValueError):
    """An invalid configuration value was supplied."""


class UnitParseError(ConfigError):
    """A human-readable quantity string could not be parsed."""


class SimulationError(ReproError, RuntimeError):
    """The simulation kernel reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The event loop ran out of events while processes were still waiting."""


class TopologyError(ReproError, ValueError):
    """The platform topology is malformed."""


class RoutingError(TopologyError):
    """No route exists between two endpoints of the topology."""


class FlowError(ReproError, ValueError):
    """A network flow was declared or driven inconsistently."""


class StorageError(ReproError, ValueError):
    """A storage device/target model was configured inconsistently."""


class BeeGFSError(ReproError):
    """Base class for errors of the simulated BeeGFS services."""


class NoSuchEntityError(BeeGFSError, KeyError):
    """A path, target or server id does not exist (ENOENT-like)."""

    def __str__(self) -> str:
        # KeyError.__str__ renders the repr of its argument (useful for
        # ``d[key]`` tracebacks, noise for prose messages): bypass it so
        # ``str(exc)`` shows the message exactly as raised.
        return Exception.__str__(self)


class EntityExistsError(BeeGFSError, FileExistsError):
    """Attempt to create an entity that already exists (EEXIST-like)."""


class NotADirectoryBeeGFSError(BeeGFSError, NotADirectoryError):
    """A path component used as a directory is a regular file (ENOTDIR)."""


class IsADirectoryBeeGFSError(BeeGFSError, IsADirectoryError):
    """A file operation was attempted on a directory (EISDIR)."""


class StripingError(BeeGFSError, ValueError):
    """A stripe pattern is invalid (bad count/chunk size)."""


class TargetChooserError(BeeGFSError, ValueError):
    """A target chooser cannot satisfy the request (e.g. too few targets)."""


class InsufficientTargetsError(TargetChooserError):
    """The eligible (online) target pool is smaller than the stripe count.

    Carries the shortfall so degraded-mode callers can decide between
    clamping, failing the creation, or waiting for recovery.
    """

    def __init__(self, requested: int, available: int, pool_ids: tuple[int, ...] = ()):
        self.requested = int(requested)
        self.available = int(available)
        self.pool_ids = tuple(pool_ids)
        detail = f": eligible {sorted(self.pool_ids)}" if self.pool_ids else ""
        super().__init__(
            f"stripe count {self.requested} exceeds the eligible target pool "
            f"({self.available} available{detail})"
        )


class WorkloadError(ReproError, ValueError):
    """An I/O workload description is invalid."""


class FaultError(ReproError, ValueError):
    """A fault schedule or fault-injection request is invalid."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment plan or execution failed."""


class CheckpointError(ExperimentError):
    """A campaign checkpoint could not be written or read."""


class OrchestratorError(ExperimentError):
    """The durable job queue or worker supervisor reached an invalid state."""


class CampaignInterrupted(ExperimentError):
    """A campaign was stopped by SIGINT/SIGTERM after a drain + checkpoint.

    Carries the signal name and the checkpoint path (when one was
    configured) so the CLI can print an exact ``--resume`` hint instead
    of a traceback.  Raised only after in-flight work has been drained
    and the store checkpointed — resuming loses nothing.
    """

    def __init__(self, signal_name: str, checkpoint: "str | None" = None):
        self.signal = str(signal_name)
        self.checkpoint = str(checkpoint) if checkpoint is not None else None
        where = f"; checkpoint {self.checkpoint}" if self.checkpoint else ""
        super().__init__(f"campaign interrupted by {self.signal}{where}")


class ChaosError(ReproError):
    """The chaos harness could not set up or drive an injection."""


class ServerError(ReproError):
    """Base class for errors of the networked orchestrator server."""


class ProtocolError(ServerError, ValueError):
    """A wire frame or message violated the length-prefixed JSON protocol.

    Covers torn frames (connection closed mid-length or mid-body),
    oversized frames, undecodable bodies and version mismatches — all
    the shapes a half-written frame takes on the reader's side.
    """


class RemoteError(ServerError):
    """The remote orchestrator could not serve a request.

    Raised by the client after its retry budget (and local fallback,
    when enabled) is exhausted, or when the server answers with a
    structured error frame.  ``retry_after_s`` carries the server's
    load-shedding hint when one was given.
    """

    def __init__(self, message: str, retry_after_s: "float | None" = None):
        self.retry_after_s = float(retry_after_s) if retry_after_s is not None else None
        super().__init__(message)


class AnalysisError(ReproError, ValueError):
    """A statistical analysis was requested on unsuitable data."""


class TelemetryError(ReproError, ValueError):
    """A telemetry sink, metric or event stream was used inconsistently."""


class VerificationError(ReproError, RuntimeError):
    """Base class for failures of the :mod:`repro.verify` guardrails."""


class InvariantViolation(VerificationError, SimulationError):
    """A machine-checked physical invariant was violated at runtime.

    Subclasses :class:`SimulationError` so existing callers that treat
    simulation failures uniformly (quarantine, fail-fast) keep working;
    campaigns can still single it out for the dedicated quarantine path
    of :class:`~repro.methodology.runner.ProtocolRunner`.
    """


class ConformanceError(VerificationError):
    """The fluid and DES engines disagree beyond the declared tolerance."""


class GoldenMismatchError(ConformanceError):
    """A conformance result drifted from its pinned golden value."""


class ReplayDivergenceError(VerificationError):
    """Two same-seed runs produced different results."""
