"""Units and human-readable quantities.

The whole library uses a single convention internally:

* data sizes are **bytes** (``int`` where exactness matters, ``float`` in
  rate computations),
* time is **seconds** (``float``),
* bandwidth is **MiB/s** (``float``) because that is the unit used by IOR
  and by every figure of the paper.

This module provides the constants and the conversion/parsing helpers used
at API boundaries so that the rest of the code never multiplies magic
numbers.
"""

from __future__ import annotations

import math
import re
from typing import Final

from .errors import UnitParseError

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "KB",
    "MB",
    "GB",
    "bytes_to_mib",
    "mib_to_bytes",
    "bytes_to_gib",
    "gib_to_bytes",
    "gbit_s_to_mib_s",
    "mib_s_to_gbit_s",
    "bandwidth_mib_s",
    "parse_size",
    "format_size",
    "parse_duration",
    "format_duration",
    "format_bandwidth",
]

KiB: Final[int] = 1024
MiB: Final[int] = 1024**2
GiB: Final[int] = 1024**3
TiB: Final[int] = 1024**4

# Decimal units (used by network vendors: a "10 Gbit/s" link).
KB: Final[int] = 1000
MB: Final[int] = 1000**2
GB: Final[int] = 1000**3

_SIZE_UNITS: Final[dict[str, int]] = {
    "": 1,
    "b": 1,
    "k": KiB,
    "kib": KiB,
    "kb": KB,
    "m": MiB,
    "mib": MiB,
    "mb": MB,
    "g": GiB,
    "gib": GiB,
    "gb": GB,
    "t": TiB,
    "tib": TiB,
    "tb": 1000**4,
}

_DURATION_UNITS: Final[dict[str, float]] = {
    "": 1.0,
    "s": 1.0,
    "sec": 1.0,
    "ms": 1e-3,
    "us": 1e-6,
    "min": 60.0,
    "m": 60.0,
    "h": 3600.0,
}

_QTY_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z/]*)\s*$")


def bytes_to_mib(nbytes: float) -> float:
    """Convert a byte count to MiB."""
    return nbytes / MiB


def mib_to_bytes(mib: float) -> float:
    """Convert MiB to bytes (float: callers round if exactness matters)."""
    return mib * MiB


def bytes_to_gib(nbytes: float) -> float:
    """Convert a byte count to GiB."""
    return nbytes / GiB


def gib_to_bytes(gib: float) -> float:
    """Convert GiB to bytes."""
    return gib * GiB


def gbit_s_to_mib_s(gbit: float) -> float:
    """Convert a link speed in Gbit/s (decimal) to MiB/s (binary).

    A 10 Gbit/s Ethernet link moves ``10e9 / 8`` bytes per second, which is
    ~1192.1 MiB/s of *raw* capacity.
    """
    return gbit * 1e9 / 8 / MiB


def mib_s_to_gbit_s(mib_s: float) -> float:
    """Inverse of :func:`gbit_s_to_mib_s`."""
    return mib_s * MiB * 8 / 1e9


def bandwidth_mib_s(nbytes: float, seconds: float) -> float:
    """Bandwidth (MiB/s) of moving ``nbytes`` in ``seconds``.

    Returns ``0.0`` for a zero-byte transfer and raises for non-positive
    durations of a non-empty transfer, which always indicates a bug in a
    timing computation.
    """
    if nbytes == 0:
        return 0.0
    if seconds <= 0:
        raise ValueError(f"non-positive duration {seconds!r} for {nbytes} bytes")
    return bytes_to_mib(nbytes) / seconds


def parse_size(text: str | int | float) -> int:
    """Parse a human-readable data size into bytes.

    Accepts plain numbers (bytes) or strings such as ``"32GiB"``,
    ``"512 KiB"``, ``"1m"`` (case-insensitive).  IEC suffixes (KiB/MiB/...)
    and the bare letters k/m/g/t are binary; SI suffixes (KB/MB/...) are
    decimal, matching common HPC tool conventions.
    """
    if isinstance(text, (int, float)):
        if text < 0 or text != int(text):
            raise UnitParseError(f"invalid byte count: {text!r}")
        return int(text)
    match = _QTY_RE.match(text)
    if not match:
        raise UnitParseError(f"cannot parse size {text!r}")
    value, unit = float(match.group(1)), match.group(2).lower()
    try:
        factor = _SIZE_UNITS[unit]
    except KeyError:
        raise UnitParseError(f"unknown size unit {unit!r} in {text!r}") from None
    nbytes = value * factor
    rounded = round(nbytes)
    # Tolerate float formatting residue well below one millionth of the
    # unit, but reject genuinely fractional byte counts ("1.5B").
    if abs(nbytes - rounded) > max(1e-6 * factor, 1e-9):
        raise UnitParseError(f"{text!r} is not a whole number of bytes")
    return int(rounded)


def format_size(nbytes: float, precision: int = 1) -> str:
    """Render a byte count with the largest IEC unit that keeps value >= 1."""
    if nbytes < 0:
        return "-" + format_size(-nbytes, precision)
    for unit, factor in (("TiB", TiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if nbytes >= factor:
            value = nbytes / factor
            if math.isclose(value, round(value)):
                return f"{round(value):d}{unit}"
            return f"{value:.{precision}f}{unit}"
    return f"{int(nbytes)}B"


def parse_duration(text: str | int | float) -> float:
    """Parse a duration such as ``"30min"``, ``"1.5s"`` or ``250`` (seconds)."""
    if isinstance(text, (int, float)):
        if text < 0:
            raise UnitParseError(f"negative duration: {text!r}")
        return float(text)
    match = _QTY_RE.match(text)
    if not match:
        raise UnitParseError(f"cannot parse duration {text!r}")
    value, unit = float(match.group(1)), match.group(2).lower()
    try:
        factor = _DURATION_UNITS[unit]
    except KeyError:
        raise UnitParseError(f"unknown duration unit {unit!r} in {text!r}") from None
    return value * factor


def format_duration(seconds: float) -> str:
    """Render a duration compactly (``"2.5s"``, ``"3min 20s"``, ``"12ms"``)."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds == 0:
        return "0s"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1:
        return f"{seconds * 1e3:.0f}ms"
    if seconds < 60:
        return f"{seconds:.3g}s"
    minutes, rem = divmod(seconds, 60.0)
    # Round the seconds part first and carry, so 119.7s renders as
    # "2min", never "1min 60s".
    whole_rem = int(round(rem))
    if whole_rem == 60:
        minutes += 1
        whole_rem = 0
    if whole_rem == 0:
        return f"{int(minutes)}min"
    return f"{int(minutes)}min {whole_rem}s"


def format_bandwidth(mib_s: float, precision: int = 1) -> str:
    """Render a bandwidth in MiB/s, the unit of every figure in the paper."""
    return f"{mib_s:.{precision}f} MiB/s"
