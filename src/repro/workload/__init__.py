"""Application workloads: the IOR benchmark model.

The paper generates all measurements with IOR 3.4 (POSIX API, 1 MiB
transfers, shared-file N-1 contiguous accesses, 32 GiB total).  This
package models IOR's workload geometry exactly — block/transfer/segment
sizes, N-1 contiguous, N-1 strided and N-N (file-per-process) layouts —
plus the application abstraction (which nodes, how many processes per
node, when it starts) used by the engines, and builders for the
concurrent-application scenarios of Section IV-D.
"""

from .patterns import AccessPattern, IORConfig, Region
from .application import Application, allocate_nodes
from .ior import IORDriver, IORReport
from .generator import concurrent_applications, single_application

__all__ = [
    "AccessPattern",
    "IORConfig",
    "Region",
    "Application",
    "allocate_nodes",
    "IORDriver",
    "IORReport",
    "single_application",
    "concurrent_applications",
]
