"""The application abstraction: an IOR run placed on the platform.

An :class:`Application` is one job: an IOR configuration executed by
``ppn`` processes on each of a set of compute nodes, writing into a
directory of the file system from a given start time.  Ranks follow the
standard block layout of ``mpirun``: node ``i`` hosts ranks
``[i * ppn, (i + 1) * ppn)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import WorkloadError
from ..topology.graph import HostRole, Topology
from .patterns import IORConfig

__all__ = ["Application", "allocate_nodes"]


@dataclass(frozen=True)
class Application:
    """One job of the simulated system."""

    app_id: str
    nodes: tuple[str, ...]
    ppn: int
    config: IORConfig
    directory: str = "/bench"
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.app_id:
            raise WorkloadError("app_id must be non-empty")
        if not self.nodes:
            raise WorkloadError(f"{self.app_id}: needs at least one node")
        if len(set(self.nodes)) != len(self.nodes):
            raise WorkloadError(f"{self.app_id}: duplicate nodes")
        if self.ppn < 1:
            raise WorkloadError(f"{self.app_id}: ppn must be >= 1")
        if self.start_time < 0:
            raise WorkloadError(f"{self.app_id}: negative start time")
        if not self.directory.startswith("/"):
            raise WorkloadError(f"{self.app_id}: directory must be absolute")

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def nprocs(self) -> int:
        return self.num_nodes * self.ppn

    @property
    def total_bytes(self) -> int:
        return self.config.total_bytes(self.nprocs)

    def ranks_of_node(self, node: str) -> range:
        """Ranks hosted on ``node`` (block layout)."""
        try:
            i = self.nodes.index(node)
        except ValueError:
            raise WorkloadError(f"{self.app_id}: node {node!r} not allocated") from None
        return range(i * self.ppn, (i + 1) * self.ppn)

    def node_of_rank(self, rank: int) -> str:
        if not 0 <= rank < self.nprocs:
            raise WorkloadError(f"{self.app_id}: rank {rank} out of range")
        return self.nodes[rank // self.ppn]

    def file_path(self, rank: int | None = None) -> str:
        """Path of the shared file, or of ``rank``'s file for N-N runs."""
        base = f"{self.directory.rstrip('/')}/{self.app_id}"
        if self.config.pattern.shared_file:
            if rank is not None and not 0 <= rank < self.nprocs:
                raise WorkloadError(f"{self.app_id}: rank {rank} out of range")
            return f"{base}.dat"
        if rank is None:
            raise WorkloadError(f"{self.app_id}: N-N runs need a rank for file_path")
        return f"{base}.{rank:05d}.dat"

    def file_paths(self) -> list[str]:
        """Every file the application writes."""
        if self.config.pattern.shared_file:
            return [self.file_path()]
        return [self.file_path(r) for r in range(self.nprocs)]

    def delayed(self, dt: float) -> "Application":
        """A copy starting ``dt`` seconds later."""
        return replace(self, start_time=self.start_time + dt)


def allocate_nodes(
    topology: Topology,
    num_nodes: int,
    exclude: tuple[str, ...] = (),
) -> tuple[str, ...]:
    """Pick ``num_nodes`` compute nodes, skipping ``exclude`` (disjoint jobs).

    Allocation is first-fit in node order, like a simple batch
    scheduler filling an idle machine.
    """
    taken = set(exclude)
    free = [h.name for h in topology.hosts(HostRole.COMPUTE) if h.name not in taken]
    if len(free) < num_nodes:
        raise WorkloadError(
            f"need {num_nodes} free compute nodes, only {len(free)} available"
        )
    return tuple(free[:num_nodes])
