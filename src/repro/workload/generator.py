"""Builders for the experiment workloads.

Helpers that turn "the paper's configuration" into
:class:`~repro.workload.application.Application` objects:

* :func:`single_application` — one IOR job with the paper's fixed-total
  convention (32 GiB shared file, adapted per-process block);
* :func:`concurrent_applications` — the Section IV-D scenarios: 2-4
  identical jobs on *disjoint* node sets ("they do not share nodes"),
  optionally with small start-time jitter.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..topology.graph import Topology
from ..units import GiB, MiB
from .application import Application, allocate_nodes
from .patterns import AccessPattern, IORConfig

__all__ = ["single_application", "concurrent_applications"]


def single_application(
    topology: Topology,
    num_nodes: int,
    ppn: int = 8,
    total_bytes: int = 32 * GiB,
    transfer_size: int = MiB,
    pattern: AccessPattern = AccessPattern.N1_CONTIGUOUS,
    operation: str = "write",
    app_id: str = "app0",
    directory: str = "/bench",
    start_time: float = 0.0,
) -> Application:
    """One IOR job with the paper's fixed-total-size convention."""
    nodes = allocate_nodes(topology, num_nodes)
    config = IORConfig.for_total_size(
        total_bytes,
        num_nodes * ppn,
        transfer_size=transfer_size,
        pattern=pattern,
        operation=operation,
    )
    return Application(
        app_id=app_id,
        nodes=nodes,
        ppn=ppn,
        config=config,
        directory=directory,
        start_time=start_time,
    )


def concurrent_applications(
    topology: Topology,
    num_apps: int,
    nodes_per_app: int = 8,
    ppn: int = 8,
    total_bytes_each: int = 32 * GiB,
    transfer_size: int = MiB,
    pattern: AccessPattern = AccessPattern.N1_CONTIGUOUS,
    directory: str = "/bench",
    start_jitter_s: float = 0.0,
    rng: np.random.Generator | None = None,
) -> list[Application]:
    """``num_apps`` identical jobs on disjoint node sets (Section IV-D).

    ``start_jitter_s > 0`` draws each job's start uniformly from
    ``[0, start_jitter_s]`` — the paper launches concurrent instances
    together, but jitter is useful for robustness studies of the
    aggregate-bandwidth metric (Equation 1 handles it by construction).
    """
    if num_apps < 1:
        raise WorkloadError(f"num_apps must be >= 1, got {num_apps}")
    if start_jitter_s < 0:
        raise WorkloadError("negative start jitter")
    if start_jitter_s > 0 and rng is None:
        raise WorkloadError("start_jitter_s > 0 requires an rng")

    apps: list[Application] = []
    used: tuple[str, ...] = ()
    for i in range(num_apps):
        nodes = allocate_nodes(topology, nodes_per_app, exclude=used)
        used = used + nodes
        config = IORConfig.for_total_size(
            total_bytes_each, nodes_per_app * ppn, transfer_size=transfer_size, pattern=pattern
        )
        start = float(rng.uniform(0.0, start_jitter_s)) if start_jitter_s > 0 else 0.0
        apps.append(
            Application(
                app_id=f"app{i}",
                nodes=nodes,
                ppn=ppn,
                config=config,
                directory=directory,
                start_time=start,
            )
        )
    return apps
