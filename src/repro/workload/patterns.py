"""IOR workload geometry.

IOR's data layout is controlled by three sizes and a mode:

* ``transfer_size`` (``-t``): bytes per I/O call;
* ``block_size`` (``-b``): contiguous bytes per process per segment;
* ``segments`` (``-s``): repetitions of the whole block pattern;
* shared file (N-1, ``-F`` absent) vs file per process (N-N, ``-F``).

For a shared file, segment ``s`` of rank ``r`` occupies

    offset = s * (nprocs * block_size) + r * block_size      (contiguous)

and the strided (interleaved) variant spreads transfers round-robin
across ranks inside the segment.  The paper uses N-1 contiguous with a
single segment: "application processes write to contiguous portions
within a shared file" at peak-friendly 1 MiB transfers (Section III-B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from ..errors import WorkloadError
from ..units import MiB, format_size

__all__ = ["AccessPattern", "Region", "IORConfig", "PATTERNS_BY_NAME", "pattern_by_name"]


class AccessPattern(enum.Enum):
    """File layout mode of an IOR run."""

    N1_CONTIGUOUS = "n1-contiguous"
    N1_STRIDED = "n1-strided"
    NN = "file-per-process"

    @property
    def shared_file(self) -> bool:
        return self is not AccessPattern.NN


PATTERNS_BY_NAME: dict[str, AccessPattern] = {p.value: p for p in AccessPattern}


def pattern_by_name(name: str) -> AccessPattern:
    """The pattern a CLI/factor name denotes; unknown names list the valid ones."""
    try:
        return PATTERNS_BY_NAME[name]
    except KeyError:
        valid = ", ".join(sorted(PATTERNS_BY_NAME))
        raise WorkloadError(
            f"unknown access pattern {name!r} (expected one of: {valid})"
        ) from None


@dataclass(frozen=True)
class Region:
    """A contiguous byte range of one file written by one rank."""

    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length <= 0:
            raise WorkloadError(f"invalid region ({self.offset}, {self.length})")

    @property
    def end(self) -> int:
        return self.offset + self.length


@dataclass(frozen=True)
class IORConfig:
    """Geometry of one IOR run (the subset of flags the paper uses).

    ``block_size`` is per process per segment, so the total data volume
    of a run is ``nprocs * block_size * segments`` regardless of the
    pattern.  The paper fixes the *total* at 32 GiB and adapts the
    per-process block to the process count; use :meth:`for_total_size`
    for that convention.
    """

    block_size: int
    transfer_size: int = MiB
    segments: int = 1
    pattern: AccessPattern = AccessPattern.N1_CONTIGUOUS
    api: str = "POSIX"
    operation: str = "write"

    def __post_init__(self) -> None:
        if self.operation not in ("write", "read"):
            raise WorkloadError(f"unsupported operation {self.operation!r}")
        if self.block_size <= 0:
            raise WorkloadError(f"block size must be positive, got {self.block_size}")
        if self.transfer_size <= 0:
            raise WorkloadError(f"transfer size must be positive, got {self.transfer_size}")
        if self.segments < 1:
            raise WorkloadError(f"segments must be >= 1, got {self.segments}")
        if self.block_size % self.transfer_size != 0:
            raise WorkloadError(
                f"block size {self.block_size} is not a multiple of "
                f"transfer size {self.transfer_size} (IOR requires this)"
            )
        if self.api not in ("POSIX", "MPIIO"):
            raise WorkloadError(f"unsupported api {self.api!r}")

    @classmethod
    def for_total_size(
        cls,
        total_bytes: int,
        nprocs: int,
        transfer_size: int = MiB,
        segments: int = 1,
        pattern: AccessPattern = AccessPattern.N1_CONTIGUOUS,
        operation: str = "write",
    ) -> "IORConfig":
        """The paper's convention: fixed total volume, adapted block size.

        E.g. 32 GiB over 8 processes -> 4 GiB blocks; over 64 processes
        -> 512 MiB blocks (Section IV-A's example).  When the total does
        not divide evenly, the per-process block is rounded *down* to a
        whole number of transfers (IOR requires block % transfer == 0),
        so the realised total can be slightly below the request.
        """
        if nprocs < 1:
            raise WorkloadError(f"nprocs must be >= 1, got {nprocs}")
        per_proc = total_bytes // (nprocs * segments)
        per_proc -= per_proc % transfer_size
        if per_proc <= 0:
            raise WorkloadError(
                f"total size {total_bytes} too small for {nprocs} procs x "
                f"{segments} segments at transfer size {transfer_size}"
            )
        return cls(
            block_size=per_proc,
            transfer_size=transfer_size,
            segments=segments,
            pattern=pattern,
            operation=operation,
        )

    # -- derived sizes ------------------------------------------------------------

    @property
    def bytes_per_process(self) -> int:
        return self.block_size * self.segments

    def total_bytes(self, nprocs: int) -> int:
        return self.bytes_per_process * nprocs

    def file_size(self, nprocs: int) -> int:
        """Size of the (shared) file, or of each process file for N-N."""
        if self.pattern is AccessPattern.NN:
            return self.bytes_per_process
        return self.total_bytes(nprocs)

    @property
    def transfers_per_block(self) -> int:
        return self.block_size // self.transfer_size

    # -- layout ---------------------------------------------------------------------

    def regions(self, rank: int, nprocs: int) -> Iterator[Region]:
        """Byte regions written by ``rank``, in issue order.

        For N-N the offsets are within the rank's own file.  Contiguous
        layouts yield one region per segment; the strided layout yields
        one region per transfer.
        """
        if not 0 <= rank < nprocs:
            raise WorkloadError(f"rank {rank} out of range for {nprocs} procs")
        if self.pattern is AccessPattern.NN:
            for s in range(self.segments):
                yield Region(s * self.block_size, self.block_size)
        elif self.pattern is AccessPattern.N1_CONTIGUOUS:
            stride = nprocs * self.block_size
            for s in range(self.segments):
                yield Region(s * stride + rank * self.block_size, self.block_size)
        else:  # N1_STRIDED
            stride = nprocs * self.block_size
            for s in range(self.segments):
                base = s * stride
                for t in range(self.transfers_per_block):
                    yield Region(
                        base + (t * nprocs + rank) * self.transfer_size,
                        self.transfer_size,
                    )

    def transfers(self, rank: int, nprocs: int) -> Iterator[Region]:
        """Individual transfer-sized writes of ``rank``, in issue order."""
        for region in self.regions(rank, nprocs):
            for off in range(region.offset, region.end, self.transfer_size):
                yield Region(off, min(self.transfer_size, region.end - off))

    def ior_command(self, nprocs: int) -> str:
        """The equivalent IOR invocation (documentation/reporting aid)."""
        parts = [
            f"mpirun -n {nprocs}",
            "ior",
            f"-a {self.api}",
            "-w" if self.operation == "write" else "-r",
            f"-t {format_size(self.transfer_size, 0)}",
            f"-b {format_size(self.block_size, 0)}",
            f"-s {self.segments}",
        ]
        if self.pattern is AccessPattern.NN:
            parts.append("-F")
        return " ".join(parts)
