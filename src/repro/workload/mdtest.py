"""An mdtest-like metadata workload.

The paper sidesteps metadata costs by design ("to limit the impact of
metadata overhead ... we used a shared-file strategy", Section III-B)
and points at metadata intensity as a root cause of I/O interference
(Section IV-D, citing Yang et al.).  This module provides the standard
tool for measuring that side of the file system: an `mdtest`-style
workload — every process creates, stats and removes its own set of
files — plus the knob that matters on BeeGFS: whether all processes
work in one **shared directory** (whose dentries live on a single MDS)
or in **unique per-process directories** (spread round-robin over the
metadata servers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import WorkloadError

__all__ = ["MetadataOp", "MDTestConfig", "MDTestPhase"]


class MetadataOp(enum.Enum):
    """The metadata operations mdtest times."""

    CREATE = "create"
    STAT = "stat"
    UNLINK = "unlink"


class MDTestPhase(enum.Enum):
    """Directory layout mode (mdtest's ``-u`` flag)."""

    SHARED_DIR = "shared-dir"
    UNIQUE_DIRS = "unique-dirs"


@dataclass(frozen=True)
class MDTestConfig:
    """Geometry of one mdtest run.

    ``files_per_process`` files are created, statted and unlinked by
    each process (mdtest's ``-n``); ``directory_mode`` selects the
    shared-vs-unique-directory layout.
    """

    files_per_process: int
    directory_mode: MDTestPhase = MDTestPhase.SHARED_DIR
    ops: tuple[MetadataOp, ...] = (MetadataOp.CREATE, MetadataOp.STAT, MetadataOp.UNLINK)

    def __post_init__(self) -> None:
        if self.files_per_process < 1:
            raise WorkloadError("files_per_process must be >= 1")
        if not self.ops:
            raise WorkloadError("need at least one metadata operation")
        if len(set(self.ops)) != len(self.ops):
            raise WorkloadError("duplicate metadata operations")

    def total_files(self, nprocs: int) -> int:
        return self.files_per_process * nprocs

    def total_ops(self, nprocs: int) -> int:
        return self.total_files(nprocs) * len(self.ops)

    def file_path(self, rank: int, index: int, base: str = "/mdtest") -> str:
        """Path of one file under the selected directory layout."""
        if self.directory_mode is MDTestPhase.UNIQUE_DIRS:
            return f"{base}/rank{rank:05d}/f{index:06d}"
        return f"{base}/shared/r{rank:05d}.f{index:06d}"

    def directory_of(self, rank: int, base: str = "/mdtest") -> str:
        if self.directory_mode is MDTestPhase.UNIQUE_DIRS:
            return f"{base}/rank{rank:05d}"
        return f"{base}/shared"

    def mdtest_command(self, nprocs: int) -> str:
        """The equivalent mdtest invocation (documentation aid)."""
        parts = [f"mpirun -n {nprocs}", "mdtest", f"-n {self.files_per_process}", "-F"]
        if self.directory_mode is MDTestPhase.UNIQUE_DIRS:
            parts.append("-u")
        return " ".join(parts)
